//! PHAST — hardware-accelerated shortest path trees (umbrella crate).
//!
//! Re-exports the whole workspace under one roof. See the individual crates
//! for details; `examples/quickstart.rs` shows the end-to-end flow.

pub use phast_apps as apps;
pub use phast_ch as ch;
pub use phast_core as core;
pub use phast_dijkstra as dijkstra;
pub use phast_gpu as gpu;
pub use phast_graph as graph;
pub use phast_machine as machine;
pub use phast_metrics as metrics;
pub use phast_obs as obs;
pub use phast_pq as pq;
pub use phast_serve as serve;
pub use phast_store as store;
