//! Offline stand-in for the `rand_chacha` crate.
//!
//! Exposes deterministic, seedable generators under the `ChaCha*Rng`
//! names. The streams are splitmix64/xorshift-based rather than real
//! ChaCha — every consumer in this workspace only relies on determinism
//! and uniformity, not on the exact cipher output.

use rand::{RngCore, SeedableRng, SplitMix64};

macro_rules! chacha {
    ($(#[$doc:meta] $name:ident),*) => {$(
        #[$doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            inner: SplitMix64,
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                // Pre-mix once so seeds 0,1,2,... give unrelated streams.
                let mut warm = SplitMix64::new(seed);
                let s = warm.next_u64();
                Self { inner: SplitMix64::new(s) }
            }
        }
    )*};
}

chacha!(
    /// Stand-in for the 8-round ChaCha generator.
    ChaCha8Rng,
    /// Stand-in for the 12-round ChaCha generator.
    ChaCha12Rng,
    /// Stand-in for the 20-round ChaCha generator.
    ChaCha20Rng
);
