//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` written
//! directly against `proc_macro` (no syn/quote available offline). It
//! supports exactly the shapes this workspace derives on: structs with
//! named fields and enums with unit variants, no generics, no
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: a struct's field names or an enum's variant names.
enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    // Walk to the brace group; reject generics and non-brace bodies.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde stand-in derive: generic types are unsupported ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde stand-in derive: unit/tuple structs are unsupported ({name})")
            }
            Some(_) => continue,
            None => panic!("serde stand-in derive: missing body for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_names(body.stream(), true),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_names(body.stream(), false),
        },
        other => panic!("serde stand-in derive: cannot derive for `{other}`"),
    }
}

/// Extracts the leading identifier of each comma-separated entry (at angle
/// depth 0), skipping attributes and visibility. For enums (`fields ==
/// false`) a payload group after the name is rejected.
fn parse_names(body: TokenStream, fields: bool) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    'entries: loop {
        // Skip attributes/visibility before the name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'entries,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stand-in derive: expected a name, got {other:?}"),
        };
        if !fields {
            if let Some(TokenTree::Group(g)) = iter.peek() {
                panic!(
                    "serde stand-in derive: variant `{name}` has a payload ({:?}); only unit variants are supported",
                    g.delimiter()
                );
            }
        }
        names.push(name);
        // Consume the rest of the entry up to a top-level comma.
        let mut angle = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => continue 'entries,
                Some(_) => continue,
                None => break 'entries,
            }
        }
    }
    names
}

/// Derives `serde::Serialize` (stand-in data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde stand-in derive: generated impl parses")
}

/// Derives `serde::Deserialize` (stand-in data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(\
                             || ::serde::DeError::msg(\"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"expected string for enum {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde stand-in derive: generated impl parses")
}
