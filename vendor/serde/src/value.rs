//! The in-memory JSON tree shared by the `serde` and `serde_json`
//! stand-ins.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON value. Object keys preserve insertion order.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (all workspace integers fit `i64`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered key-value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of `key` in an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(entries) => {
                entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer (or an integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        let pos = entries.iter().position(|(k, _)| k == key);
        let pos = match pos {
            Some(p) => p,
            None => {
                entries.push((key.to_owned(), Value::Null));
                entries.len() - 1
            }
        };
        &mut entries[pos].1
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[i],
            _ => panic!("cannot index non-array JSON value with a number"),
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<f32> for Value {
    fn eq(&self, other: &f32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Renders compact JSON into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                out.push_str(itoa(*i).as_str());
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point / exponent so floats survive a
                    // round trip as floats.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn itoa(i: i64) -> String {
    i.to_string()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}
