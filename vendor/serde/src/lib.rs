//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this stand-in centres on
//! one in-memory tree, [`value::Value`] (what `serde_json` calls
//! `Value`): [`Serialize`] renders a type into a `Value`, [`Deserialize`]
//! rebuilds the type from one. The derive macros (feature `derive`)
//! support exactly the shapes this workspace uses — named-field structs
//! and unit-variant enums, with no `#[serde(...)]` attributes.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be decoded into a type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error with a formatted message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::msg(format!("integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        // Every u64 this workspace serializes (vertex counts, arc counts,
        // nanoseconds) fits i64; saturate rather than wrap if one doesn't.
        Value::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = v
            .as_i64()
            .ok_or_else(|| DeError::msg(format!("expected integer, got {v:?}")))?;
        u64::try_from(i).map_err(|_| DeError::msg(format!("integer {i} out of range for u64")))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::msg(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Stand-in-only convenience for static-table types
            // (machine profiles): leak the string to get 'static.
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start.to_value()),
            ("end".to_owned(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let start = v
            .get("start")
            .ok_or_else(|| DeError::msg("Range missing `start`"))?;
        let end = v
            .get("end")
            .ok_or_else(|| DeError::msg("Range missing `end`"))?;
        Ok(T::from_value(start)?..T::from_value(end)?)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().to_value()),
            ("nanos".to_owned(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = v
            .get("secs")
            .ok_or_else(|| DeError::msg("Duration missing `secs`"))?;
        let nanos = v
            .get("nanos")
            .ok_or_else(|| DeError::msg("Duration missing `nanos`"))?;
        Ok(std::time::Duration::new(
            u64::from_value(secs)?,
            u32::from_value(nanos)?,
        ))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items
                                .get($n)
                                .ok_or_else(|| DeError::msg("tuple too short"))?,
                        )?,
                    )+)),
                    other => Err(DeError::msg(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));
