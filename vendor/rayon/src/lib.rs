//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `par_iter`, `par_chunks`, `into_par_iter` over ranges, with `map`,
//! `map_init`, `for_each` and order-preserving `collect` — on top of
//! `std::thread::scope`. Unlike real rayon there is no work-stealing
//! pool: each parallel call splits its input into one contiguous block
//! per thread. Results are always produced in input order.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Arc;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Number of threads parallel calls on this thread will use, as in
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Error building a [`ThreadPool`]. Never actually produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A worker start handler, shared between builder, pool, and workers.
type StartHandler = Arc<dyn Fn(usize) + Send + Sync>;

/// Builder for a [`ThreadPool`], as in `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    start_handler: Option<StartHandler>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = one per core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Registers a per-worker start handler (called with the worker index
    /// when that worker first runs inside [`ThreadPool::install`]).
    pub fn start_handler<F: Fn(usize) + Send + Sync + 'static>(mut self, f: F) -> Self {
        self.start_handler = Some(Arc::new(f));
        self
    }

    /// Builds the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            threads,
            start_handler: self.start_handler,
        })
    }
}

/// A logical thread pool: scopes a thread-count (and start handler) over
/// the closure passed to [`ThreadPool::install`].
pub struct ThreadPool {
    threads: usize,
    start_handler: Option<StartHandler>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing all parallel
    /// calls made inside it (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.threads)));
        let prev_handler = WORKER_START.with(|c| c.replace(self.start_handler.clone()));
        let out = op();
        CURRENT_THREADS.with(|c| c.set(prev));
        WORKER_START.with(|c| c.set(prev_handler));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

thread_local! {
    static WORKER_START: Cell<Option<StartHandler>> =
        const { Cell::new(None) };
}

/// Core executor: applies `f` (with a per-thread state from `init`) to
/// every item of `source`, in parallel, preserving input order.
fn run_par<S, St, T>(
    source: S,
    init: impl Fn() -> St + Sync,
    f: impl Fn(&mut St, S::Item) -> T + Sync,
) -> Vec<T>
where
    S: IndexedSource,
    T: Send,
{
    let n = source.len();
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, source.get(i))).collect();
    }
    let handler = WORKER_START.with(|c| {
        let h = c.take();
        c.set(h.clone());
        h
    });
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    let source = &source;
    let init = &init;
    let f = &f;
    let handler = &handler;
    std::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                if let Some(h) = handler.as_deref() {
                    h(t);
                }
                let mut state = init();
                let base = t * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(&mut state, source.get(base + j)));
                }
            });
        }
    });
    out.into_iter().map(|x| x.expect("worker filled slot")).collect()
}

/// An indexable, thread-shareable item source.
pub trait IndexedSource: Sync {
    /// Item handed to worker closures.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The item at index `i`.
    fn get(&self, i: usize) -> Self::Item;
}

/// Source over a borrowed slice (items are `&T`).
pub struct SliceSource<'a, T>(&'a [T]);

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.0[i]
    }
}

/// Source over contiguous chunks of a borrowed slice.
pub struct ChunkSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ChunkSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Source over an integer range.
pub struct RangeSource<T>(Range<T>);

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IndexedSource for RangeSource<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                (self.0.end.saturating_sub(self.0.start)) as usize
            }
            fn get(&self, i: usize) -> $t {
                self.0.start + i as $t
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// A pending parallel iterator over `S`'s items.
pub struct ParIter<S>(S);

impl<S: IndexedSource> ParIter<S> {
    /// Parallel map preserving input order.
    pub fn map<T: Send>(self, f: impl Fn(S::Item) -> T + Sync) -> ParResults<T> {
        ParResults(run_par(self.0, || (), |(), x| f(x)))
    }

    /// Parallel map with one lazily-created state per worker thread, as in
    /// rayon's `map_init`.
    pub fn map_init<St, T: Send>(
        self,
        init: impl Fn() -> St + Sync,
        f: impl Fn(&mut St, S::Item) -> T + Sync,
    ) -> ParResults<T> {
        ParResults(run_par(self.0, init, f))
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each(self, f: impl Fn(S::Item) + Sync) {
        run_par(self.0, || (), |(), x| f(x));
    }
}

/// Results of an executed parallel stage, in input order.
pub struct ParResults<T>(Vec<T>);

impl<T: Send> ParResults<T> {
    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Runs `f` on every result.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        self.0.into_iter().for_each(f);
    }
}

/// `par_iter` entry point, as in rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceSource(self))
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceSource(self))
    }
}

/// `par_chunks` entry point, as in rayon's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of length `size` (last
    /// chunk may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<ChunkSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<ChunkSource<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter(ChunkSource { slice: self, size })
    }
}

/// `into_par_iter` entry point, as in rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = ParIter<RangeSource<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter(RangeSource(self))
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize);

/// Prelude, as in `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}
