//! Offline stand-in for the `rustc-hash` crate.
//!
//! Provides [`FxHasher`] — the classic multiply-xor hash used by rustc —
//! together with the [`FxHashMap`]/[`FxHashSet`] aliases.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The fast, non-cryptographic hasher used throughout rustc.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}
