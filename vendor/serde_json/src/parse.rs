//! A small recursive-descent JSON parser for the stand-in.

use crate::Error;
use serde::Value;

/// Maximum container nesting depth, as in the real crate's default
/// recursion limit. The parser is recursive-descent, so without this a
/// hostile `[[[[...` input would overflow the stack instead of erroring.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Syntax(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair?
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Overflowing integers degrade to floats, as in the real
                // crate's arbitrary-precision fallback.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
