//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the shared [`Value`] tree from the `serde` stand-in and
//! provides the usual entry points: [`to_string`], [`to_vec`],
//! [`to_writer`], [`to_value`], [`from_str`], [`from_slice`],
//! [`from_reader`], [`from_value`] and the [`json!`] macro.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

pub use serde::Value;

mod parse;

/// Serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON text.
    Syntax(String),
    /// Structurally valid JSON that does not match the target type.
    Data(serde::DeError),
    /// An I/O failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Syntax(m) => write!(f, "JSON syntax error: {m}"),
            Error::Data(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::Data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().write_json(&mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Renders `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::Syntax(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Reads `reader` to the end and parses the JSON into a `T`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Decodes a [`Value`] tree into a `T`.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports scalars, arrays,
/// objects with string keys, and interpolated `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($item)),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}
