//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` parameters and an optional
//! `#![proptest_config(...)]` header, integer-range strategies,
//! [`collection::vec`], [`sample::select`], tuple strategies,
//! [`test_runner::TestRunner`] and the `prop_assert*` macros. Inputs are
//! generated from a fixed deterministic seed; there is no shrinking — a
//! failure reports the exact failing input instead.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state handed to strategies.
pub struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; a strategy just produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + gen.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    return gen.next_u64() as $t;
                }
                lo + gen.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(gen.below(span) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$n.generate(gen),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + gen.below(span) as usize;
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Gen, Strategy};
    use std::fmt::Debug;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, gen: &mut Gen) -> T {
            self.options[gen.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Runner types (`proptest::test_runner`).
pub mod test_runner {
    use super::{Gen, Strategy};

    /// Per-block configuration. Only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed test case: the message produced by a `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }

        /// Alias used by real proptest for rejected cases.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// A test failure, including the input that produced it.
    #[derive(Debug)]
    pub struct TestError(pub String);

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestError {}

    /// Drives strategies against a test closure, deterministically.
    pub struct TestRunner {
        config: Config,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::new(Config::default())
        }
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: Config) -> Self {
            Self { config }
        }

        /// Runs `test` against `config.cases` generated inputs. The seed
        /// is fixed, so failures reproduce exactly.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let seed = 0xA076_1D64_78BD_642Fu64 ^ ((case as u64) << 17);
                let mut gen = Gen::new(seed);
                let input = strategy.generate(&mut gen);
                let desc = format!("{input:?}");
                if let Err(e) = test(input) {
                    return Err(TestError(format!(
                        "test failed on case {case}: {e}\n    input: {desc}"
                    )));
                }
            }
            Ok(())
        }
    }
}

/// Prelude, as in `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case; on failure the case
/// returns an error (no panic) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let result = runner.run(
                    &($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
                if let ::std::result::Result::Err(e) = result {
                    ::std::panic!("{}", e);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}
