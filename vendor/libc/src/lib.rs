//! Offline stand-in for the `libc` crate.
//!
//! Only the symbols this workspace actually uses are provided: the Linux
//! CPU-affinity types and calls (`cpu_set_t`, `CPU_SET`,
//! `sched_setaffinity`) and the read-only memory-mapping calls (`mmap`,
//! `munmap`). On Linux these forward to the system C library that `std`
//! already links; elsewhere they are no-ops / always-fail stubs so
//! callers take their heap fallback paths.
#![allow(non_camel_case_types, non_snake_case)]

/// Process identifier, as in `<sys/types.h>`.
pub type pid_t = i32;

/// Plain C `int`.
pub type c_int = i32;

/// C `size_t`.
pub type size_t = usize;

/// File offset (`off_t` from `<sys/types.h>`), 64-bit on the targets we
/// build for.
pub type off_t = i64;

/// Untyped pointer target, as in `<stddef.h>`.
pub use std::ffi::c_void;

/// `PROT_READ` from `<sys/mman.h>`: pages may be read.
pub const PROT_READ: c_int = 1;

/// `MAP_SHARED` from `<sys/mman.h>`: changes are shared (for a read-only
/// mapping this means every process mapping the file shares one set of
/// page-cache pages).
pub const MAP_SHARED: c_int = 1;

/// `mmap`'s error return value.
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

/// CPU affinity mask (`cpu_set_t` from `<sched.h>`): 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Adds `cpu` to the affinity set (the `CPU_SET` macro from `<sched.h>`).
///
/// # Safety
///
/// `cpuset` must point to a valid, initialized `cpu_set_t`. (Kept `unsafe`
/// to match the real crate's signature.)
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    let word = cpu / 64;
    if word < cpuset.bits.len() {
        cpuset.bits[word] |= 1u64 << (cpu % 64);
    }
}

#[cfg(target_os = "linux")]
mod sys {
    extern "C" {
        pub fn sched_setaffinity(
            pid: super::pid_t,
            cpusetsize: usize,
            cpuset: *const super::cpu_set_t,
        ) -> i32;
        pub fn mmap(
            addr: *mut super::c_void,
            len: super::size_t,
            prot: super::c_int,
            flags: super::c_int,
            fd: super::c_int,
            offset: super::off_t,
        ) -> *mut super::c_void;
        pub fn munmap(addr: *mut super::c_void, len: super::size_t) -> super::c_int;
    }
}

/// Maps `len` bytes of the file behind `fd` (see `mmap(2)`). Returns
/// [`MAP_FAILED`] on error.
///
/// # Safety
///
/// Raw system-call binding: the caller owns the usual `mmap(2)` contract
/// (valid fd, in-range offset, and no dereference beyond the mapping).
#[cfg(target_os = "linux")]
pub unsafe fn mmap(
    addr: *mut c_void,
    len: size_t,
    prot: c_int,
    flags: c_int,
    fd: c_int,
    offset: off_t,
) -> *mut c_void {
    // SAFETY: forwarded verbatim to the system libc under the caller's
    // contract.
    unsafe { sys::mmap(addr, len, prot, flags, fd, offset) }
}

/// Unmaps a region established by [`mmap`] (see `munmap(2)`).
///
/// # Safety
///
/// `addr`/`len` must describe a live mapping that nothing dereferences
/// after this call.
#[cfg(target_os = "linux")]
pub unsafe fn munmap(addr: *mut c_void, len: size_t) -> c_int {
    // SAFETY: forwarded verbatim to the system libc under the caller's
    // contract.
    unsafe { sys::munmap(addr, len) }
}

/// Always-fail stub off Linux so callers take their read-to-heap path.
///
/// # Safety
///
/// Trivially safe; `unsafe` only to match the Linux signature.
#[cfg(not(target_os = "linux"))]
pub unsafe fn mmap(
    _addr: *mut c_void,
    _len: size_t,
    _prot: c_int,
    _flags: c_int,
    _fd: c_int,
    _offset: off_t,
) -> *mut c_void {
    MAP_FAILED
}

/// No-op stub off Linux (nothing is ever mapped there).
///
/// # Safety
///
/// Trivially safe; `unsafe` only to match the Linux signature.
#[cfg(not(target_os = "linux"))]
pub unsafe fn munmap(_addr: *mut c_void, _len: size_t) -> c_int {
    0
}

/// Pins thread/process `pid` to the CPUs in `cpuset`.
///
/// # Safety
///
/// `cpuset` must point to `cpusetsize` valid bytes. (Matches the real
/// crate's raw binding signature.)
#[cfg(target_os = "linux")]
pub unsafe fn sched_setaffinity(pid: pid_t, cpusetsize: usize, cpuset: *const cpu_set_t) -> i32 {
    // SAFETY: forwarded verbatim to the system libc under the caller's
    // contract.
    unsafe { sys::sched_setaffinity(pid, cpusetsize, cpuset) }
}

#[cfg(not(target_os = "linux"))]
/// No-op fallback off Linux.
///
/// # Safety
///
/// Trivially safe; `unsafe` only to match the Linux signature.
pub unsafe fn sched_setaffinity(_pid: pid_t, _cpusetsize: usize, _cpuset: *const cpu_set_t) -> i32 {
    0
}
