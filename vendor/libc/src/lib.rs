//! Offline stand-in for the `libc` crate.
//!
//! Only the symbols this workspace actually uses are provided: the Linux
//! CPU-affinity types and calls (`cpu_set_t`, `CPU_SET`,
//! `sched_setaffinity`). On Linux these forward to the system C library
//! that `std` already links; elsewhere they are no-ops.
#![allow(non_camel_case_types, non_snake_case)]

/// Process identifier, as in `<sys/types.h>`.
pub type pid_t = i32;

/// CPU affinity mask (`cpu_set_t` from `<sched.h>`): 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Adds `cpu` to the affinity set (the `CPU_SET` macro from `<sched.h>`).
///
/// # Safety
///
/// `cpuset` must point to a valid, initialized `cpu_set_t`. (Kept `unsafe`
/// to match the real crate's signature.)
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    let word = cpu / 64;
    if word < cpuset.bits.len() {
        cpuset.bits[word] |= 1u64 << (cpu % 64);
    }
}

#[cfg(target_os = "linux")]
mod sys {
    extern "C" {
        pub fn sched_setaffinity(
            pid: super::pid_t,
            cpusetsize: usize,
            cpuset: *const super::cpu_set_t,
        ) -> i32;
    }
}

/// Pins thread/process `pid` to the CPUs in `cpuset`.
///
/// # Safety
///
/// `cpuset` must point to `cpusetsize` valid bytes. (Matches the real
/// crate's raw binding signature.)
#[cfg(target_os = "linux")]
pub unsafe fn sched_setaffinity(pid: pid_t, cpusetsize: usize, cpuset: *const cpu_set_t) -> i32 {
    // SAFETY: forwarded verbatim to the system libc under the caller's
    // contract.
    unsafe { sys::sched_setaffinity(pid, cpusetsize, cpuset) }
}

#[cfg(not(target_os = "linux"))]
/// No-op fallback off Linux.
///
/// # Safety
///
/// Trivially safe; `unsafe` only to match the Linux signature.
pub unsafe fn sched_setaffinity(_pid: pid_t, _cpusetsize: usize, _cpuset: *const cpu_set_t) -> i32 {
    0
}
