//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Implements exactly the subset this workspace uses: [`RngCore`] /
//! [`Rng`] with `random`, `random_range`, `random_bool`, [`SeedableRng`]
//! with `seed_from_u64`, and [`seq::SliceRandom::shuffle`]. Generators are
//! deterministic (splitmix64-based) — statistical quality is more than
//! adequate for graph generation and tests, though the streams do not
//! match upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_random(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable via [`Rng::random`].
pub trait FromRandom {
    /// Draws a uniform value from `rng`.
    fn from_random<R: RngCore>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandom for usize {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                ((lo as i64).wrapping_add((rng.next_u64() % span.max(1)) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::from_random(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        self.start + f32::from_random(rng) * (self.end - self.start)
    }
}

/// Construction of reproducible generators, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling of slices, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement (`rand::seq::index`).
    pub mod index {
        use crate::RngCore;

        /// Draws `amount` *distinct* indices uniformly from `0..length` in
        /// O(`amount`) time and memory (Robert Floyd's algorithm) — no
        /// `length`-sized allocation, unlike a full shuffle. Upstream
        /// returns an `IndexVec`; this stand-in returns the indices
        /// directly. Deterministic in the generator state.
        ///
        /// # Panics
        ///
        /// If `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut chosen = std::collections::HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = (rng.next_u64() % (j as u64 + 1)) as usize;
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
            out
        }
    }
}

/// Default generator type behind [`rng`], as in `rand::rngs::ThreadRng`.
pub mod rngs {
    /// A process-local generator (deterministic in this stand-in).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) crate::SplitMix64);

    impl super::RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a generator seeded per call (deterministic in this stand-in).
pub fn rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    rngs::ThreadRng(SplitMix64::new(COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed)))
}

/// The splitmix64 generator every RNG in this stand-in is built from.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Prelude, as in `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
