//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API
//! shape but replaces the statistics engine with a small fixed-budget
//! timer: each benchmark is warmed up once, then iterated until a time
//! budget (or the sample count) is exhausted, and the mean per-iteration
//! time is printed. Good enough to smoke-test benches and compare runs
//! by eye; not a statistics suite.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for call sites that import it from
/// criterion.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Identifies one benchmark within a group, as in
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A compound id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation, as in `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    max_iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating it until the sample/time budget is
    /// spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.max_iters {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters_done += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters_done as u32
        }
    }
}

/// Top-level benchmark context, as in `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a default context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one("", &id.to_string(), DEFAULT_SAMPLES, None, f);
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.to_string(), self.sample_size, self.throughput, f);
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
        max_iters: samples.max(1) as u64,
    };
    f(&mut b);
    let mean = b.mean();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<48} {:>12?} /iter  ({} iters){rate}",
        mean, b.iters_done
    );
}

/// Declares a group-runner function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags (`--bench`, filters).
            let _ = ::std::env::args();
            $($group();)+
        }
    };
}
