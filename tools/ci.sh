#!/usr/bin/env bash
# Offline CI gate: everything runs against the vendored stand-in crates
# (see vendor/README.md) — no network, no registry.
#
#   tools/ci.sh               # build + tests + clippy, both feature states
#   tools/ci.sh quick         # skip the release build (debug tests + clippy)
#   tools/ci.sh bench-smoke   # only the perf-regression smoke gate
#   tools/ci.sh matrix-smoke  # only the RPHAST matrix gate (release)
#   tools/ci.sh customize-smoke  # only the metric-customization gate
#   tools/ci.sh canary-smoke  # only the guarded-rollout (canary) gate
#   tools/ci.sh router-chaos  # only the replicated-tier kill-a-backend gate
#   tools/ci.sh mmap-smoke    # only the zero-copy artifact load gate
#   tools/ci.sh contract-smoke  # only the parallel-contraction gate
#
# Mirrors the checks the repo treats as tier-1: a release build, the full
# test suite in the default build AND with the hot-path observability
# counters compiled in (--features obs-counters), and a warning-free
# clippy pass over all targets.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

step() { printf '\n== %s ==\n' "$*"; }

# The perf-regression smoke: a reduced-size suite run of `phast_cli
# bench` must emit a valid BENCH artifact, a live re-run compared against
# it must pass (generous threshold — the gate tests the plumbing, not
# this machine's jitter), and an injected 10x slowdown against the same
# baseline must flip the exit code. If the injected regression escapes,
# the perf gate is decorative and CI fails loudly.
bench_smoke() {
    step "perf-regression smoke (phast_cli bench)"
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    PHAST_SCALE=2000 cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        bench --samples 5 --warmup 1 --k 8 --out "$dir/BENCH_base.json"
    step "bench self-compare must pass"
    PHAST_SCALE=2000 cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        bench --samples 5 --warmup 1 --k 8 --out "$dir/BENCH_cur.json" \
        --baseline "$dir/BENCH_base.json" --threshold-pct 400 --mad-k 40
    step "bench injected regression must fail"
    if PHAST_SCALE=2000 PHAST_BENCH_SLOWDOWN='phast_single_tree:10' \
        cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        bench --samples 5 --warmup 1 --k 8 --out "$dir/BENCH_slow.json" \
        --baseline "$dir/BENCH_base.json" --threshold-pct 400 --mad-k 40 \
        >/dev/null 2>&1; then
        echo "error: injected slowdown escaped the perf gate" >&2
        exit 1
    fi
    echo "bench smoke ok"
}

# The RPHAST matrix gate, in release mode: the serve `matrix` protocol
# differential tests (typed malformed/over-cap replies, deadline expiry,
# matrix rows vs per-source trees on one socket) plus the restricted-sweep
# differential battery (RPHAST == full sweep == Dijkstra proptests and the
# in-crate selection/engine proptests).
matrix_smoke() {
    step "RPHAST matrix gate (serve differential + restricted proptests, release)"
    cargo test -q --release --test serve_matrix --test rphast_battery
    cargo test -q --release -p phast-core rphast
    echo "matrix smoke ok"
}

# The metric-customization gate (DESIGN.md §14): the exactness battery
# (customized == recontracted == Dijkstra on >= 3 perturbed metrics) and
# the live hot-swap differentials in release, then the CLI flow end to
# end — customize a perturbed metric into a servable artifact, serve the
# base graph with --watch-metric and require the watcher to publish the
# dropped-in weights as a new epoch, run the loadgen swap actor (every
# reply checked against its admission epoch's Dijkstra reference), and
# prove a future-version artifact dies with the typed error, not a panic.
customize_smoke() {
    step "metric customization gate (battery + hot-swap differentials, release)"
    cargo test -q --release --test metric_battery --test serve_metric_swap

    step "cli customize -> serve --watch-metric smoke"
    local dir out
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        generate --vertices 2000 --metric time --seed 7 -o "$dir/net.gr"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        customize "$dir/net.gr" --perturb 42 --name rush --version 2 \
        --out "$dir/rush.phast" --emit-metric "$dir/rush.json"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        tree "$dir/rush.phast" --source 0 --top 3 >/dev/null
    out="$(cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        serve "$dir/net.gr" --addr 127.0.0.1:0 --duration-ms 2500 \
        --watch-metric "$dir/rush.json" --watch-interval-ms 100 2>&1)"
    if ! grep -q 'metric watcher: published `rush` v2' <<<"$out"; then
        echo "error: --watch-metric never published the dropped-in metric" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi

    step "loadgen swap actor (epoch-checked replies)"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
        --vertices 1200 --chaos --chaos-modes swap,burst --smoke

    step "future-version artifact must fail typed"
    cp "$dir/rush.phast" "$dir/future.phast"
    printf '\xff' | dd of="$dir/future.phast" bs=1 seek=8 count=1 \
        conv=notrunc status=none
    if out="$(cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        tree "$dir/future.phast" --source 0 2>&1)"; then
        echo "error: future-version artifact was accepted" >&2
        exit 1
    fi
    if ! grep -q 'unsupported format version' <<<"$out" \
        || grep -q 'panicked' <<<"$out"; then
        echo "error: version skew must be a typed error, got: $out" >&2
        exit 1
    fi
    echo "customize smoke ok"
}

# The guarded-rollout gate (DESIGN.md §16): the canary/guard/rollback
# unit and e2e tests in release, then the CLI flow with the fault seam —
# an honest metric must roll out cleanly through `serve --watch-metric`,
# and the *same* flow with PHAST_CANARY_FAULT armed must end with the
# poisoned metric canary-rejected and never published (CI fails loudly if
# it publishes). Finally the poison-metric chaos mode: a poisoned drop
# mid-burst behind the live TCP server, zero wrong well-behaved replies.
canary_smoke() {
    step "guarded rollout gate (epoch ring + watcher canary/guard, release)"
    cargo test -q --release --test serve_metric_swap
    cargo test -q --release -p phast-serve -p phast-metrics

    step "cli serve --watch-metric: honest metric publishes"
    local dir out
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        generate --vertices 2000 --metric time --seed 7 -o "$dir/net.gr"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        customize "$dir/net.gr" --perturb 42 --name rush --version 2 \
        --out "$dir/rush.phast" --emit-metric "$dir/rush.json"
    out="$(cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        serve "$dir/net.gr" --addr 127.0.0.1:0 --duration-ms 2500 \
        --watch-metric "$dir/rush.json" --watch-interval-ms 100 2>&1)"
    if ! grep -q 'metric watcher: published `rush` v2' <<<"$out"; then
        echo "error: the honest metric never published" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi

    step "cli serve --watch-metric: injected fault must be canary-caught"
    out="$(PHAST_CANARY_FAULT=rush \
        cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        serve "$dir/net.gr" --addr 127.0.0.1:0 --duration-ms 2500 \
        --watch-metric "$dir/rush.json" --watch-interval-ms 100 2>&1)"
    if grep -q 'metric watcher: published `rush`' <<<"$out"; then
        echo "error: a poisoned metric was published live" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    if ! grep -q 'metric watcher: canary rejected `rush` v2' <<<"$out"; then
        echo "error: the canary never rejected the poisoned metric" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi

    step "poison-metric chaos gate (live TCP, epoch-checked replies)"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
        --vertices 1200 --chaos --chaos-modes poison-metric --smoke
    echo "canary smoke ok"
}

# The replicated-tier chaos gate (DESIGN.md §15): two real `phast_cli
# serve` replicas behind the `phast-router` failover front, driven by
# well-behaved loadgen clients while one replica is SIGKILLed and later
# restarted on its old port. Fails unless every well-behaved reply stayed
# exact against the Dijkstra reference, the kill forced at least one
# failover and an ejection, and the restart rejoined rotation through the
# half-open door. The router unit/differential tests run first so a gate
# failure points at the tier, not the router internals.
router_chaos() {
    step "router failover differentials (release)"
    cargo test -q --release -p phast-router
    step "replicated-tier kill-a-backend chaos gate"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
        --vertices 1200 --chaos --chaos-modes kill-backend --smoke
    echo "router chaos ok"
}

# The zero-copy artifact gate: the mmap/heap parity battery (every fault
# injected into the mmap path must yield the same typed error as the heap
# decoder), then the CLI flow — preprocess to a PHASTBIN v3 artifact and
# require the `tree` load to announce the zero-copy path and still answer.
mmap_smoke() {
    step "mmap/heap parity battery (release)"
    cargo test -q --release -p phast-store --test mmap_parity
    step "cli preprocess -> zero-copy tree load"
    local dir out
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        generate --vertices 2000 --metric time --seed 7 -o "$dir/net.gr"
    cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        preprocess "$dir/net.gr" --out "$dir/inst.phast"
    out="$(cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        tree "$dir/inst.phast" --source 0 --top 3 2>&1)"
    if ! grep -q 'zero-copy (mmap)' <<<"$out"; then
        echo "error: a fresh v3 artifact did not take the zero-copy path" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    echo "mmap smoke ok"
}

# The parallel-contraction gate (DESIGN.md §17): the differential battery
# (parallel == sequential == Dijkstra, bit-identical hierarchies across
# thread counts) in release at two *ambient* thread counts — PHAST_THREADS
# reaches the contractor through the `threads: 0` resolution path, so this
# also proves the env knob is live — then a reduced bench run that must
# land both contraction entries in the BENCH artifact, keeping the
# parallel-vs-sequential trend on the perf trajectory.
contract_smoke() {
    step "parallel contraction gate (differential battery, release)"
    PHAST_THREADS=1 cargo test -q --release --test contract_battery
    PHAST_THREADS=4 cargo test -q --release --test contract_battery
    step "contraction regress entries land in the BENCH artifact"
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    PHAST_SCALE=1500 cargo run -q ${PROFILE_FLAG} -p phast-bench --bin phast_cli -- \
        bench --samples 5 --warmup 1 --k 8 --out "$dir/BENCH_contract.json"
    for name in contract_10e5 contract_par_10e5; do
        if ! grep -q "\"$name\"" "$dir/BENCH_contract.json"; then
            echo "error: bench artifact is missing the $name entry" >&2
            exit 1
        fi
    done
    echo "contract smoke ok"
}

PROFILE_FLAG=""
if [[ "${1:-}" == "bench-smoke" || "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke
    step "ci green (bench-smoke only)"
    exit 0
fi
if [[ "${1:-}" == "matrix-smoke" || "${1:-}" == "--matrix-smoke" ]]; then
    matrix_smoke
    step "ci green (matrix-smoke only)"
    exit 0
fi
if [[ "${1:-}" == "customize-smoke" || "${1:-}" == "--customize-smoke" ]]; then
    customize_smoke
    step "ci green (customize-smoke only)"
    exit 0
fi
if [[ "${1:-}" == "canary-smoke" || "${1:-}" == "--canary-smoke" ]]; then
    canary_smoke
    step "ci green (canary-smoke only)"
    exit 0
fi
if [[ "${1:-}" == "router-chaos" || "${1:-}" == "--router-chaos" ]]; then
    router_chaos
    step "ci green (router-chaos only)"
    exit 0
fi
if [[ "${1:-}" == "mmap-smoke" || "${1:-}" == "--mmap-smoke" ]]; then
    mmap_smoke
    step "ci green (mmap-smoke only)"
    exit 0
fi
if [[ "${1:-}" == "contract-smoke" || "${1:-}" == "--contract-smoke" ]]; then
    contract_smoke
    step "ci green (contract-smoke only)"
    exit 0
fi
if [[ "${1:-}" != "quick" ]]; then
    step "release build"
    cargo build --release --workspace
    PROFILE_FLAG="--release"
fi

step "tests (default features)"
cargo test -q --workspace

step "tests (--features obs-counters)"
cargo test -q --workspace --features obs-counters

# The artifact-store fault-injection suite: every single-bit flip, every
# truncation point, version/magic/kind skew — each must be a typed error,
# never a panic or a silently wrong tree.
step "store fault-injection gate"
cargo test -q -p phast-store --test fault_injection

# A ~2 s loopback serve+loadgen run: 16 closed-loop clients against the
# batching scheduler; fails unless at least one sweep served >= 2
# requests (mean batch occupancy > 1), i.e. batching actually engages.
step "serve + loadgen batching smoke"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --clients 16 --k 16 --window-ms 2 \
    --duration-ms 2000 --smoke

# The supervision soak: a poisoned request panics a worker mid-run under
# concurrent load; the run fails unless the worker restart registered,
# the poisoned request came back as a typed error, and the service kept
# answering afterwards.
step "serve supervision soak (--inject-panic)"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --clients 8 --k 8 --window-ms 2 \
    --duration-ms 1500 --inject-panic

# The chaos gate: slowloris writers, mid-request disconnects, garbage
# floods, oversized lines and burst storms against a live server, with
# well-behaved clients checking every answer against the scalar Dijkstra
# reference. Fails unless the well-behaved traffic stayed 100% exact, the
# hardening counters registered the abuse, and live connections stayed
# under --max-conns throughout.
step "serve chaos gate (--chaos --smoke)"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --chaos --smoke

bench_smoke

matrix_smoke

customize_smoke

canary_smoke

router_chaos

mmap_smoke

contract_smoke

step "clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

step "clippy (--features obs-counters)"
cargo clippy --workspace --all-targets --features obs-counters -- -D warnings

step "ci green"
