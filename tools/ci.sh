#!/usr/bin/env bash
# Offline CI gate: everything runs against the vendored stand-in crates
# (see vendor/README.md) — no network, no registry.
#
#   tools/ci.sh          # build + tests + clippy, both feature states
#   tools/ci.sh quick    # skip the release build (debug tests + clippy)
#
# Mirrors the checks the repo treats as tier-1: a release build, the full
# test suite in the default build AND with the hot-path observability
# counters compiled in (--features obs-counters), and a warning-free
# clippy pass over all targets.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

step() { printf '\n== %s ==\n' "$*"; }

PROFILE_FLAG=""
if [[ "${1:-}" != "quick" ]]; then
    step "release build"
    cargo build --release --workspace
    PROFILE_FLAG="--release"
fi

step "tests (default features)"
cargo test -q --workspace

step "tests (--features obs-counters)"
cargo test -q --workspace --features obs-counters

# The artifact-store fault-injection suite: every single-bit flip, every
# truncation point, version/magic/kind skew — each must be a typed error,
# never a panic or a silently wrong tree.
step "store fault-injection gate"
cargo test -q -p phast-store --test fault_injection

# A ~2 s loopback serve+loadgen run: 16 closed-loop clients against the
# batching scheduler; fails unless at least one sweep served >= 2
# requests (mean batch occupancy > 1), i.e. batching actually engages.
step "serve + loadgen batching smoke"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --clients 16 --k 16 --window-ms 2 \
    --duration-ms 2000 --smoke

# The supervision soak: a poisoned request panics a worker mid-run under
# concurrent load; the run fails unless the worker restart registered,
# the poisoned request came back as a typed error, and the service kept
# answering afterwards.
step "serve supervision soak (--inject-panic)"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --clients 8 --k 8 --window-ms 2 \
    --duration-ms 1500 --inject-panic

# The chaos gate: slowloris writers, mid-request disconnects, garbage
# floods, oversized lines and burst storms against a live server, with
# well-behaved clients checking every answer against the scalar Dijkstra
# reference. Fails unless the well-behaved traffic stayed 100% exact, the
# hardening counters registered the abuse, and live connections stayed
# under --max-conns throughout.
step "serve chaos gate (--chaos --smoke)"
cargo run -q ${PROFILE_FLAG} -p phast-bench --bin loadgen -- \
    --vertices 1200 --chaos --smoke

step "clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

step "clippy (--features obs-counters)"
cargo clippy --workspace --all-targets --features obs-counters -- -D warnings

step "ci green"
