//! Many-to-many distance matrices with restricted sweeps.
//!
//! Logistics workloads need an S × T distance matrix, not full trees. The
//! sweep's source-independence lets it be *restricted* once per target
//! set — only the downward closure of the targets is swept per source —
//! which is the batched one-to-many mode built on top of PHAST.
//!
//! ```text
//! cargo run --release --example distance_matrix
//! ```

use phast::core::{Phast, TargetRestriction};
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::INF;
use std::time::Instant;

fn main() {
    let net = RoadNetworkConfig::europe_like(150_000, 21, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices() as u32;
    println!("network: {} vertices, {} arcs", g.num_vertices(), g.num_arcs());

    let t = Instant::now();
    let solver = Phast::preprocess(g);
    println!("preprocessing: {:.2?}", t.elapsed());

    // A 64 x 32 matrix: depots x customers.
    let sources: Vec<u32> = (0..64).map(|i| i * 1013 % n).collect();
    let targets: Vec<u32> = (0..32).map(|i| (i * 2027 + 500) % n).collect();

    // Restricted: one closure for all queries.
    let t = Instant::now();
    let restriction = TargetRestriction::new(&solver, &targets);
    println!(
        "target restriction: closure of {} vertices ({:.1}% of the graph) in {:.2?}",
        restriction.closure_size(),
        100.0 * restriction.closure_size() as f64 / g.num_vertices() as f64,
        t.elapsed()
    );
    let mut engine = restriction.engine();
    let t = Instant::now();
    let matrix: Vec<Vec<u32>> = sources.iter().map(|&s| engine.distances(s)).collect();
    let restricted_time = t.elapsed();
    println!(
        "matrix via restricted sweeps: {:.2?} total, {:.2?} per source",
        restricted_time,
        restricted_time / sources.len() as u32
    );

    // Baseline: full sweeps.
    let mut full = solver.engine();
    let t = Instant::now();
    for (i, &s) in sources.iter().enumerate() {
        let labels = full.distances(s);
        for (j, &tgt) in targets.iter().enumerate() {
            assert_eq!(matrix[i][j], labels[tgt as usize], "matrix[{i}][{j}]");
        }
    }
    let full_time = t.elapsed();
    println!(
        "matrix via full sweeps:       {:.2?} total ({:.1}x slower, verified equal)",
        full_time,
        full_time.as_secs_f64() / restricted_time.as_secs_f64()
    );

    // A taste of the result: nearest depot per customer.
    let mut served = 0;
    for j in 0..targets.len() {
        let best = matrix.iter().map(|row| row[j]).min().unwrap_or(INF);
        if best < INF {
            served += 1;
        }
    }
    println!("{served}/{} customers reachable from some depot", targets.len());
}
