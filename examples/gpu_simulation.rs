//! GPHAST on the simulated GPU: batch trees, inspect the cost model.
//!
//! The simulator executes the real kernel-per-level algorithm (results are
//! bit-identical to CPU PHAST) and charges time through a coalescing +
//! roofline model calibrated with GTX 580/480 specifications. See
//! `DESIGN.md` for the substitution rationale.
//!
//! ```text
//! cargo run --release --example gpu_simulation
//! ```

use phast::core::Phast;
use phast::gpu::{DeviceProfile, Gphast};
use phast::graph::gen::{Metric, RoadNetworkConfig};

fn main() {
    let net = RoadNetworkConfig::europe_like(100_000, 3, Metric::TravelTime).build();
    let g = &net.graph;
    println!("network: {} vertices, {} arcs", g.num_vertices(), g.num_arcs());
    let phast = Phast::preprocess(g);
    println!("levels: {} (one kernel launch each)", phast.num_levels());

    for profile in [DeviceProfile::gtx_580(), DeviceProfile::gtx_480()] {
        println!("\n--- {} ---", profile.name);
        for k in [1usize, 8, 32] {
            let mut gp = match Gphast::new(&phast, profile.clone(), k) {
                Ok(gp) => gp,
                Err(e) => {
                    println!("k={k}: {e}");
                    continue;
                }
            };
            let sources: Vec<u32> = (0..k as u32).map(|i| i * 997 % g.num_vertices() as u32).collect();
            let stats = gp.run(&sources);
            println!(
                "k={k:>2}: {:>8.3} ms/tree  | {:>6.1} MB device memory | {} kernels, {} DRAM transactions",
                stats.time_per_tree.as_secs_f64() * 1e3,
                stats.device_memory_bytes as f64 / 1e6,
                stats.kernel_launches,
                stats.dram_transactions,
            );
            // Verify one tree against the CPU engine.
            let mut cpu = phast.engine();
            let want = cpu.distances(sources[0]);
            assert_eq!(gp.tree_distances(0), want, "GPU results must equal CPU");
        }
    }
    println!("\nall GPU results verified against CPU PHAST");
}
