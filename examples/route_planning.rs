//! Route planning: point-to-point queries with contraction hierarchies and
//! arc flags — the paper's motivating application domain.
//!
//! Demonstrates (a) CH queries with full path unpacking, and (b) arc-flag
//! preprocessing accelerated by reverse PHAST trees (Section VII-B.b),
//! with the resulting query speedup over plain Dijkstra.
//!
//! ```text
//! cargo run --release --example route_planning
//! ```

use phast::apps::{ArcFlags, Partition};
use phast::ch::{contract_graph, ChQuery, ContractionConfig};
use phast::core::{Direction, PhastBuilder};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use std::time::Instant;

fn main() {
    let net = RoadNetworkConfig::europe_like(40_000, 7, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices() as u32;
    println!("network: {} vertices, {} arcs", g.num_vertices(), g.num_arcs());

    // --- Contraction hierarchy point-to-point queries -------------------
    let t = Instant::now();
    let h = contract_graph(g, &ContractionConfig::default());
    println!("CH preprocessing: {:.2?}, {} shortcuts", t.elapsed(), h.num_shortcuts);

    let mut query = ChQuery::new(&h);
    let pairs: Vec<(u32, u32)> = (0..200).map(|i| (i * 131 % n, i * 197 % n)).collect();
    let t = Instant::now();
    let mut settled_total = 0usize;
    for &(s, tgt) in &pairs {
        let (d, stats) = query.query_with_stats(s, tgt);
        settled_total += stats.settled;
        assert!(d.is_some(), "network is strongly connected");
    }
    println!(
        "CH queries: {:.2?}/query, {} vertices settled on average (of {n})",
        t.elapsed() / pairs.len() as u32,
        settled_total / pairs.len()
    );

    // Unpack one full route.
    let (dist, path) = query.query_path(0, n - 1).expect("connected");
    println!(
        "route 0 -> {}: length {dist}, {} road segments",
        n - 1,
        path.len() - 1
    );

    // --- Arc flags -------------------------------------------------------
    let cells = Partition::grid(&net.coords, 8, 8);
    let rev = PhastBuilder::new().direction(Direction::Reverse).build(g);
    let t = Instant::now();
    let flags = ArcFlags::preprocess_phast(g, cells, &rev);
    println!(
        "arc-flag preprocessing (PHAST reverse trees): {:.2?}, {} flags set",
        t.elapsed(),
        flags.count_set()
    );

    // Query speedup: settled vertices vs plain Dijkstra.
    let (s, tgt) = (0u32, n - 1);
    let plain = shortest_paths(g.forward(), s);
    let (d, settled) = flags.query(g, s, tgt);
    assert_eq!(d, Some(plain.dist[tgt as usize]));
    println!(
        "arc-flag query {s} -> {tgt}: settled {settled} vertices vs {} for plain Dijkstra ({:.0}x fewer)",
        plain.scanned,
        plain.scanned as f64 / settled as f64
    );
}
