//! Quickstart: build a road network, preprocess it, compute shortest path
//! trees — and check PHAST against Dijkstra.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phast::core::Phast;
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::INF;
use std::time::Instant;

fn main() {
    // 1. A synthetic continental road network (use `phast::graph::dimacs`
    //    to load a real DIMACS instance instead).
    let net = RoadNetworkConfig::europe_like(100_000, 42, Metric::TravelTime).build();
    let g = &net.graph;
    println!(
        "network: {} vertices, {} arcs",
        g.num_vertices(),
        g.num_arcs()
    );

    // 2. One-time preprocessing: contraction hierarchy + level reordering.
    let t = Instant::now();
    let phast = Phast::preprocess(g);
    println!(
        "preprocessing: {:.2?} ({} levels, {} shortcuts)",
        t.elapsed(),
        phast.num_levels(),
        phast.num_shortcuts()
    );

    // 3. Shortest path trees, one linear sweep each.
    let mut engine = phast.engine();
    let source = 0;
    let t = Instant::now();
    let dist = engine.distances(source);
    let phast_time = t.elapsed();

    let t = Instant::now();
    let reference = shortest_paths(g.forward(), source);
    let dijkstra_time = t.elapsed();

    assert_eq!(dist, reference.dist, "PHAST must agree with Dijkstra");
    let reached = dist.iter().filter(|&&d| d < INF).count();
    let farthest = dist.iter().filter(|&&d| d < INF).max().unwrap();
    println!(
        "tree from {source}: {reached} vertices reached, eccentricity {farthest}"
    );
    println!(
        "PHAST {phast_time:.2?} vs Dijkstra {dijkstra_time:.2?} ({:.1}x)",
        dijkstra_time.as_secs_f64() / phast_time.as_secs_f64()
    );

    // 4. Many trees at once: 16 sources per sweep with SIMD.
    let sources: Vec<u32> = (0..16).map(|i| i * 1000).collect();
    let mut multi = phast.multi_engine(16);
    let t = Instant::now();
    multi.run(&sources);
    println!(
        "16 trees per sweep: {:.2?} total, {:.2?} per tree (kernel {:?})",
        t.elapsed(),
        t.elapsed() / 16,
        multi.simd_level()
    );
}
