//! Network analysis: diameter, exact reach, and betweenness centrality —
//! the Section VII applications that need a tree from *every* vertex.
//!
//! ```text
//! cargo run --release --example centrality
//! ```

use phast::apps::{betweenness_phast, diameter_phast, reaches_phast};
use phast::core::Phast;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use std::time::Instant;

fn main() {
    let net = RoadNetworkConfig::europe_like(10_000, 99, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices();
    println!("network: {n} vertices, {} arcs", g.num_arcs());

    let t = Instant::now();
    let phast = Phast::preprocess(g);
    println!("preprocessing: {:.2?}", t.elapsed());

    let all: Vec<u32> = (0..n as u32).collect();

    // Exact diameter: n trees, max label.
    let t = Instant::now();
    let diameter = diameter_phast(&phast, &all).expect("non-empty");
    println!(
        "diameter: {diameter} (tenths of seconds of driving) — {n} trees in {:.2?}",
        t.elapsed()
    );

    // Exact reach: n trees with bottom-up height aggregation.
    let t = Instant::now();
    let reach = reaches_phast(&phast, &all);
    let mut by_reach: Vec<(u32, u32)> = reach
        .iter()
        .enumerate()
        .map(|(v, &r)| (r, v as u32))
        .collect();
    by_reach.sort_unstable_by(|a, b| b.cmp(a));
    println!("exact reaches in {:.2?}; top-5 reach vertices:", t.elapsed());
    for &(r, v) in by_reach.iter().take(5) {
        let (x, y) = net.coords[v as usize];
        println!("  vertex {v} at ({x:.0} m, {y:.0} m): reach {r}");
    }

    // Exact betweenness (Brandes with PHAST distances).
    let t = Instant::now();
    let bc = betweenness_phast(&phast, &all);
    let mut by_bc: Vec<(f64, u32)> = bc
        .iter()
        .enumerate()
        .map(|(v, &c)| (c, v as u32))
        .collect();
    by_bc.sort_unstable_by(|a, b| b.partial_cmp(a).expect("betweenness is finite"));
    println!("exact betweenness in {:.2?}; top-5 central vertices:", t.elapsed());
    for &(c, v) in by_bc.iter().take(5) {
        println!("  vertex {v}: betweenness {c:.0}");
    }

    // Sanity: high-betweenness vertices should also have high reach (both
    // pick out the motorway mesh).
    let top_bc: Vec<u32> = by_bc.iter().take(n / 20).map(|&(_, v)| v).collect();
    let avg_reach_top: f64 =
        top_bc.iter().map(|&v| reach[v as usize] as f64).sum::<f64>() / top_bc.len() as f64;
    let avg_reach_all: f64 = reach.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
    println!(
        "avg reach of top-5% betweenness vertices: {avg_reach_top:.0} vs {avg_reach_all:.0} overall"
    );
}
