//! Preprocess once, persist, reload, and answer full path queries.
//!
//! The CH/PHAST preprocessing costs minutes on continental inputs; real
//! deployments run it offline and ship the artifact. This example saves a
//! `Phast` instance with serde, reloads it, and expands full shortest
//! paths (Section VII-A's shortcut unpacking).
//!
//! ```text
//! cargo run --release --example persist_and_route
//! ```

use phast::core::Phast;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use std::io::Write;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = RoadNetworkConfig::europe_like(15_000, 11, Metric::TravelTime).build();
    let g = &net.graph;
    println!("network: {} vertices, {} arcs", g.num_vertices(), g.num_arcs());

    // Preprocess and persist.
    let t = std::time::Instant::now();
    let solver = Phast::preprocess(g);
    println!("preprocessing: {:.2?}", t.elapsed());

    let dir = std::env::temp_dir().join("phast-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("europe.phast.json");
    let t = std::time::Instant::now();
    let bytes = serde_json::to_vec(&solver)?;
    std::fs::File::create(&path)?.write_all(&bytes)?;
    println!(
        "saved {} ({:.1} MB) in {:.2?}",
        path.display(),
        bytes.len() as f64 / 1e6,
        t.elapsed()
    );

    // Reload and validate.
    let t = std::time::Instant::now();
    let loaded: Phast = serde_json::from_slice(&std::fs::read(&path)?)?;
    loaded.validate().expect("loaded artifact is structurally sound");
    println!("reloaded + validated in {:.2?}", t.elapsed());

    // Route with full path expansion.
    let mut trees = loaded.tree_engine();
    let source = 0u32;
    trees.run(source);
    for target in [100u32, 7_000, g.num_vertices() as u32 - 1] {
        let path = trees.path_to(target).expect("strongly connected");
        let dist = trees.labels()[loaded.to_sweep(target) as usize];
        println!(
            "route {source} -> {target}: length {dist}, {} segments, via {:?}...",
            path.len() - 1,
            &path[..path.len().min(6)]
        );
        // Every consecutive pair is an original road segment.
        for w in path.windows(2) {
            assert!(
                g.out(w[0]).iter().any(|a| a.head == w[1]),
                "expanded path must use original arcs"
            );
        }
    }
    std::fs::remove_file(&path).ok();
    println!("all routes verified against the original graph");
    Ok(())
}
