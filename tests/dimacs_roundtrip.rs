//! DIMACS file IO: real-instance ingestion path, round-tripped.

use phast::core::Phast;
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::dimacs::{read_co, read_gr, write_co, write_gr};
use phast::graph::gen::{Metric, RoadNetworkConfig};

#[test]
fn generated_network_roundtrips_through_dimacs_and_solves() {
    let net = RoadNetworkConfig::new(12, 12, 31415, Metric::TravelTime).build();

    let mut gr = Vec::new();
    write_gr(&mut gr, &net.graph).unwrap();
    let mut co = Vec::new();
    write_co(&mut co, &net.coords).unwrap();

    let g2 = read_gr(&gr[..]).unwrap();
    let coords2 = read_co(&co[..]).unwrap();
    assert_eq!(g2.forward(), net.graph.forward());
    assert_eq!(coords2.len(), net.coords.len());
    // Coordinates round to integers in the file; stay within a meter.
    for ((x1, y1), (x2, y2)) in net.coords.iter().zip(&coords2) {
        assert!((x1 - x2).abs() <= 0.5 && (y1 - y2).abs() <= 0.5);
    }

    // The re-read graph is solvable and agrees with the original.
    let p = Phast::preprocess(&g2);
    let mut e = p.engine();
    let want = shortest_paths(net.graph.forward(), 0).dist;
    assert_eq!(e.distances(0), want);
}

#[test]
fn dimacs_gr_is_one_based_text() {
    let net = RoadNetworkConfig::new(3, 3, 1, Metric::TravelTime).build();
    let mut gr = Vec::new();
    write_gr(&mut gr, &net.graph).unwrap();
    let text = String::from_utf8(gr).unwrap();
    assert!(text.contains("p sp "));
    // No vertex 0 may appear in arc lines (IDs are 1-based).
    for line in text.lines().filter(|l| l.starts_with('a')) {
        let ids: Vec<u64> = line
            .split_whitespace()
            .skip(1)
            .take(2)
            .map(|t| t.parse().unwrap())
            .collect();
        assert!(ids.iter().all(|&id| id >= 1));
    }
}
