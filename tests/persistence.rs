//! Serialization round-trips: preprocessing is expensive, so a downstream
//! user wants to run it once and persist the result.

use phast::core::Phast;
use phast::graph::gen::{Metric, RoadNetworkConfig};

#[test]
fn phast_instance_roundtrips_through_serde() {
    let net = RoadNetworkConfig::new(10, 10, 55, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);
    let json = serde_json::to_string(&p).expect("serialize");
    let q: Phast = serde_json::from_str(&json).expect("deserialize");
    q.validate().expect("deserialized instance is structurally valid");
    // Identical behaviour after the round trip.
    let mut ep = p.engine();
    let mut eq = q.engine();
    for s in [0u32, 17, 80] {
        assert_eq!(ep.distances(s), eq.distances(s));
    }
    assert_eq!(p.num_levels(), q.num_levels());
    assert_eq!(p.num_shortcuts(), q.num_shortcuts());
}

#[test]
fn binary_store_and_json_agree_bit_for_bit() {
    // The binary `.phast` store and the legacy JSON path are alternative
    // encodings of the same instance: loading either must produce
    // bit-identical distance arrays for every source.
    let net = RoadNetworkConfig::new(10, 10, 55, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);

    let dir = std::env::temp_dir().join(format!("phast-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bin_path = dir.join("inst.phast");
    phast::store::write_instance(&bin_path, &p, None).expect("write binary store");
    let (from_bin, h) = phast::store::read_instance(&bin_path).expect("read binary store");
    assert!(h.is_none(), "no hierarchy was bundled");

    let json = serde_json::to_string(&p).expect("serialize");
    let from_json: Phast = serde_json::from_str(&json).expect("deserialize");

    let mut eb = from_bin.engine();
    let mut ej = from_json.engine();
    for s in 0..net.graph.num_vertices() as u32 {
        assert_eq!(eb.distances(s), ej.distances(s), "source {s}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hierarchy_roundtrips_through_serde() {
    let net = RoadNetworkConfig::new(8, 8, 56, Metric::TravelTime).build();
    let h = phast::ch::contract_graph(&net.graph, &phast::ch::ContractionConfig::default());
    let json = serde_json::to_string(&h).expect("serialize");
    let h2: phast::ch::Hierarchy = serde_json::from_str(&json).expect("deserialize");
    h2.validate().expect("valid after round trip");
    let mut q1 = phast::ch::ChQuery::new(&h);
    let mut q2 = phast::ch::ChQuery::new(&h2);
    for s in 0..8u32 {
        for t in 0..8u32 {
            assert_eq!(q1.query(s, t), q2.query(s, t));
        }
    }
}

#[test]
fn graph_roundtrips_through_serde() {
    let net = RoadNetworkConfig::new(6, 6, 57, Metric::TravelDistance).build();
    let json = serde_json::to_string(&net.graph).expect("serialize");
    let g2: phast::graph::Graph = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g2.forward(), net.graph.forward());
    assert_eq!(g2.num_arcs(), net.graph.num_arcs());
}
