//! The metric-customization exactness battery (ISSUE acceptance bar):
//! for randomly perturbed metrics, three independently derived engines
//! must agree tree-for-tree —
//!
//! 1. **customized** PHAST: freeze the topology once, run the
//!    `phast-metrics` customization pass for the new metric;
//! 2. **recontracted** PHAST: throw the hierarchy away and contract the
//!    reweighted graph from scratch (the expensive path customization
//!    replaces);
//! 3. **Dijkstra** on the reweighted graph (the ground truth).
//!
//! Any divergence means the frozen closure lost an arc some metric needs
//! — exactly the bug witness pruning would introduce (DESIGN.md §14).

use phast::ch::{contract_graph, ContractionConfig};
use phast::core::PhastBuilder;
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{Arc, Csr, Graph};
use phast::metrics::{MetricCustomizer, MetricWeights};

/// The base graph with `m`'s weights written over its arcs.
fn reweight(g: &Graph, m: &MetricWeights) -> Graph {
    let arcs = g
        .forward()
        .arcs()
        .iter()
        .zip(&m.weights)
        .map(|(a, &w)| Arc::new(a.head, w))
        .collect();
    Graph::from_csr(Csr::from_raw(g.forward().first().to_vec(), arcs))
}

#[test]
fn customized_equals_recontracted_equals_dijkstra() {
    let net = RoadNetworkConfig::new(14, 14, 77, Metric::TravelTime).build();
    let g = net.graph;
    let n = g.num_vertices() as u32;
    let h = contract_graph(&g, &ContractionConfig::default());
    let customizer = MetricCustomizer::new(g.clone(), &h).expect("freeze");

    // >= 3 independently perturbed metrics, per the acceptance criteria.
    for seed in [11u64, 222, 3333, 44444] {
        let m = MetricWeights::perturbed(&g, "battery", seed, seed ^ 0xD1FF);
        let (customized, _) = customizer.build(&m).expect("customize");

        let g2 = reweight(&g, &m);
        let h2 = contract_graph(&g2, &ContractionConfig::default());
        let recontracted = PhastBuilder::new().build_with_hierarchy(&g2, &h2);

        let mut ce = customized.engine();
        let mut re = recontracted.engine();
        for source in [0u32, n / 3, n / 2, n - 1] {
            let truth = shortest_paths(g2.forward(), source).dist;
            assert_eq!(
                ce.distances(source),
                truth,
                "customized != Dijkstra (metric seed {seed}, source {source})"
            );
            assert_eq!(
                re.distances(source),
                truth,
                "recontracted != Dijkstra (metric seed {seed}, source {source})"
            );
        }
    }
}

#[test]
fn customization_survives_extreme_metrics() {
    // Degenerate-but-legal metrics stress the closure in ways uniform
    // perturbation does not: all-equal weights (every tie possible) and a
    // metric that zeroes a cut of arcs (free travel).
    let net = RoadNetworkConfig::new(9, 9, 5, Metric::TravelDistance).build();
    let g = net.graph;
    let h = contract_graph(&g, &ContractionConfig::default());
    let customizer = MetricCustomizer::new(g.clone(), &h).expect("freeze");
    let num_arcs = g.num_arcs();

    let uniform = MetricWeights::new("uniform", 1, vec![7; num_arcs]).expect("metric");
    let sparse_free = MetricWeights::new(
        "sparse-free",
        2,
        (0..num_arcs).map(|i| if i % 5 == 0 { 0 } else { 1000 }).collect(),
    )
    .expect("metric");

    for m in [uniform, sparse_free] {
        let (p, _) = customizer.build(&m).expect("customize");
        let g2 = reweight(&g, &m);
        let mut e = p.engine();
        for source in [0u32, 40] {
            assert_eq!(
                e.distances(source),
                shortest_paths(g2.forward(), source).dist,
                "metric `{}`, source {source}",
                m.name
            );
        }
    }
}
