//! Protocol and differential tests for the serve `matrix` request: the
//! many-to-many RPHAST rung (DESIGN.md §13). Malformed or over-cap
//! requests must come back as typed errors on a connection that keeps
//! serving, deadlines must expire with a typed reply, and matrix rows
//! must be bit-identical to per-source `tree` replies obtained over the
//! very same socket.

use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::Vertex;
use phast::serve::protocol::{decode_reply, Reply};
use phast::serve::{Client, ErrorKind, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn start(cfg: ServeConfig) -> (Server, u32) {
    let net = RoadNetworkConfig::new(12, 12, 23, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;
    let service = phast::serve::Service::for_graph(&net.graph, cfg);
    (Server::spawn(service, "127.0.0.1:0").expect("bind"), n)
}

fn assert_error_line(line: &str, kind: ErrorKind, what: &str) {
    match decode_reply(line).expect(what) {
        Reply::Error(e) => assert_eq!(e.kind, kind, "{what}: {line}"),
        other => panic!("{what}: expected {kind:?} error, got {other:?}"),
    }
}

#[test]
fn malformed_matrix_requests_get_typed_replies_and_connection_survives() {
    let (server, n) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let cases: &[(&str, ErrorKind)] = &[
        // missing axes
        (r#"{"op":"matrix","sources":[0]}"#, ErrorKind::BadRequest),
        (r#"{"op":"matrix","targets":[0]}"#, ErrorKind::BadRequest),
        // empty axes
        (r#"{"op":"matrix","sources":[],"targets":[1]}"#, ErrorKind::BadRequest),
        (r#"{"op":"matrix","sources":[0],"targets":[]}"#, ErrorKind::BadRequest),
        // wrong element types
        (r#"{"op":"matrix","sources":["a"],"targets":[1]}"#, ErrorKind::BadRequest),
        (r#"{"op":"matrix","sources":[0],"targets":[-3]}"#, ErrorKind::BadRequest),
        // duplicate target: rejected as malformed, never silently deduped
        (r#"{"op":"matrix","sources":[0],"targets":[1,2,1]}"#, ErrorKind::Malformed),
        // out-of-range target: malformed, unlike the bad_request source path
        (r#"{"op":"matrix","sources":[0],"targets":[4000000000]}"#, ErrorKind::Malformed),
        // out-of-range source
        (r#"{"op":"matrix","sources":[4000000000],"targets":[1]}"#, ErrorKind::BadRequest),
    ];
    for (line, kind) in cases {
        let reply = c.roundtrip_line(line).expect("connection must stay open");
        assert_error_line(&reply, *kind, line);
    }
    // After the gauntlet, the same connection computes a real matrix.
    let rows = c.matrix(&[0, 1], &[2, n - 1], None).expect("still serving");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].len(), 2);
    server.shutdown();
}

#[test]
fn over_cap_matrices_are_refused_before_any_work_happens() {
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    // 1025 sources breach MAX_MATRIX_SOURCES; the reply is typed and the
    // parser rejects it before validation ever sees the graph.
    let sources: Vec<String> = (0..1025).map(|i| i.to_string()).collect();
    let line = format!(
        r#"{{"op":"matrix","sources":[{}],"targets":[0]}}"#,
        sources.join(",")
    );
    let reply = c.roundtrip_line(&line).expect("connection stays open");
    assert_error_line(&reply, ErrorKind::BadRequest, "source-cap breach");
    // 1024 x 4096 = 2^22 cells breach the 2^20 cell cap.
    let sources: Vec<String> = (0..1024).map(|i| i.to_string()).collect();
    let targets: Vec<String> = (0..4096).map(|i| i.to_string()).collect();
    let line = format!(
        r#"{{"op":"matrix","sources":[{}],"targets":[{}]}}"#,
        sources.join(","),
        targets.join(",")
    );
    let reply = c.roundtrip_line(&line).expect("connection stays open");
    assert_error_line(&reply, ErrorKind::BadRequest, "cell-cap breach");
    assert!(reply.contains("cell cap"), "{reply}");
    // No matrix work was performed for any refusal.
    assert_eq!(server.service().stats().matrix_requests(), 0);
    // The connection still serves a legitimate matrix.
    let rows = c.matrix(&[5], &[7], None).expect("still serving");
    assert_eq!(rows.len(), 1);
    server.shutdown();
}

#[test]
fn matrix_deadline_expires_mid_batch_with_typed_reply() {
    // One worker and a long window: an admitted filler keeps the worker
    // busy while the matrix job's zero deadline expires in the queue.
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(120),
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let filler = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.tree(0, None)
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut c = Client::connect(addr).expect("connect");
    let err = c
        .matrix(&[1, 2], &[3, 4], Some(0))
        .expect_err("zero deadline must expire");
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    assert!(filler.join().expect("filler thread").is_ok());
    // Same connection, no deadline: the matrix is served.
    let rows = c.matrix(&[1, 2], &[3, 4], None).expect("still serving");
    assert_eq!(rows.len(), 2);
    assert!(server.service().stats().deadline_misses() >= 1);
    server.shutdown();
}

#[test]
fn matrix_rows_match_per_source_tree_replies_on_the_same_socket() {
    let (server, n) = start(ServeConfig {
        window: Duration::from_millis(1),
        max_k: 8,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    for round in 0..4 {
        // Random source/target sets, including k-chunk remainders and a
        // source that is itself a target.
        let m = rng.random_range(1..12usize);
        let sources: Vec<Vertex> = (0..m).map(|_| rng.random_range(0..n)).collect();
        let mut targets: Vec<Vertex> = Vec::new();
        while targets.len() < rng.random_range(1..9usize) {
            let t = rng.random_range(0..n);
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        if round == 0 {
            // Pin the source-in-targets edge case in at least one round.
            targets[0] = sources[0];
        }
        let rows = c.matrix(&sources, &targets, None).expect("matrix");
        assert_eq!(rows.len(), sources.len());
        for (r, &s) in sources.iter().enumerate() {
            let tree = c.tree(s, None).expect("tree");
            let expect: Vec<_> = targets.iter().map(|&t| tree[t as usize]).collect();
            assert_eq!(rows[r], expect, "round {round}, source {s} diverged");
        }
    }
    let stats = server.service().stats();
    assert_eq!(stats.matrix_requests(), 4);
    assert!(stats.selection_builds() >= 1);
    server.shutdown();
}
