//! Cross-crate integration: restricted sweeps and multi-GPU batches agree
//! with every other engine.

use phast::core::{Phast, TargetRestriction};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::gpu::{DeviceProfile, MultiGpu};
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{GraphBuilder, Vertex, INF};
use proptest::prelude::*;

#[test]
fn restricted_sweeps_against_all_other_engines() {
    let net = RoadNetworkConfig::new(16, 16, 777, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices() as Vertex;
    let p = Phast::preprocess(g);
    let targets: Vec<Vertex> = vec![1, n / 2, n - 1];
    let r = TargetRestriction::new(&p, &targets);
    let mut restricted = r.engine();
    let mut full = p.engine();
    for s in (0..n).step_by(23) {
        let a = restricted.distances(s);
        let labels = full.distances(s);
        let d = shortest_paths(g.forward(), s).dist;
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(a[i], labels[t as usize], "restricted vs full, {s}->{t}");
            assert_eq!(a[i], d[t as usize], "restricted vs dijkstra, {s}->{t}");
        }
    }
}

#[test]
fn multi_gpu_bank_matches_single_device() {
    let net = RoadNetworkConfig::new(12, 12, 778, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);
    let sources: Vec<Vertex> = (0..12).map(|i| i * 11 % 140).collect();
    let mut bank = MultiGpu::new(&p, DeviceProfile::gtx_580(), 3, 4).unwrap();
    let stats = bank.run(&sources);
    assert_eq!(stats.num_devices, 3);
    assert_eq!(stats.trees, 12);
    // Device d, lane i handled source d*4 + i in the single round.
    for d in 0..3usize {
        for i in 0..4usize {
            let s = sources[d * 4 + i];
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(bank.tree_distances(d, i), want, "device {d} lane {i}");
        }
    }
}

#[test]
fn unreachable_targets_stay_at_inf() {
    // 0 -> 1 is the only arc; 2 and 3 are isolated, so from any source
    // most targets are unreachable and must come back as exactly INF.
    let mut b = GraphBuilder::new(4);
    b.add_arc(0, 1, 5);
    let g = b.build();
    let p = Phast::preprocess(&g);
    let r = TargetRestriction::new(&p, &[1, 2, 3]);
    let mut e = r.engine();
    assert_eq!(e.distances(0), vec![5, INF, INF]);
    assert_eq!(e.distances(2), vec![INF, 0, INF]);
    assert_eq!(e.distances(3), vec![INF, INF, 0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Differential harness: restricted one-to-many sweeps agree with a
    /// plain textbook Dijkstra on arbitrary digraphs built arc-by-arc
    /// through `GraphBuilder` — including disconnected shapes, so target
    /// sets routinely contain unreachable (INF) entries, duplicates, and
    /// the source itself.
    #[test]
    fn one_to_many_matches_dijkstra_on_random_graphs(
        n in 1u32..24,
        raw_arcs in proptest::collection::vec((0u32..24, 0u32..24, 1u32..60), 1..64),
        raw_targets in proptest::collection::vec(0u32..24, 1..10),
        raw_source in 0u32..24,
    ) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw_arcs {
            b.add_arc(u % n, v % n, w);
        }
        let g = b.build();
        let p = Phast::preprocess(&g);
        let targets: Vec<Vertex> = raw_targets.iter().map(|&t| t % n).collect();
        let r = TargetRestriction::new(&p, &targets);
        let mut e = r.engine();
        let s = raw_source % n;
        let got = e.distances(s).to_vec();
        let want = shortest_paths(g.forward(), s).dist;
        prop_assert_eq!(got.len(), targets.len());
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(got[i], want[t as usize], "{} -> {}", s, t);
        }
        // Cross-check the INF convention: unreachable means exactly INF,
        // never a wrapped or partially-relaxed value.
        for (i, &t) in targets.iter().enumerate() {
            if want[t as usize] >= INF {
                prop_assert_eq!(got[i], INF);
            }
        }
    }
}

#[test]
fn restriction_closure_grows_with_target_count() {
    let net = RoadNetworkConfig::new(24, 24, 779, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);
    let few = TargetRestriction::new(&p, &[0]);
    let many: Vec<Vertex> = (0..40).map(|i| i * 13 % net.graph.num_vertices() as u32).collect();
    let many = TargetRestriction::new(&p, &many);
    assert!(few.closure_size() <= many.closure_size());
    assert!(many.closure_size() <= p.num_vertices());
}
