//! Integration tests for the Section VII applications across crates.

use phast::apps::{
    betweenness_dijkstra, betweenness_phast, diameter_dijkstra, diameter_phast, reaches_dijkstra,
    reaches_phast, ArcFlags, Partition,
};
use phast::core::{Direction, Phast, PhastBuilder};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::Vertex;

fn network() -> phast::graph::gen::RoadNetwork {
    RoadNetworkConfig::new(18, 18, 2024, Metric::TravelTime).build()
}

#[test]
fn full_application_pipeline() {
    let net = network();
    let g = &net.graph;
    let n = g.num_vertices();
    let p = Phast::preprocess(g);
    let all: Vec<Vertex> = (0..n as Vertex).collect();

    // Diameter agrees between PHAST and Dijkstra drivers.
    let d_p = diameter_phast(&p, &all);
    let d_d = diameter_dijkstra(g.forward(), &all);
    assert_eq!(d_p, d_d);
    assert!(d_p.unwrap() > 0);

    // Betweenness agrees to floating-point tolerance.
    let b_p = betweenness_phast(&p, &all);
    let b_d = betweenness_dijkstra(g.forward(), &all);
    for (x, y) in b_p.iter().zip(&b_d) {
        assert!((x - y).abs() < 1e-6, "betweenness mismatch: {x} vs {y}");
    }

    // Reaches: PHAST values are valid reach values (tie-breaking may
    // differ, but on this jittered network ties are rare; check totals are
    // close and the top vertex matches).
    let r_p = reaches_phast(&p, &all);
    let r_d = reaches_dijkstra(g.forward(), &all);
    let sum_p: u64 = r_p.iter().map(|&r| r as u64).sum();
    let sum_d: u64 = r_d.iter().map(|&r| r as u64).sum();
    let rel = (sum_p as f64 - sum_d as f64).abs() / sum_d as f64;
    assert!(rel < 0.02, "reach totals diverge: {sum_p} vs {sum_d}");
}

#[test]
fn arc_flags_preprocessed_by_phast_answer_all_queries() {
    let net = network();
    let g = &net.graph;
    let part = Partition::grid(&net.coords, 3, 3);
    let rev = PhastBuilder::new().direction(Direction::Reverse).build(g);
    let flags = ArcFlags::preprocess_phast(g, part, &rev);
    let n = g.num_vertices() as Vertex;
    for s in (0..n).step_by(41) {
        let want = shortest_paths(g.forward(), s).dist;
        for t in (0..n).step_by(29) {
            let (got, _) = flags.query(g, s, t);
            assert_eq!(got, Some(want[t as usize]), "{s} -> {t}");
        }
    }
}

#[test]
fn diameter_is_attained_by_some_pair() {
    let net = network();
    let g = &net.graph;
    let p = Phast::preprocess(g);
    let all: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
    let diameter = diameter_phast(&p, &all).unwrap();
    // Find a pair attaining it.
    let mut e = p.engine();
    let mut found = false;
    for &s in &all {
        let d = e.distances(s);
        if d.contains(&diameter) {
            found = true;
            break;
        }
    }
    assert!(found, "diameter {diameter} not attained");
}

#[test]
fn betweenness_endpoints_vs_interior() {
    // On a strongly connected network the betweenness of a degree-1-ish
    // fringe vertex must not exceed that of the most central vertex.
    let net = network();
    let p = Phast::preprocess(&net.graph);
    let all: Vec<Vertex> = (0..net.graph.num_vertices() as Vertex).collect();
    let bc = betweenness_phast(&p, &all);
    let max = bc.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 0.0);
}
