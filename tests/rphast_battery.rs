//! Differential battery for RPHAST (DESIGN.md §13): restricted sweeps —
//! scalar and k-lane — must agree bit-for-bit with the full PHAST sweep
//! and with a textbook Dijkstra on random CH instances, across every
//! target-set edge case: empty, singleton, duplicates, all vertices,
//! unreachable targets, and a source that is itself a target.

use phast::core::{Phast, RestrictedEngine, RestrictedMultiEngine, SelectionBuilder};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{GraphBuilder, Vertex, INF};
use proptest::prelude::*;

/// Asserts that restricted scalar + k-lane sweeps, the full sweep, and
/// Dijkstra all agree for `sources x targets` on this instance.
fn assert_all_engines_agree(
    g: &phast::graph::Graph,
    p: &Phast,
    sources: &[Vertex],
    targets: &[Vertex],
) {
    let mut builder = SelectionBuilder::new(p);
    let sel = builder.build(targets);
    let mut scalar = RestrictedEngine::new(p);
    let mut multi = RestrictedMultiEngine::new(p, 4);
    let mut full = p.engine();
    let rows = multi.matrix(&sel, sources);
    assert_eq!(rows.len(), sources.len());
    for (r, &s) in sources.iter().enumerate() {
        let restricted = scalar.distances(&sel, s);
        let sweep = full.distances(s);
        let dij = shortest_paths(g.forward(), s).dist;
        assert_eq!(restricted.len(), targets.len());
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(restricted[i], sweep[t as usize], "scalar vs full, {s}->{t}");
            assert_eq!(restricted[i], dij[t as usize], "scalar vs dijkstra, {s}->{t}");
            assert_eq!(rows[r][i], restricted[i], "k-lane vs scalar, {s}->{t}");
        }
    }
}

#[test]
fn battery_of_target_set_edge_cases_on_a_road_network() {
    let net = RoadNetworkConfig::new(14, 14, 4242, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices() as Vertex;
    let p = Phast::preprocess(g);
    let sources: Vec<Vertex> = vec![0, 3, n / 2, n - 1, 17];
    // Singleton, duplicates, source-in-targets, and all-vertices sets.
    let cases: Vec<Vec<Vertex>> = vec![
        vec![n / 3],                          // singleton
        vec![5, 9, 5, 9, 5],                  // duplicates collapse to one closure
        vec![0, 3, n - 1],                    // every source appears in targets
        (0..n).collect(),                     // all vertices: closure == graph
    ];
    for targets in &cases {
        assert_all_engines_agree(g, &p, &sources, targets);
    }
    // All-vertices selection must cover the whole graph exactly once.
    let mut b = SelectionBuilder::new(&p);
    let sel = b.build(&(0..n).collect::<Vec<_>>());
    assert_eq!(sel.len(), n as usize);
}

#[test]
fn empty_target_set_yields_empty_rows_everywhere() {
    let net = RoadNetworkConfig::new(6, 6, 7, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);
    let mut b = SelectionBuilder::new(&p);
    let sel = b.build(&[]);
    assert!(sel.is_empty());
    let mut scalar = RestrictedEngine::new(&p);
    assert!(scalar.distances(&sel, 0).is_empty());
    let mut multi = RestrictedMultiEngine::new(&p, 4);
    let rows = multi.matrix(&sel, &[0, 1, 2]);
    assert_eq!(rows, vec![vec![], vec![], vec![]]);
}

#[test]
fn unreachable_targets_come_back_as_exactly_inf() {
    // A two-component graph: {0,1} and {2,3}. Targets span both, so from
    // any source half the row is INF — never a wrapped or partial value.
    let mut b = GraphBuilder::new(4);
    b.add_arc(0, 1, 8);
    b.add_arc(2, 3, 2);
    let g = b.build();
    let p = Phast::preprocess(&g);
    assert_all_engines_agree(&g, &p, &[0, 1, 2, 3], &[1, 3]);
    let mut builder = SelectionBuilder::new(&p);
    let sel = builder.build(&[1, 3]);
    let mut e = RestrictedEngine::new(&p);
    assert_eq!(e.distances(&sel, 0), vec![8, INF]);
    assert_eq!(e.distances(&sel, 2), vec![INF, 2]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The core differential guarantee on arbitrary digraphs: RPHAST
    /// (scalar and 4-lane) == full PHAST sweep == Dijkstra, with target
    /// sets that routinely contain duplicates, unreachable vertices, and
    /// the sources themselves.
    #[test]
    fn rphast_equals_full_sweep_equals_dijkstra(
        n in 2u32..26,
        raw_arcs in proptest::collection::vec((0u32..26, 0u32..26, 1u32..80), 1..72),
        raw_targets in proptest::collection::vec(0u32..26, 1..12),
        raw_sources in proptest::collection::vec(0u32..26, 1..7),
    ) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw_arcs {
            b.add_arc(u % n, v % n, w);
        }
        let g = b.build();
        let p = Phast::preprocess(&g);
        let targets: Vec<Vertex> = raw_targets.iter().map(|&t| t % n).collect();
        let sources: Vec<Vertex> = raw_sources.iter().map(|&s| s % n).collect();

        let mut builder = SelectionBuilder::new(&p);
        let sel = builder.build(&targets);
        let mut scalar = RestrictedEngine::new(&p);
        let mut multi = RestrictedMultiEngine::new(&p, 4);
        let mut full = p.engine();
        let rows = multi.matrix(&sel, &sources);
        for (r, &s) in sources.iter().enumerate() {
            let restricted = scalar.distances(&sel, s);
            let sweep = full.distances(s);
            let dij = shortest_paths(g.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                prop_assert_eq!(restricted[i], sweep[t as usize], "{}->{}", s, t);
                prop_assert_eq!(restricted[i], dij[t as usize], "{}->{}", s, t);
                prop_assert_eq!(rows[r][i], restricted[i], "{}->{}", s, t);
            }
        }
    }

    /// Selection reuse is sound: one builder, many target sets, and a
    /// fresh build of the same set answers identically to the first.
    #[test]
    fn selection_builds_are_deterministic_and_reusable(
        n in 2u32..20,
        raw_arcs in proptest::collection::vec((0u32..20, 0u32..20, 1u32..50), 1..48),
        raw_a in proptest::collection::vec(0u32..20, 1..8),
        raw_b in proptest::collection::vec(0u32..20, 1..8),
    ) {
        let mut bld = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw_arcs {
            bld.add_arc(u % n, v % n, w);
        }
        let g = bld.build();
        let p = Phast::preprocess(&g);
        let ta: Vec<Vertex> = raw_a.iter().map(|&t| t % n).collect();
        let tb: Vec<Vertex> = raw_b.iter().map(|&t| t % n).collect();
        let mut builder = SelectionBuilder::new(&p);
        let sa = builder.build(&ta);
        let sb = builder.build(&tb);   // interleaved build of a second set
        let sa2 = builder.build(&ta);  // rebuild of the first
        prop_assert_eq!(sa.len(), sa2.len());
        prop_assert_eq!(sa.order(), sa2.order());
        let mut e = RestrictedEngine::new(&p);
        let s = ta[0];
        let first = e.distances(&sa, s);
        let again = e.distances(&sa2, s);
        prop_assert_eq!(first, again);
        // And the interleaved set still answers correctly.
        let d = shortest_paths(g.forward(), s).dist;
        let rb = e.distances(&sb, s);
        for (i, &t) in tb.iter().enumerate() {
            prop_assert_eq!(rb[i], d[t as usize]);
        }
    }
}
