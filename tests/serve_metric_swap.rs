//! Live metric hot-swap over TCP (ISSUE acceptance bar): while a burst of
//! concurrent clients hammers the server, the metric is swapped twice via
//! [`Service::swap_epoch`]. Every reply carries the epoch it was answered
//! under, and every reply must match the scalar-Dijkstra oracle *of that
//! epoch's metric* — zero wrong replies across the swap boundary, with
//! requests admitted before a swap completing on their admission metric
//! (DESIGN.md §14).

use phast::ch::{contract_graph, ContractionConfig};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{Arc as GraphArc, Csr, Graph};
use phast::metrics::{MetricCustomizer, MetricWeights};
use phast::serve::{Client, ClientConfig, MetricWatcher, ServeConfig, Server, Service};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn reweight(g: &Graph, m: &MetricWeights) -> Graph {
    let arcs = g
        .forward()
        .arcs()
        .iter()
        .zip(&m.weights)
        .map(|(a, &w)| GraphArc::new(a.head, w))
        .collect();
    Graph::from_csr(Csr::from_raw(g.forward().first().to_vec(), arcs))
}

/// Distance tables for the burst's fixed sources, one per metric epoch:
/// index 0 = base metric (epoch 1), index k = variant k (epoch k + 1 —
/// the test swaps each variant exactly once, in order).
fn oracle(g: &Graph, sources: &[u32]) -> Vec<Vec<u32>> {
    sources
        .iter()
        .map(|&s| shortest_paths(g.forward(), s).dist)
        .collect()
}

#[test]
fn hot_swap_under_tcp_burst_yields_zero_wrong_replies() {
    let net = RoadNetworkConfig::new(10, 10, 21, Metric::TravelTime).build();
    let g = net.graph;
    let h = contract_graph(&g, &ContractionConfig::default());
    let customizer = MetricCustomizer::new(g.clone(), &h).expect("freeze");

    let sources: Vec<u32> = vec![0, 17, 33, 64, 99];
    let mut tables = vec![oracle(&g, &sources)];
    let mut variants = Vec::new();
    for v in 1..=2u64 {
        let m = MetricWeights::perturbed(&g, "swap-burst", v, v * 0x9E37);
        tables.push(oracle(&reweight(&g, &m), &sources));
        let (p, ch) = customizer.build(&m).expect("customize");
        variants.push((Arc::new(p), Arc::new(ch)));
    }
    let tables = Arc::new(tables);

    let service = Service::for_graph(
        &g,
        ServeConfig {
            window: Duration::from_millis(1),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..3usize {
        let (addr, stop, tables, sources) =
            (addr.clone(), Arc::clone(&stop), Arc::clone(&tables), sources.clone());
        clients.push(std::thread::spawn(move || {
            let mut client =
                Client::connect_with(&addr, ClientConfig::retrying(4)).expect("connect");
            let (mut ok, mut wrong, mut epochs_seen) = (0u64, Vec::new(), Vec::new());
            let mut turn = c as u64;
            while !stop.load(Ordering::SeqCst) {
                let si = (turn as usize) % sources.len();
                let source = sources[si];
                let got = match client.tree(source, Some(3_000)) {
                    Ok(d) => d,
                    // Transient transport noise is not what this test is
                    // about; wrong *answers* are.
                    Err(_) => continue,
                };
                let epoch = client.last_epoch().expect("replies carry an epoch stamp");
                epochs_seen.push(epoch);
                let want = &tables[(epoch as usize - 1).min(tables.len() - 1)][si];
                if &got == want {
                    ok += 1;
                } else {
                    wrong.push((source, epoch));
                }
                turn += 1;
            }
            (ok, wrong, epochs_seen)
        }));
    }

    // Two swaps mid-burst, spaced so traffic straddles both boundaries.
    std::thread::sleep(Duration::from_millis(250));
    for (p, ch) in &variants {
        let epoch = service
            .swap_epoch(Arc::clone(p), Some(Arc::clone(ch)))
            .expect("swap");
        assert!(epoch >= 2);
        std::thread::sleep(Duration::from_millis(250));
    }
    stop.store(true, Ordering::SeqCst);

    let mut total_ok = 0u64;
    let mut all_epochs = Vec::new();
    for t in clients {
        let (ok, wrong, epochs) = t.join().expect("client thread");
        assert!(wrong.is_empty(), "wrong replies across the swap: {wrong:?}");
        total_ok += ok;
        all_epochs.extend(epochs);
    }
    assert!(total_ok > 0, "the burst must land some replies");
    assert!(
        all_epochs.contains(&1) && all_epochs.contains(&3),
        "traffic must span the swaps (epochs seen: {all_epochs:?})"
    );
    assert_eq!(service.stats().metric_swaps(), 2);

    server.shutdown();
    service.shutdown();
}

#[test]
fn file_watcher_swaps_a_served_metric_end_to_end() {
    let net = RoadNetworkConfig::new(7, 7, 3, Metric::TravelDistance).build();
    let g = net.graph;
    let h = contract_graph(&g, &ContractionConfig::default());
    let customizer = Arc::new(MetricCustomizer::new(g.clone(), &h).expect("freeze"));

    let service = Service::for_graph(&g, ServeConfig::default());
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let path = std::env::temp_dir().join(format!(
        "phast-swap-e2e-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut watcher = MetricWatcher::spawn(
        Arc::clone(&service),
        customizer,
        path.clone(),
        Duration::from_millis(10),
    );

    let m = MetricWeights::perturbed(&g, "dropped-in", 4, 0xFACE);
    let want = shortest_paths(reweight(&g, &m).forward(), 11).dist;
    std::fs::write(&path, serde_json::to_string(&m).unwrap()).unwrap();

    let t0 = std::time::Instant::now();
    while service.epoch_id() < 2 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.epoch_id(), 2, "watcher must publish the metric");

    let mut client = Client::connect(&addr).expect("connect");
    let got = client.tree(11, None).expect("tree");
    assert_eq!(client.last_epoch(), Some(2));
    assert_eq!(got, want, "served tree must match the new metric's oracle");

    watcher.shutdown();
    let _ = std::fs::remove_file(&path);
    server.shutdown();
    service.shutdown();
}

/// The guarded-rollout acceptance bar over live TCP: with the
/// `PHAST_CANARY_FAULT` seam arming a poisoned metric, the watcher's
/// canary must quarantine it before publish — the serving epoch never
/// moves, not one live reply is answered under it, and an honest metric
/// still rolls out afterwards.
#[test]
fn watcher_canary_blocks_a_poisoned_metric_on_the_live_server() {
    // Keyed on the metric *name*, so concurrent tests in this binary
    // (different names) are untouched.
    std::env::set_var(phast::metrics::CANARY_FAULT_ENV, "wire-poison");

    let net = RoadNetworkConfig::new(7, 7, 5, Metric::TravelTime).build();
    let g = net.graph;
    let h = contract_graph(&g, &ContractionConfig::default());
    let customizer = Arc::new(MetricCustomizer::new(g.clone(), &h).expect("freeze"));

    let service = Service::for_graph(&g, ServeConfig::default());
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let path = std::env::temp_dir().join(format!(
        "phast-canary-e2e-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut watcher = MetricWatcher::spawn(
        Arc::clone(&service),
        Arc::clone(&customizer),
        path.clone(),
        Duration::from_millis(10),
    );
    let wait = |what: &str, cond: &dyn Fn() -> bool| {
        let t0 = std::time::Instant::now();
        while !cond() && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(cond(), "timed out waiting for {what}");
    };

    // Honest publish first: the canary must pass honest metrics through.
    let honest = MetricWeights::perturbed(&g, "wire-honest", 1, 0xE11);
    let honest_tree = shortest_paths(reweight(&g, &honest).forward(), 9).dist;
    std::fs::write(&path, serde_json::to_string(&honest).unwrap()).unwrap();
    wait("honest publish", &|| service.epoch_id() >= 2);
    assert_eq!(service.epoch_id(), 2);

    // The poisoned drop: honest on disk, corrupted inside the customizer.
    let poison = MetricWeights::perturbed(&g, "wire-poison", 1, 0xBAD);
    std::fs::write(&path, serde_json::to_string(&poison).unwrap()).unwrap();
    wait("canary rejection", &|| {
        service.stats().canary_failures() >= 1
    });
    assert_eq!(
        service.epoch_id(),
        2,
        "a canary-rejected metric must never publish"
    );
    assert_eq!(service.stats().quarantined_metrics(), 1);

    // Live replies still come from the honest epoch, bit-exact.
    let mut client = Client::connect(&addr).expect("connect");
    let got = client.tree(9, None).expect("tree");
    assert_eq!(client.last_epoch(), Some(2), "replies stay on the honest epoch");
    assert_eq!(got, honest_tree, "not one reply may reflect the poisoned metric");

    // A quarantine is not a lockout: the next honest metric rolls out.
    let honest2 = MetricWeights::perturbed(&g, "wire-honest", 2, 0xE12);
    let honest2_tree = shortest_paths(reweight(&g, &honest2).forward(), 9).dist;
    std::fs::write(&path, serde_json::to_string(&honest2).unwrap()).unwrap();
    wait("post-quarantine honest publish", &|| service.epoch_id() >= 3);
    let got = client.tree(9, None).expect("tree");
    assert_eq!(client.last_epoch(), Some(3));
    assert_eq!(got, honest2_tree);

    std::env::remove_var(phast::metrics::CANARY_FAULT_ENV);
    watcher.shutdown();
    let _ = std::fs::remove_file(&path);
    server.shutdown();
    service.shutdown();
}
