//! Differential test for the `phast-serve` batching service: answers
//! produced over TCP under concurrent mixed load — where requests get
//! batched into shared k-tree sweeps, padded, or degraded to scalar /
//! bidirectional-CH rungs — must be bit-identical to direct engine calls.
//!
//! This is the scheduler's core guarantee (DESIGN.md §9): batching is a
//! throughput optimization, invisible in the answers.

use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{Vertex, Weight};
use phast::serve::{Client, ServeConfig, Server, Service};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// One recorded exchange: what was asked, what the server answered.
enum Exchange {
    Tree { source: Vertex, dist: Vec<Weight> },
    Many { source: Vertex, targets: Vec<Vertex>, dist: Vec<Weight> },
    P2p { source: Vertex, target: Vertex, dist: Weight },
}

fn drive_clients(
    addr: std::net::SocketAddr,
    n: u32,
    clients: usize,
    requests: usize,
    seed: u64,
) -> Vec<Exchange> {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (c as u64) << 17);
                let mut client = Client::connect(addr).expect("connect");
                let mut log = Vec::new();
                for _ in 0..requests {
                    let source = rng.random_range(0..n);
                    match rng.random_range(0..3u32) {
                        0 => {
                            let dist = client.tree(source, None).expect("tree");
                            log.push(Exchange::Tree { source, dist });
                        }
                        1 => {
                            let targets: Vec<Vertex> = (0..rng.random_range(1..6usize))
                                .map(|_| rng.random_range(0..n))
                                .collect();
                            let dist =
                                client.many(source, &targets, None).expect("many");
                            log.push(Exchange::Many { source, targets, dist });
                        }
                        _ => {
                            let target = rng.random_range(0..n);
                            let dist = client.p2p(source, target, None).expect("p2p");
                            log.push(Exchange::P2p { source, target, dist });
                        }
                    }
                }
                log
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect()
}

#[test]
fn concurrent_batched_answers_match_direct_engine_calls() {
    let net = RoadNetworkConfig::new(28, 28, 97, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;

    // Exercise several scheduler shapes: different batch widths and
    // windows route the same queries down different ladder rungs.
    let cells = [
        (4usize, Duration::from_millis(1)),
        (8, Duration::from_millis(3)),
        (16, Duration::from_millis(0)),
    ];
    let mut exchanges = Vec::new();
    for (i, (max_k, window)) in cells.into_iter().enumerate() {
        let service = Service::for_graph(
            &net.graph,
            ServeConfig {
                max_k,
                window,
                ..ServeConfig::default()
            },
        );
        let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let log = drive_clients(server.local_addr(), n, 6, 10, 0xC0FFEE + i as u64);
        server.shutdown();
        assert_eq!(log.len(), 60, "every request answered");
        exchanges.extend(log);
    }

    // Reference: direct single-tree engine calls on the same instance.
    let p = phast::core::Phast::preprocess(&net.graph);
    let mut engine = p.engine();
    for ex in &exchanges {
        match ex {
            Exchange::Tree { source, dist } => {
                assert_eq!(
                    *dist,
                    engine.distances(*source),
                    "tree from {source} diverged"
                );
            }
            Exchange::Many { source, targets, dist } => {
                let full = engine.distances(*source);
                let expect: Vec<Weight> =
                    targets.iter().map(|&t| full[t as usize]).collect();
                assert_eq!(dist, &expect, "one-to-many from {source} diverged");
            }
            Exchange::P2p { source, target, dist } => {
                let full = engine.distances(*source);
                assert_eq!(
                    *dist, full[*target as usize],
                    "p2p {source}->{target} diverged"
                );
            }
        }
    }

    // The mix really was heterogeneous: all three shapes occurred.
    let trees = exchanges.iter().filter(|e| matches!(e, Exchange::Tree { .. })).count();
    let manys = exchanges.iter().filter(|e| matches!(e, Exchange::Many { .. })).count();
    let p2ps = exchanges.iter().filter(|e| matches!(e, Exchange::P2p { .. })).count();
    assert!(trees > 0 && manys > 0 && p2ps > 0, "{trees}/{manys}/{p2ps}");
}
