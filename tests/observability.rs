//! The observability layer end to end: per-query [`QueryStats`], the
//! preprocessing counters, GPU cost-model reports, and the JSON schema.
//!
//! Always-on behaviour (settled counts, phase timers, reports) is asserted
//! unconditionally; hot-path counters are asserted through
//! [`obs::COUNTERS_ENABLED`] so the same tests pin down both build states
//! (`cargo test` and `cargo test --features obs-counters`).
//!
//! [`QueryStats`]: phast::obs::QueryStats

use phast::core::{Phast, TargetRestriction};
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::Graph;
use phast::obs;
use std::sync::OnceLock;

/// One shared network + hierarchy for the whole binary, with the
/// preprocessing counters snapshotted right after the only
/// `Phast::preprocess` call. The `prep` counters are process-global
/// atomics reset by each contraction, so the snapshot must be taken
/// before any other test could preprocess — `OnceLock` serializes that.
fn instance() -> &'static (Graph, Phast, obs::Counters) {
    static INSTANCE: OnceLock<(Graph, Phast, obs::Counters)> = OnceLock::new();
    INSTANCE.get_or_init(|| {
        let net = RoadNetworkConfig::new(15, 15, 321, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let prep = obs::prep::counters();
        (net.graph, p, prep)
    })
}

#[test]
fn query_stats_report_upward_settled() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances(0);
    assert!(
        e.stats().counters.upward_settled > 0,
        "the always-on settled counter must be maintained"
    );
}

#[test]
fn repeated_identical_queries_yield_identical_counters() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances(42);
    let first = e.stats().counters;
    for round in 0..3 {
        e.distances(42);
        assert_eq!(e.stats().counters, first, "round {round}");
    }
}

#[test]
fn phase_timers_cover_both_phases() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances(7);
    let s = e.stats();
    // Zero-duration phases would mean a timer was never stopped; both
    // phases do real work on a 225-vertex grid.
    assert!(s.upward_time > std::time::Duration::ZERO);
    assert!(s.sweep_time > std::time::Duration::ZERO);
}

#[test]
fn gated_counters_follow_the_feature_state() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances(3);
    let c = e.stats().counters;
    if obs::COUNTERS_ENABLED {
        assert!(c.upward_relaxed > 0);
        assert!(c.levels_swept > 0);
        assert!(c.blocks_executed > 0);
        // The sequential sweep is oblivious: every downward arc exactly once.
        assert_eq!(c.sweep_arcs_relaxed, p.down().num_arcs() as u64);
        assert_eq!(c.levels_swept, p.num_levels() as u64);
        // Every vertex the upward search marks is settled exactly once,
        // and the sweep clears exactly the marked set.
        assert_eq!(c.marks_cleared, c.upward_settled);
    } else {
        assert_eq!(c.upward_relaxed, 0);
        assert_eq!(c.sweep_arcs_relaxed, 0);
        assert_eq!(c.levels_swept, 0);
        assert_eq!(c.blocks_executed, 0);
        assert_eq!(c.marks_cleared, 0);
    }
}

#[test]
fn parallel_sweep_reports_its_blocks() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances_par(11);
    let c = e.stats().counters;
    assert!(c.upward_settled > 0);
    if obs::COUNTERS_ENABLED {
        assert_eq!(c.sweep_arcs_relaxed, p.down().num_arcs() as u64);
        // Splitting levels into blocks never executes fewer blocks than
        // levels.
        assert!(c.blocks_executed >= c.levels_swept);
    }
}

#[test]
fn multi_tree_stats_aggregate_over_the_batch() {
    let (_, p, _) = instance();
    let mut m = p.multi_engine(4);
    m.run(&[0, 5, 9, 13]);
    let c = m.stats().counters;
    assert!(c.upward_settled > 0, "summed over the k upward searches");
    if obs::COUNTERS_ENABLED {
        // The batched sweep relaxes every downward arc once per tree.
        assert_eq!(c.sweep_arcs_relaxed, p.down().num_arcs() as u64 * 4);
    }
}

#[test]
fn one_to_many_stats_cover_the_restricted_sweep() {
    let (_, p, _) = instance();
    let r = TargetRestriction::new(p, &[3, 10, 77]);
    let mut e = r.engine();
    e.distances(0);
    let c = e.stats().counters;
    assert!(c.upward_settled > 0);
    if obs::COUNTERS_ENABLED {
        assert!(c.upward_relaxed > 0);
        // The restricted sweep runs the target closure as one flat block.
        assert_eq!(c.blocks_executed, 1);
        assert!(c.sweep_arcs_relaxed <= p.down().num_arcs() as u64);
    }
}

#[test]
fn preprocessing_counters_follow_the_feature_state() {
    let (_, p, prep) = instance();
    if obs::COUNTERS_ENABLED {
        assert!(prep.witness_searches > 0);
        assert_eq!(
            prep.shortcuts_added,
            p.num_shortcuts() as u64,
            "the prep counter and the hierarchy count the same shortcuts"
        );
    } else {
        assert_eq!(prep.witness_searches, 0);
        assert_eq!(prep.shortcuts_added, 0);
    }
}

#[test]
fn gphast_cost_model_exposes_per_level_launches() {
    use phast::gpu::{DeviceProfile, Gphast};
    let (_, p, _) = instance();
    let mut gp = Gphast::new(p, DeviceProfile::gtx_580(), 4).unwrap();
    let stats = gp.run(&[0, 1, 2, 3]);
    let threads = gp.per_level_threads();
    assert_eq!(threads.len(), p.num_levels(), "one sweep kernel per level");
    assert_eq!(
        threads.iter().sum::<usize>(),
        p.num_vertices() * 4,
        "each level kernel launches level_size * k threads"
    );
    assert!(stats.kernel_launches as usize >= p.num_levels());
    let r = stats.report("gphast batch");
    assert!(r.get("kernel_launches").is_some());
    assert!(r.get("lane_efficiency").is_some());
}

#[test]
fn report_serializes_with_the_documented_schema() {
    let (_, p, _) = instance();
    let mut e = p.engine();
    e.distances(7);
    let report = e.stats().report("phast tree query");
    let json = serde_json::to_string(&report).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["title"].as_str(), Some("phast tree query"));
    assert_eq!(v["counters_enabled"].as_bool(), Some(obs::COUNTERS_ENABLED));
    let metrics = &v["metrics"];
    assert!(!metrics.is_null(), "metrics is an object");
    assert_eq!(
        metrics["upward_settled"].as_i64(),
        Some(e.stats().counters.upward_settled as i64)
    );
    // Durations serialize as integer nanoseconds.
    assert!(metrics["upward_time"].as_i64().is_some());
    assert!(metrics["sweep_time"].as_i64().is_some());
    if obs::COUNTERS_ENABLED {
        assert!(metrics["sweep_arcs_relaxed"].as_i64().unwrap() > 0);
    } else {
        assert_eq!(metrics["sweep_arcs_relaxed"].as_i64(), Some(0));
    }
}
