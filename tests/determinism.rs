//! Determinism: equal seeds must reproduce every stage bit-for-bit, so
//! experiments are repeatable.

use phast::core::{Phast, SweepPlan};
use phast::gpu::{DeviceProfile, Gphast};
use phast::graph::gen::{Metric, RoadNetworkConfig};

fn build() -> (phast::graph::Graph, Phast) {
    let net = RoadNetworkConfig::new(15, 15, 999, Metric::TravelTime).build();
    let p = Phast::preprocess(&net.graph);
    (net.graph, p)
}

#[test]
fn preprocessing_is_deterministic() {
    let (g1, p1) = build();
    let (g2, p2) = build();
    assert_eq!(g1.forward(), g2.forward());
    assert_eq!(p1.num_shortcuts(), p2.num_shortcuts());
    assert_eq!(p1.num_levels(), p2.num_levels());
    assert_eq!(p1.level_histogram(), p2.level_histogram());
    assert_eq!(p1.permutation().as_slice(), p2.permutation().as_slice());
    assert_eq!(p1.up().arcs(), p2.up().arcs());
    assert_eq!(p1.down().arcs(), p2.down().arcs());
}

#[test]
fn query_results_are_deterministic() {
    let (_, p1) = build();
    let (_, p2) = build();
    let mut e1 = p1.engine();
    let mut e2 = p2.engine();
    for s in [0u32, 7, 100] {
        assert_eq!(e1.distances(s), e2.distances(s));
    }
}

#[test]
fn parallel_sweep_is_bit_identical_across_thread_counts() {
    // The intra-level parallel sweep partitions each level into blocks,
    // but every vertex label still depends only on higher levels, so the
    // result must be bit-for-bit the sequential sweep's — for any thread
    // count, including the degenerate single-thread plan.
    let (_, p) = build();
    let mut e = p.engine();
    let n = p.num_vertices() as u32;
    for s in [0u32, 31, n - 1] {
        let seq = e.distances_sweep(s).to_vec();
        for threads in [1usize, 2, 4] {
            let plan = SweepPlan::new(&p, threads);
            let par = e.distances_par_planned(s, &plan).to_vec();
            assert_eq!(par, seq, "threads {threads}, source {s}");
        }
        // The auto-planned entry point must agree too (it returns
        // original vertex order, so compare against `distances`).
        assert_eq!(e.distances_par(s), e.distances(s), "auto plan, source {s}");
    }
}

#[test]
fn gphast_cost_model_is_deterministic() {
    let (_, p) = build();
    let mut a = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
    let mut b = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
    let sa = a.run(&[0, 1, 2, 3]);
    let sb = b.run(&[0, 1, 2, 3]);
    assert_eq!(sa.batch_time, sb.batch_time);
    assert_eq!(sa.dram_transactions, sb.dram_transactions);
    assert_eq!(sa.kernel_launches, sb.kernel_launches);
    assert_eq!(a.labels(), b.labels());
}
