//! Differential battery for the CH contractors (DESIGN.md §17).
//!
//! Pins three independent implementations against each other on random and
//! road-network instances:
//!
//! * the round-based **parallel** contractor (`Contractor::ParallelRounds`,
//!   the default),
//! * the **sequential** lazy-heap reference (`Contractor::LazyHeap`),
//! * plain **Dijkstra** on the original graph.
//!
//! The two contractors legitimately produce *different* hierarchies (their
//! orderings differ), but both must preserve every distance; the parallel
//! contractor additionally must be bit-identical across thread counts and
//! across the `threads`-knob resolution paths (explicit value vs
//! `PHAST_THREADS`).

use phast::ch::{contract_graph, ContractionConfig, Contractor, Hierarchy};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::graph::gen::random::strongly_connected_gnm;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::{Graph, GraphBuilder, Vertex};
use proptest::prelude::*;

fn par_cfg(threads: usize) -> ContractionConfig {
    ContractionConfig {
        contractor: Contractor::ParallelRounds,
        threads,
        ..ContractionConfig::default()
    }
}

fn seq_cfg() -> ContractionConfig {
    ContractionConfig {
        contractor: Contractor::LazyHeap,
        ..ContractionConfig::default()
    }
}

/// A hierarchy preserves distances iff Dijkstra over `G+` (original plus
/// shortcut arcs, directions restored) equals Dijkstra over `G` from every
/// source.
fn assert_preserves_distances(g: &Graph, h: &Hierarchy, sources: &[Vertex], label: &str) {
    let mut b = GraphBuilder::new(g.num_vertices());
    for (v, w, wt) in h.forward_up.iter_arcs() {
        b.add_arc(v, w, wt);
    }
    for (v, u, wt) in h.backward_up.iter_arcs() {
        b.add_arc(u, v, wt);
    }
    let gplus = b.build();
    for &s in sources {
        let want = shortest_paths(g.forward(), s).dist;
        let got = shortest_paths(gplus.forward(), s).dist;
        assert_eq!(got, want, "{label}: G+ distances differ from G (source {s})");
    }
}

#[test]
fn parallel_equals_sequential_equals_dijkstra_on_road_network() {
    let net = RoadNetworkConfig::new(18, 18, 4242, Metric::TravelTime).build();
    let g = &net.graph;
    let n = g.num_vertices() as Vertex;
    let sources: Vec<Vertex> = vec![0, n / 3, n / 2, n - 1];

    let par = contract_graph(g, &par_cfg(0));
    let seq = contract_graph(g, &seq_cfg());
    par.validate().unwrap();
    seq.validate().unwrap();
    assert_preserves_distances(g, &par, &sources, "parallel");
    assert_preserves_distances(g, &seq, &sources, "sequential");
}

#[test]
fn parallel_is_bit_identical_across_thread_counts() {
    for (rows, cols, seed) in [(12, 12, 7u64), (16, 10, 99)] {
        let net = RoadNetworkConfig::new(rows, cols, seed, Metric::TravelTime).build();
        let base = contract_graph(&net.graph, &par_cfg(1));
        for threads in [2usize, 3, 4, 8] {
            let h = contract_graph(&net.graph, &par_cfg(threads));
            assert_eq!(
                h, base,
                "hierarchy differs between threads=1 and threads={threads} (seed {seed})"
            );
        }
    }
}

#[test]
fn env_thread_knob_resolves_like_the_explicit_one() {
    // `threads: 0` + PHAST_THREADS must take the same code path (and give
    // the same bits) as an explicit thread count. Env mutation is scoped to
    // this one test binary's process; the value is restored afterwards.
    let net = RoadNetworkConfig::new(10, 10, 321, Metric::TravelTime).build();
    let explicit = contract_graph(&net.graph, &par_cfg(3));
    let prev = std::env::var("PHAST_THREADS").ok();
    std::env::set_var("PHAST_THREADS", "3");
    let via_env = contract_graph(&net.graph, &par_cfg(0));
    match prev {
        Some(v) => std::env::set_var("PHAST_THREADS", v),
        None => std::env::remove_var("PHAST_THREADS"),
    }
    assert_eq!(via_env, explicit, "PHAST_THREADS path diverged from --threads path");
}

#[test]
fn unpacked_paths_are_valid_under_both_contractors() {
    // Query + unpack through both hierarchies: every reported path must
    // walk real arcs of the original graph and sum to the reported
    // distance. Exercises the iterative unpack and the complement-pairing
    // weight split on hierarchies the parallel contractor built.
    let g = strongly_connected_gnm(60, 150, 25, 0xC0DE);
    for (label, cfg) in [("parallel", par_cfg(0)), ("sequential", seq_cfg())] {
        let h = contract_graph(&g, &cfg);
        let mut q = phast::ch::ChQuery::new(&h);
        let truth = shortest_paths(g.forward(), 0).dist;
        for t in [1u32, 17, 42, 59] {
            let got = q.query_path(0, t);
            let Some((d, path)) = got else {
                assert!(truth[t as usize] >= phast::graph::INF, "{label}: missing path 0->{t}");
                continue;
            };
            assert_eq!(d, truth[t as usize], "{label}: distance 0->{t}");
            assert_eq!(path.first(), Some(&0), "{label}: path must start at source");
            assert_eq!(path.last(), Some(&t), "{label}: path must end at target");
            let mut sum = 0u64;
            for win in path.windows(2) {
                let w = g
                    .forward()
                    .out(win[0])
                    .iter()
                    .filter(|a| a.head == win[1])
                    .map(|a| a.weight)
                    .min()
                    .unwrap_or_else(|| panic!("{label}: arc {}->{} not in G", win[0], win[1]));
                sum += u64::from(w);
            }
            assert_eq!(sum, u64::from(d), "{label}: unpacked path weight 0->{t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random instances: parallel == sequential == Dijkstra distances, and
    /// the parallel result is thread-count independent.
    #[test]
    fn differential_battery_random_graphs(
        n in 2usize..40,
        extra in 0usize..100,
        seed in 0u64..500,
        max_w in 1u32..50,
    ) {
        let g = strongly_connected_gnm(n, extra, max_w, seed);
        let par = contract_graph(&g, &par_cfg(1));
        let seq = contract_graph(&g, &seq_cfg());
        par.validate().unwrap();
        seq.validate().unwrap();

        let sources = [0u32, (n as u32) / 2, n as u32 - 1];
        assert_preserves_distances(&g, &par, &sources, "parallel");
        assert_preserves_distances(&g, &seq, &sources, "sequential");

        let par4 = contract_graph(&g, &par_cfg(4));
        prop_assert_eq!(par4, par, "threads=4 diverged from threads=1 (seed {})", seed);
    }
}
