//! End-to-end integration: the full pipeline through the umbrella API.

use phast::core::{Direction, Phast, PhastBuilder};
use phast::dijkstra::dijkstra::shortest_paths;
use phast::gpu::{DeviceProfile, Gphast};
use phast::graph::dfs::dfs_layout;
use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::graph::reorder::relabel_graph;
use phast::graph::Vertex;

fn network() -> phast::graph::Graph {
    let net = RoadNetworkConfig::new(22, 22, 1234, Metric::TravelTime).build();
    // Use the DFS layout like all headline experiments.
    relabel_graph(&net.graph, &dfs_layout(&net.graph, 0))
}

#[test]
fn every_engine_agrees_with_dijkstra() {
    let g = network();
    let p = Phast::preprocess(&g);
    let sources: Vec<Vertex> = (0..8).map(|i| i * 53 % g.num_vertices() as u32).collect();

    let mut single = p.engine();
    let mut multi = p.multi_engine(sources.len());
    multi.run(&sources);
    let mut gpu = Gphast::new(&p, DeviceProfile::gtx_580(), sources.len()).unwrap();
    gpu.run(&sources);
    let mut trees = p.tree_engine();

    for (i, &s) in sources.iter().enumerate() {
        let want = shortest_paths(g.forward(), s).dist;
        assert_eq!(single.distances(s), want, "single engine, source {s}");
        assert_eq!(single.distances_par(s), want, "parallel sweep, source {s}");
        assert_eq!(multi.tree_distances(i), want, "multi engine, tree {i}");
        assert_eq!(gpu.tree_distances(i), want, "gphast, tree {i}");
        trees.run(s);
        let tree = trees.original_tree(s);
        assert_eq!(tree.dist, want, "tree engine, source {s}");
        tree.validate(g.forward()).unwrap();
    }
}

#[test]
fn forward_and_reverse_solvers_are_transposes() {
    let g = network();
    let fwd = Phast::preprocess(&g);
    let rev = PhastBuilder::new().direction(Direction::Reverse).build(&g);
    let mut ef = fwd.engine();
    let mut er = rev.engine();
    // dist_fwd(s)[t] == dist_rev(t)[s] for all pairs sampled.
    let samples: Vec<Vertex> = (0..6).map(|i| i * 97 % g.num_vertices() as u32).collect();
    for &s in &samples {
        let df = ef.distances(s);
        for &t in &samples {
            let dr = er.distances(t);
            assert_eq!(df[t as usize], dr[s as usize], "{s} -> {t}");
        }
    }
}

#[test]
fn ch_queries_match_phast_labels() {
    let g = network();
    let h = phast::ch::contract_graph(&g, &phast::ch::ContractionConfig::default());
    let p = PhastBuilder::new().build_with_hierarchy(&g, &h);
    let mut q = phast::ch::ChQuery::new(&h);
    let mut e = p.engine();
    let n = g.num_vertices() as u32;
    for s in [0u32, n / 3, n - 1] {
        let labels = e.distances(s);
        for t in (0..n).step_by(37) {
            let got = q.query(s, t);
            let want = labels[t as usize];
            assert_eq!(got, (want < phast::graph::INF).then_some(want));
        }
    }
}

#[test]
fn distance_metric_pipeline() {
    let net = RoadNetworkConfig::new(16, 16, 77, Metric::TravelDistance).build();
    let p = Phast::preprocess(&net.graph);
    let mut e = p.engine();
    for s in [0u32, 100] {
        let want = shortest_paths(net.graph.forward(), s).dist;
        assert_eq!(e.distances(s), want);
    }
}

#[test]
fn relabeled_graphs_give_identical_distances_modulo_permutation() {
    let net = RoadNetworkConfig::new(14, 14, 5, Metric::TravelTime).build();
    let g = &net.graph;
    let perm = phast::graph::Permutation::random(g.num_vertices(), 9);
    let h = relabel_graph(g, &perm);
    let pg = Phast::preprocess(g);
    let ph = Phast::preprocess(&h);
    let mut eg = pg.engine();
    let mut eh = ph.engine();
    for s in [3u32, 50] {
        let dg = eg.distances(s);
        let dh = eh.distances(perm.map(s));
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(dg[v as usize], dh[perm.map(v) as usize]);
        }
    }
}
