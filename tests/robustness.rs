//! Failure injection and edge cases through the whole stack.

use phast::core::Phast;
use phast::dijkstra::dijkstra::shortest_paths;
use phast::gpu::{DeviceProfile, Gphast};
use phast::graph::{GraphBuilder, INF, MAX_WEIGHT};
use proptest::prelude::*;

#[test]
fn single_vertex_graph() {
    let g = GraphBuilder::new(1).build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    assert_eq!(e.distances(0), vec![0]);
    let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 1).unwrap();
    gp.run(&[0]);
    assert_eq!(gp.tree_distances(0), vec![0]);
}

#[test]
fn two_isolated_vertices() {
    let g = GraphBuilder::new(2).build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    assert_eq!(e.distances(0), vec![0, INF]);
    assert_eq!(e.distances(1), vec![INF, 0]);
}

#[test]
fn zero_weight_arcs_through_the_stack() {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1, 0)
        .add_edge(1, 2, 0)
        .add_edge(2, 3, 7)
        .add_arc(3, 4, 0);
    let g = b.build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    let want = shortest_paths(g.forward(), 0).dist;
    assert_eq!(e.distances(0), want);
    let mut t = p.tree_engine();
    t.run(0);
    let tree = t.original_tree(0);
    tree.validate(g.forward()).unwrap();
}

#[test]
fn maximum_weight_arcs() {
    let mut b = GraphBuilder::new(3);
    b.add_arc(0, 1, MAX_WEIGHT).add_arc(1, 2, 1);
    let g = b.build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    let d = e.distances(0);
    assert_eq!(d[1], MAX_WEIGHT);
    assert_eq!(d[2], MAX_WEIGHT + 1);
}

#[test]
fn near_overflow_chains_saturate_instead_of_wrapping() {
    // A 12-vertex chain of MAX_WEIGHT arcs. True distances blow past
    // INF from vertex 3 on; labels must saturate at INF, never wrap
    // below the true lower bound. 2 * MAX_WEIGHT == INF - 1 is the
    // largest representable finite distance and must stay exact.
    let n = 12usize;
    let mut b = GraphBuilder::new(n);
    for v in 0..(n as u32 - 1) {
        b.add_arc(v, v + 1, MAX_WEIGHT);
    }
    let g = b.build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    let d = e.distances(0);
    assert_eq!(d[0], 0);
    assert_eq!(d[1], MAX_WEIGHT);
    assert_eq!(d[2], 2 * MAX_WEIGHT);
    assert_eq!(d[2], INF - 1);
    for i in 1..n {
        assert!(d[i] >= d[i - 1], "labels must be monotone along the chain");
        assert!(d[i] <= INF, "vertex {i}: label above INF");
        let lower_bound = (i as u64 * MAX_WEIGHT as u64).min(INF as u64);
        assert!(
            d[i] as u64 >= lower_bound,
            "vertex {i}: label {} wrapped below the true lower bound {lower_bound}",
            d[i]
        );
    }
    assert_eq!(d[n - 1], INF, "overflowing distances saturate to INF");

    // Same invariant through the batched and GPU engines.
    let mut multi = p.multi_engine(2);
    multi.run(&[0, 0]);
    let mut gpu = Gphast::new(&p, DeviceProfile::gtx_580(), 2).unwrap();
    gpu.run(&[0, 0]);
    for i in 0..2 {
        assert_eq!(multi.tree_distances(i), d, "multi-tree lane {i}");
        assert_eq!(gpu.tree_distances(i), d, "gpu lane {i}");
    }
}

#[test]
fn self_loops_and_parallel_arcs_are_sanitized() {
    let mut b = GraphBuilder::new(3);
    b.add_arc(0, 0, 5) // dropped
        .add_arc(0, 1, 9)
        .add_arc(0, 1, 2) // parallel, keeps min
        .add_arc(1, 2, 1);
    let g = b.build();
    assert_eq!(g.num_arcs(), 2);
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    assert_eq!(e.distances(0), vec![0, 2, 3]);
}

#[test]
fn long_chain_does_not_recurse() {
    // 60k-vertex path: exercises iterative DFS/Tarjan and a deep hierarchy.
    let n = 60_000;
    let mut b = GraphBuilder::new(n);
    for v in 0..(n as u32 - 1) {
        b.add_edge(v, v + 1, 1);
    }
    let g = b.build();
    let p = Phast::preprocess(&g);
    let mut e = p.engine();
    let d = e.distances(0);
    assert_eq!(d[n - 1], n as u32 - 1);
}

#[test]
fn zero_weights_through_multi_tree_and_gpu() {
    let mut b = GraphBuilder::new(6);
    b.add_edge(0, 1, 0)
        .add_edge(1, 2, 3)
        .add_edge(2, 3, 0)
        .add_arc(3, 4, 1)
        .add_arc(4, 5, 0);
    let g = b.build();
    let p = Phast::preprocess(&g);
    let sources = [0u32, 2, 5, 5];
    let mut multi = p.multi_engine(4);
    multi.run(&sources);
    let mut gpu = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
    gpu.run(&sources);
    for (i, &s) in sources.iter().enumerate() {
        let want = shortest_paths(g.forward(), s).dist;
        assert_eq!(multi.tree_distances(i), want, "multi, source {s}");
        assert_eq!(gpu.tree_distances(i), want, "gpu, source {s}");
    }
}

#[test]
fn every_queue_drives_dijkstra_on_the_umbrella_path() {
    use phast::dijkstra::dijkstra::Dijkstra;
    use phast::pq::{DialQueue, IndexedBinaryHeap, KHeap, RadixHeap, TwoLevelBuckets};
    let g = phast::graph::gen::random::strongly_connected_gnm(40, 90, 200, 12);
    let want = shortest_paths(g.forward(), 3).dist;
    assert_eq!(Dijkstra::<IndexedBinaryHeap>::new(g.forward()).run(3).dist, want);
    assert_eq!(Dijkstra::<KHeap<4>>::new(g.forward()).run(3).dist, want);
    assert_eq!(Dijkstra::<KHeap<8>>::new(g.forward()).run(3).dist, want);
    assert_eq!(Dijkstra::<RadixHeap>::new(g.forward()).run(3).dist, want);
    assert_eq!(Dijkstra::<TwoLevelBuckets>::new(g.forward()).run(3).dist, want);
    assert_eq!(Dijkstra::<DialQueue>::new(g.forward()).run(3).dist, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Fuzz the whole stack on arbitrary digraphs, including disconnected
    /// and multi-SCC shapes.
    #[test]
    fn pipeline_fuzz(n in 1usize..20, m in 0usize..50, seed in 0u64..10_000) {
        let g = phast::graph::gen::random::gnm(n, m, 1000, seed);
        let p = Phast::preprocess(&g);
        let mut e = p.engine();
        let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 2).unwrap();
        let s0 = (seed % n as u64) as u32;
        let s1 = ((seed / 3) % n as u64) as u32;
        gp.run(&[s0, s1]);
        for (i, s) in [s0, s1].into_iter().enumerate() {
            let want = shortest_paths(g.forward(), s).dist;
            prop_assert_eq!(&e.distances(s), &want);
            prop_assert_eq!(&gp.tree_distances(i), &want);
        }
    }
}
