//! Robustness tests for the `phast-serve` front end: every documented
//! failure mode — an expired deadline, a full admission queue, a malformed
//! request line — produces its documented typed error reply, and the
//! listener keeps serving afterwards. No client input tears down a
//! connection, let alone the server (DESIGN.md §9, "failure modes").

use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::serve::protocol::{decode_reply, parse_request, Reply};
use phast::serve::{Client, ClientConfig, ErrorKind, ServeConfig, Server, Service};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start(cfg: ServeConfig) -> (Server, u32) {
    let net = RoadNetworkConfig::new(10, 10, 11, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;
    let service = Service::for_graph(&net.graph, cfg);
    (Server::spawn(service, "127.0.0.1:0").expect("bind"), n)
}

/// Decodes a raw reply line and asserts it is a typed error of `kind`.
fn assert_error_line(line: &str, kind: ErrorKind, what: &str) {
    match decode_reply(line).expect(what) {
        Reply::Error(e) => assert_eq!(e.kind, kind, "{what}: {line}"),
        other => panic!("{what}: expected {kind:?} error, got {other:?}"),
    }
}

#[test]
fn expired_deadline_gets_typed_reply_and_service_survives() {
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(40),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    // deadline_ms = 0 expires before any batch can form.
    let err = c.tree(0, Some(0)).expect_err("deadline must expire");
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    // Same connection, no deadline: served normally.
    let dist = c.tree(0, None).expect("service must keep serving");
    assert_eq!(dist[0], 0);
    assert_eq!(server.service().stats().deadline_misses(), 1);
    server.shutdown();
}

#[test]
fn queue_full_rejects_instead_of_blocking() {
    // One worker, a 2-slot queue, and a long window: admitted jobs sit in
    // the queue while the window is open, so a third rapid submission
    // must be rejected immediately — not block, not drop.
    let (server, _) = start(ServeConfig {
        max_k: 16,
        window: Duration::from_millis(250),
        queue_capacity: 2,
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    // Two requests from background connections fill the queue.
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.tree(0, None)
            })
        })
        .collect();
    // Give them time to be admitted (well under the 250 ms window).
    std::thread::sleep(Duration::from_millis(80));
    let mut c = Client::connect(addr).expect("connect");
    let err = c.tree(1, None).expect_err("third submission must bounce");
    assert_eq!(err.kind, ErrorKind::QueueFull);
    // The admitted requests are unaffected by the rejection.
    for f in fillers {
        assert!(f.join().expect("filler thread").is_ok());
    }
    // And once the queue drains, the same connection is served again.
    assert_eq!(c.tree(1, None).expect("served after drain")[1], 0);
    assert_eq!(server.service().stats().rejected_queue_full(), 1);
    server.shutdown();
}

#[test]
fn malformed_lines_get_typed_replies_and_connection_survives() {
    let (server, n) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let cases: &[(&str, ErrorKind)] = &[
        // not JSON at all
        ("garbage", ErrorKind::Malformed),
        // valid JSON, not an object
        ("[1,2,3]", ErrorKind::Malformed),
        // object without an op
        (r#"{"id":1}"#, ErrorKind::Malformed),
        // unknown op
        (r#"{"op":"teleport","source":0}"#, ErrorKind::Malformed),
        // known op, missing field
        (r#"{"op":"tree"}"#, ErrorKind::BadRequest),
        // known op, wrong field type
        (r#"{"op":"tree","source":"zero"}"#, ErrorKind::BadRequest),
        // out-of-range vertex
        (r#"{"op":"p2p","source":0,"target":4000000000}"#, ErrorKind::BadRequest),
        // empty target list
        (r#"{"op":"many","source":0,"targets":[]}"#, ErrorKind::BadRequest),
        // negative deadline
        (r#"{"op":"tree","source":0,"deadline_ms":-5}"#, ErrorKind::BadRequest),
    ];
    for (line, kind) in cases {
        let reply = c.roundtrip_line(line).expect("connection must stay open");
        assert_error_line(&reply, *kind, line);
    }
    // After the whole gauntlet the same connection still answers.
    let dist = c.tree(n - 1, None).expect("still serving");
    assert_eq!(dist.len(), n as usize);
    assert!(server.service().stats().served() >= 1);
    server.shutdown();
}

#[test]
fn worker_panic_is_quarantined_and_the_socket_keeps_serving() {
    // The fault hook makes any batch containing source `n - 1` panic
    // inside the worker. Over the wire, the poisoned request must come
    // back as a typed Internal error — not a hung or dropped connection —
    // and the respawned worker must serve the very next request.
    let net = RoadNetworkConfig::new(10, 10, 11, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;
    let service = Service::for_graph(
        &net.graph,
        ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            panic_on_source: Some(n - 1),
            ..ServeConfig::default()
        },
    );
    let server = Server::spawn(service, "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let err = c.tree(n - 1, None).expect_err("poisoned request must fail");
    assert_eq!(err.kind, ErrorKind::Internal);
    // Same connection, healthy source: the respawned worker answers.
    let dist = c.tree(0, None).expect("service must keep serving");
    assert_eq!(dist[0], 0);
    let stats = server.service().stats();
    assert_eq!(stats.worker_restarts(), 1);
    assert_eq!(stats.quarantined_requests(), 1);
    server.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_then_the_connection_closes() {
    let (server, _) = start(ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    });
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(&vec![b'a'; 4096]).expect("write flood");
    let _ = s.write_all(b"\n");
    // The server must answer with a typed malformed reply naming the cap,
    // then hang up — read_to_string returning at all proves the close.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("typed reply then close");
    let line = reply.lines().next().expect("reply line before close");
    assert_error_line(line, ErrorKind::Malformed, "oversized line");
    assert!(line.contains("exceeds"), "{line}");
    assert_eq!(server.service().stats().rejected_invalid(), 1);
    // The listener itself is unaffected.
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(c.tree(0, None).expect("still serving")[0], 0);
    server.shutdown();
}

#[test]
fn slow_clients_are_reaped_by_the_io_timeout() {
    let (server, _) = start(ServeConfig {
        io_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(b"{\"op\":\"tr").expect("half a request");
    // ...then nothing: a slowloris holding the line open. The server's
    // read timeout must reap the connection instead of waiting forever.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    let n = s.read(&mut buf).expect("server close reads as EOF");
    assert_eq!(n, 0, "expected EOF after reaping, got {n} bytes");
    assert_eq!(server.service().stats().timed_out_connections(), 1);
    // A prompt client is still served.
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(c.tree(0, None).expect("still serving")[0], 0);
    server.shutdown();
}

#[test]
fn saturation_sheds_with_a_retry_hint_and_a_retrying_client_recovers() {
    // One worker and a long window keep two admitted jobs in the queue;
    // with shed_queue_depth 2 the next submission must be shed with a
    // typed `overloaded` reply — well before the queue_full backstop.
    let (server, _) = start(ServeConfig {
        max_k: 16,
        window: Duration::from_millis(150),
        queue_capacity: 64,
        shed_queue_depth: 2,
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.tree(0, None)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    // A non-retrying client sees the typed shed, with its retry hint...
    let mut c = Client::connect(addr).expect("connect");
    let err = c.tree(1, None).expect_err("saturated queue must shed");
    assert_eq!(err.kind, ErrorKind::Overloaded);
    let hint = err.retry_after_ms.expect("overloaded carries retry_after_ms");
    assert!((5..=5_000).contains(&hint), "hint {hint} outside the clamp");
    // ...while a retrying client waits out the spike and succeeds.
    let mut retrying = Client::connect_with(addr, ClientConfig::retrying(32)).expect("connect");
    let dist = retrying.tree(1, None).expect("retry must outlast the window");
    assert_eq!(dist[1], 0);
    for f in fillers {
        assert!(f.join().expect("filler").is_ok());
    }
    let stats = server.service().stats();
    assert!(stats.shed_overload() >= 1, "shed_overload not counted");
    assert_eq!(stats.rejected_queue_full(), 0, "backstop should not fire");
    server.shutdown();
}

#[test]
fn connections_beyond_max_conns_get_a_typed_busy_refusal() {
    let (server, _) = start(ServeConfig {
        max_conns: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut first = Client::connect(addr).expect("first connection");
    assert_eq!(first.tree(0, None).expect("first is served")[0], 0);
    // Second connection: accepted at the TCP level, refused with `busy`.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read refusal");
    let line = reply.lines().next().expect("typed busy line");
    assert_error_line(line, ErrorKind::Busy, "over-cap connection");
    assert_eq!(server.service().stats().refused_busy(), 1);
    // Freeing the slot lets the next connection in.
    drop(first);
    let mut served = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        let mut c = Client::connect(addr).expect("reconnect");
        match c.tree(0, None) {
            Ok(d) => {
                assert_eq!(d[0], 0);
                served = true;
                break;
            }
            Err(e) if e.kind == ErrorKind::Busy => continue,
            Err(e) => panic!("unexpected error after slot freed: {:?} {}", e.kind, e.message),
        }
    }
    assert!(served, "slot never freed after the first client disconnected");
    server.shutdown();
}

#[test]
fn deeply_nested_json_is_rejected_without_overflowing_the_stack() {
    // 100k-deep nesting would blow the stack of an unguarded recursive
    // parser; the recursion limit must turn it into a typed error.
    let bomb = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    let err = parse_request(&bomb).expect_err("nesting bomb must be rejected");
    assert_eq!(err.kind, ErrorKind::Malformed);
    let obj_bomb = format!("{}0{}", "{\"op\":".repeat(100_000), "}".repeat(100_000));
    let err = parse_request(&obj_bomb).expect_err("object bomb must be rejected");
    assert_eq!(err.kind, ErrorKind::Malformed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Byte soup of any shape — raw bytes run through lossy UTF-8
    /// decoding, exactly as the server's bounded line reader produces
    /// them — must never panic the request parser. Errors are fine;
    /// panics or unbounded work are not.
    #[test]
    fn parse_request_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255, 0..2048),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
    }

    /// JSON-flavored soup biased toward structural characters reaches the
    /// deeper parser paths (nesting, strings, numbers) more often than
    /// uniform bytes do.
    #[test]
    fn parse_request_never_panics_on_json_shaped_soup(
        picks in proptest::collection::vec(0usize..16, 0..512),
    ) {
        const VOCAB: [&str; 16] = [
            "{", "}", "[", "]", ":", ",", "\"", "\\", "op", "tree", "source",
            "-", "1e999", "0.5", " ", "\\u0000",
        ];
        let line: String = picks.iter().map(|&i| VOCAB[i]).collect();
        let _ = parse_request(&line);
        let _ = parse_request(&format!("{{\"op\":\"tree\",\"source\":{line}}}"));
    }
}

#[test]
fn shutdown_drains_then_rejects() {
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.tree(0, None).is_ok());
    let service = Arc::clone(server.service());
    server.shutdown();
    // Direct in-process submission after shutdown: typed rejection.
    let err = service
        .call(phast::core::HeteroQuery::Tree { source: 0 }, None)
        .expect_err("closed service must reject");
    assert_eq!(err.kind, ErrorKind::Shutdown);
}
