//! Robustness tests for the `phast-serve` front end: every documented
//! failure mode — an expired deadline, a full admission queue, a malformed
//! request line — produces its documented typed error reply, and the
//! listener keeps serving afterwards. No client input tears down a
//! connection, let alone the server (DESIGN.md §9, "failure modes").

use phast::graph::gen::{Metric, RoadNetworkConfig};
use phast::serve::protocol::{decode_reply, Reply};
use phast::serve::{Client, ErrorKind, ServeConfig, Server, Service};
use std::sync::Arc;
use std::time::Duration;

fn start(cfg: ServeConfig) -> (Server, u32) {
    let net = RoadNetworkConfig::new(10, 10, 11, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;
    let service = Service::for_graph(&net.graph, cfg);
    (Server::spawn(service, "127.0.0.1:0").expect("bind"), n)
}

/// Decodes a raw reply line and asserts it is a typed error of `kind`.
fn assert_error_line(line: &str, kind: ErrorKind, what: &str) {
    match decode_reply(line).expect(what) {
        Reply::Error(e) => assert_eq!(e.kind, kind, "{what}: {line}"),
        other => panic!("{what}: expected {kind:?} error, got {other:?}"),
    }
}

#[test]
fn expired_deadline_gets_typed_reply_and_service_survives() {
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(40),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    // deadline_ms = 0 expires before any batch can form.
    let err = c.tree(0, Some(0)).expect_err("deadline must expire");
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    // Same connection, no deadline: served normally.
    let dist = c.tree(0, None).expect("service must keep serving");
    assert_eq!(dist[0], 0);
    assert_eq!(server.service().stats().deadline_misses(), 1);
    server.shutdown();
}

#[test]
fn queue_full_rejects_instead_of_blocking() {
    // One worker, a 2-slot queue, and a long window: admitted jobs sit in
    // the queue while the window is open, so a third rapid submission
    // must be rejected immediately — not block, not drop.
    let (server, _) = start(ServeConfig {
        max_k: 16,
        window: Duration::from_millis(250),
        queue_capacity: 2,
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    // Two requests from background connections fill the queue.
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.tree(0, None)
            })
        })
        .collect();
    // Give them time to be admitted (well under the 250 ms window).
    std::thread::sleep(Duration::from_millis(80));
    let mut c = Client::connect(addr).expect("connect");
    let err = c.tree(1, None).expect_err("third submission must bounce");
    assert_eq!(err.kind, ErrorKind::QueueFull);
    // The admitted requests are unaffected by the rejection.
    for f in fillers {
        assert!(f.join().expect("filler thread").is_ok());
    }
    // And once the queue drains, the same connection is served again.
    assert_eq!(c.tree(1, None).expect("served after drain")[1], 0);
    assert_eq!(server.service().stats().rejected_queue_full(), 1);
    server.shutdown();
}

#[test]
fn malformed_lines_get_typed_replies_and_connection_survives() {
    let (server, n) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let cases: &[(&str, ErrorKind)] = &[
        // not JSON at all
        ("garbage", ErrorKind::Malformed),
        // valid JSON, not an object
        ("[1,2,3]", ErrorKind::Malformed),
        // object without an op
        (r#"{"id":1}"#, ErrorKind::Malformed),
        // unknown op
        (r#"{"op":"teleport","source":0}"#, ErrorKind::Malformed),
        // known op, missing field
        (r#"{"op":"tree"}"#, ErrorKind::BadRequest),
        // known op, wrong field type
        (r#"{"op":"tree","source":"zero"}"#, ErrorKind::BadRequest),
        // out-of-range vertex
        (r#"{"op":"p2p","source":0,"target":4000000000}"#, ErrorKind::BadRequest),
        // empty target list
        (r#"{"op":"many","source":0,"targets":[]}"#, ErrorKind::BadRequest),
        // negative deadline
        (r#"{"op":"tree","source":0,"deadline_ms":-5}"#, ErrorKind::BadRequest),
    ];
    for (line, kind) in cases {
        let reply = c.roundtrip_line(line).expect("connection must stay open");
        assert_error_line(&reply, *kind, line);
    }
    // After the whole gauntlet the same connection still answers.
    let dist = c.tree(n - 1, None).expect("still serving");
    assert_eq!(dist.len(), n as usize);
    assert!(server.service().stats().served() >= 1);
    server.shutdown();
}

#[test]
fn worker_panic_is_quarantined_and_the_socket_keeps_serving() {
    // The fault hook makes any batch containing source `n - 1` panic
    // inside the worker. Over the wire, the poisoned request must come
    // back as a typed Internal error — not a hung or dropped connection —
    // and the respawned worker must serve the very next request.
    let net = RoadNetworkConfig::new(10, 10, 11, Metric::TravelTime).build();
    let n = net.graph.num_vertices() as u32;
    let service = Service::for_graph(
        &net.graph,
        ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            panic_on_source: Some(n - 1),
            ..ServeConfig::default()
        },
    );
    let server = Server::spawn(service, "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let err = c.tree(n - 1, None).expect_err("poisoned request must fail");
    assert_eq!(err.kind, ErrorKind::Internal);
    // Same connection, healthy source: the respawned worker answers.
    let dist = c.tree(0, None).expect("service must keep serving");
    assert_eq!(dist[0], 0);
    let stats = server.service().stats();
    assert_eq!(stats.worker_restarts(), 1);
    assert_eq!(stats.quarantined_requests(), 1);
    server.shutdown();
}

#[test]
fn shutdown_drains_then_rejects() {
    let (server, _) = start(ServeConfig {
        window: Duration::from_millis(0),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.tree(0, None).is_ok());
    let service = Arc::clone(server.service());
    server.shutdown();
    // Direct in-process submission after shutdown: typed rejection.
    let err = service
        .call(phast::core::HeteroQuery::Tree { source: 0 }, None)
        .expect_err("closed service must reject");
    assert_eq!(err.kind, ErrorKind::Shutdown);
}
