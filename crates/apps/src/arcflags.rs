//! Arc flags (Section VII-B.b).
//!
//! An arc `a` carries one Boolean flag per cell `C`: true iff `a` lies on
//! some shortest path into `C`. Point-to-point queries then run Dijkstra
//! but only relax arcs flagged for the target's cell — "very efficient,
//! with speedups of more than three orders of magnitude" on continental
//! networks.
//!
//! The expensive part is preprocessing: one **reverse** shortest path tree
//! per cell-boundary vertex. The paper's headline application win is
//! replacing Dijkstra by (G)PHAST here: "reducing the time to set flags
//! from about 10.5 hours to less than 3 minutes". Both drivers are
//! provided: [`ArcFlags::preprocess_phast`] and the
//! [`ArcFlags::preprocess_dijkstra`] baseline.

use crate::partition::Partition;
use phast_core::{Direction, Phast};
use phast_dijkstra::dijkstra::Dijkstra;
use phast_graph::{Graph, Vertex, Weight, INF};
use phast_pq::FourHeap;
use rayon::prelude::*;

/// Arc flags for a graph under a fixed partition. Flags are stored as a
/// bit matrix: `words_per_arc` little-endian 64-bit words per arc, indexed
/// by the arc's position in the forward CSR.
#[derive(Clone, Debug)]
pub struct ArcFlags {
    flags: Vec<u64>,
    words_per_arc: usize,
    /// The partition the flags were computed for.
    pub partition: Partition,
}

impl ArcFlags {
    /// Preprocessing statistics.
    fn empty(g: &Graph, partition: Partition) -> Self {
        let words_per_arc = partition.num_cells.div_ceil(64);
        Self {
            flags: vec![0u64; g.num_arcs() * words_per_arc],
            words_per_arc,
            partition,
        }
    }

    #[inline]
    fn set(&mut self, arc_idx: usize, cell: u32) {
        let w = arc_idx * self.words_per_arc + (cell as usize) / 64;
        self.flags[w] |= 1u64 << (cell % 64);
    }

    /// True if `arc_idx` is flagged for `cell`.
    #[inline]
    pub fn get(&self, arc_idx: usize, cell: u32) -> bool {
        let w = arc_idx * self.words_per_arc + (cell as usize) / 64;
        self.flags[w] >> (cell % 64) & 1 == 1
    }

    /// Number of set flags (statistics).
    pub fn count_set(&self) -> usize {
        self.flags.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Shared flag-setting core: `dist_to[b]` supplies, for boundary vertex
    /// `b` of `cell`, the distances *to* `b` from every vertex.
    fn apply_boundary_tree(&mut self, g: &Graph, cell: u32, dist_to_b: &[Weight]) {
        // Flag every arc that is tight for this reverse tree: (u, v) with
        // dist(u -> b) == w(u, v) + dist(v -> b).
        let forward = g.forward();
        let mut arc_idx = 0usize;
        for u in 0..g.num_vertices() as Vertex {
            let du = dist_to_b[u as usize];
            for a in forward.out(u) {
                let dv = dist_to_b[a.head as usize];
                if du < INF && dv < INF && du == a.weight + dv {
                    self.set(arc_idx, cell);
                }
                arc_idx += 1;
            }
        }
    }

    /// Flags all intra-cell arcs for their own cell (both endpoints inside).
    fn flag_intra_cell_arcs(&mut self, g: &Graph) {
        let mut arc_idx = 0usize;
        for u in 0..g.num_vertices() as Vertex {
            let cu = self.partition.cell(u);
            for a in g.out(u) {
                if self.partition.cell(a.head) == cu {
                    self.set(arc_idx, cu);
                }
                arc_idx += 1;
            }
        }
    }

    /// Full preprocessing with reverse **PHAST** trees. `phast_rev` must be
    /// a [`Direction::Reverse`] solver over `g`.
    pub fn preprocess_phast(g: &Graph, partition: Partition, phast_rev: &Phast) -> Self {
        assert_eq!(phast_rev.direction(), Direction::Reverse);
        assert_eq!(phast_rev.num_vertices(), g.num_vertices());
        let mut flags = Self::empty(g, partition);
        flags.flag_intra_cell_arcs(g);
        let boundary = flags.partition.boundary_vertices(g);
        // One reverse tree per boundary vertex, parallel over sources; the
        // per-tree flag pass is folded per worker and OR-merged at the end.
        let words_per_arc = flags.words_per_arc;
        let num_cells = flags.partition.num_cells;
        let jobs: Vec<(u32, Vertex)> = boundary
            .iter()
            .enumerate()
            .flat_map(|(c, bs)| bs.iter().map(move |&b| (c as u32, b)))
            .collect();
        let partials: Vec<Vec<u64>> = jobs
            .par_chunks(jobs.len().div_ceil(rayon::current_num_threads()).max(1))
            .map(|chunk| {
                let mut local = Self {
                    flags: vec![0u64; g.num_arcs() * words_per_arc],
                    words_per_arc,
                    partition: Partition::new(
                        flags.partition.cell_of.clone(),
                        num_cells,
                    ),
                };
                let mut engine = phast_rev.engine();
                for &(cell, b) in chunk {
                    let dist_to_b = engine.distances(b);
                    local.apply_boundary_tree(g, cell, &dist_to_b);
                }
                local.flags
            })
            .collect();
        for partial in partials {
            for (w, bits) in partial.into_iter().enumerate() {
                flags.flags[w] |= bits;
            }
        }
        flags
    }

    /// Like [`Self::preprocess_phast`] but computes the boundary trees in
    /// batches of `k` per sweep (Section IV-B's multi-tree batching — how
    /// the paper's pipeline actually amortizes the 10 000-tree arc-flag
    /// workload). Produces bit-identical flags.
    pub fn preprocess_phast_batched(
        g: &Graph,
        partition: Partition,
        phast_rev: &Phast,
        k: usize,
    ) -> Self {
        assert_eq!(phast_rev.direction(), Direction::Reverse);
        let mut flags = Self::empty(g, partition);
        flags.flag_intra_cell_arcs(g);
        let boundary = flags.partition.boundary_vertices(g);
        let jobs: Vec<(u32, Vertex)> = boundary
            .iter()
            .enumerate()
            .flat_map(|(c, bs)| bs.iter().map(move |&b| (c as u32, b)))
            .collect();
        let mut engine = phast_rev.multi_engine(k);
        let mut dist = vec![0u32; g.num_vertices()];
        for chunk in jobs.chunks(k) {
            let mut sources: Vec<Vertex> = chunk.iter().map(|&(_, b)| b).collect();
            let pad = *sources.last().expect("chunks are non-empty");
            sources.resize(k, pad);
            engine.run(&sources);
            for (i, &(cell, _)) in chunk.iter().enumerate() {
                // Pull tree i's labels into original order once.
                for sweep in 0..g.num_vertices() {
                    dist[phast_rev.to_original(sweep as Vertex) as usize] =
                        engine.labels()[sweep * k + i];
                }
                flags.apply_boundary_tree(g, cell, &dist);
            }
        }
        flags
    }

    /// The Dijkstra baseline: identical output, reverse trees via Dijkstra
    /// on the transposed graph.
    pub fn preprocess_dijkstra(g: &Graph, partition: Partition) -> Self {
        let mut flags = Self::empty(g, partition);
        flags.flag_intra_cell_arcs(g);
        let transposed = g.forward().transposed();
        let boundary = flags.partition.boundary_vertices(g);
        let mut solver = Dijkstra::<FourHeap>::new(&transposed);
        for (c, bs) in boundary.iter().enumerate() {
            for &b in bs {
                let (dist, _, _) = solver.run_in_place(b);
                let dist = dist.to_vec();
                flags.apply_boundary_tree(g, c as u32, &dist);
            }
        }
        flags
    }

    /// Flags for shortest paths **from** each cell, computed on the
    /// transposed graph — the second half of a bidirectional arc-flags
    /// setup. `phast_fwd` must be a **forward** solver over `g` (its trees
    /// give distances *from* boundary vertices, which are the reverse
    /// trees of the transposed graph).
    pub fn preprocess_outgoing_phast(g: &Graph, partition: Partition, phast_fwd: &Phast) -> Self {
        assert_eq!(phast_fwd.direction(), Direction::Forward);
        let transposed = g.transposed();
        // An arc (u, v) of g is (v, u) of the transpose; flags computed on
        // the transpose must be transferred back to g's arc indexing.
        let mut t_flags = Self::empty(&transposed, partition);
        t_flags.flag_intra_cell_arcs(&transposed);
        let boundary = t_flags.partition.boundary_vertices(&transposed);
        let mut engine = phast_fwd.engine();
        for (c, bs) in boundary.iter().enumerate() {
            for &b in bs {
                // Distances *to* b in the transpose = distances *from* b
                // in g, which the forward PHAST solver provides.
                let dist = engine.distances(b);
                t_flags.apply_boundary_tree(&transposed, c as u32, &dist);
            }
        }
        // Transfer: g arc index for (u, v) -> transpose arc index for (v, u).
        let mut flags = Self::empty(g, t_flags.partition.clone());
        let mut arc_idx = 0usize;
        for u in 0..g.num_vertices() as Vertex {
            for a in g.out(u) {
                // Locate (a.head, u) with the same weight in the transpose.
                let range = transposed.forward().arc_range(a.head);
                let local = transposed
                    .out(a.head)
                    .iter()
                    .position(|t| t.head == u && t.weight == a.weight)
                    .expect("transpose must contain the flipped arc");
                let t_idx = range.start + local;
                for w in 0..flags.words_per_arc {
                    flags.flags[arc_idx * flags.words_per_arc + w] |=
                        t_flags.flags[t_idx * t_flags.words_per_arc + w];
                }
                arc_idx += 1;
            }
        }
        flags
    }

    /// Point-to-point query: Dijkstra relaxing only arcs flagged for the
    /// target's cell. Returns the distance and the number of settled
    /// vertices (the speedup metric).
    pub fn query(&self, g: &Graph, s: Vertex, t: Vertex) -> (Option<Weight>, usize) {
        let cell_t = self.partition.cell(t);
        let forward = g.forward();
        let n = g.num_vertices();
        let mut dist = vec![INF; n];
        let mut queue = FourHeap::new(n);
        use phast_pq::DecreaseKeyQueue;
        dist[s as usize] = 0;
        queue.insert(s, 0);
        let mut settled = 0usize;
        while let Some((v, dv)) = queue.pop_min() {
            settled += 1;
            if v == t {
                return (Some(dv), settled);
            }
            let range = forward.arc_range(v);
            for (a, arc_idx) in forward.out(v).iter().zip(range) {
                if !self.get(arc_idx, cell_t) {
                    continue;
                }
                let cand = dv + a.weight;
                if cand < dist[a.head as usize] {
                    if dist[a.head as usize] == INF {
                        queue.insert(a.head, cand);
                    } else {
                        queue.decrease_key(a.head, cand);
                    }
                    dist[a.head as usize] = cand;
                }
            }
        }
        (None, settled)
    }
}

/// Bidirectional arc flags (the paper: "this approach can easily be made
/// bidirectional and is very efficient"). The forward search prunes on the
/// *incoming* flags of the target's cell, the backward search on the
/// *outgoing* flags of the source's cell; both searches stop once their
/// frontier minimum reaches the best meeting value.
pub struct BidirectionalArcFlags {
    /// Flags for shortest paths *into* each cell (forward pruning).
    pub incoming: ArcFlags,
    /// Flags for shortest paths *out of* each cell (backward pruning).
    pub outgoing: ArcFlags,
    /// Transposed graph for the backward search...
    transposed: Graph,
    /// ...with each transposed arc's index in the original forward CSR.
    orig_index: Vec<u32>,
}

impl BidirectionalArcFlags {
    /// Builds both flag directions with PHAST-driven preprocessing.
    /// `phast_rev`/`phast_fwd` are reverse/forward solvers over `g`.
    pub fn preprocess_phast(
        g: &Graph,
        partition: Partition,
        phast_rev: &Phast,
        phast_fwd: &Phast,
    ) -> Self {
        let incoming = ArcFlags::preprocess_phast(g, partition.clone(), phast_rev);
        let outgoing = ArcFlags::preprocess_outgoing_phast(g, partition, phast_fwd);
        let transposed = g.transposed();
        // For each transposed arc (v, u), find the original index of (u, v).
        let mut orig_index = vec![0u32; transposed.num_arcs()];
        let mut used = vec![false; g.num_arcs()];
        for v in 0..transposed.num_vertices() as Vertex {
            let t_range = transposed.forward().arc_range(v);
            for (t_idx, a) in transposed.out(v).iter().enumerate() {
                let u = a.head; // original arc u -> v
                let range = g.forward().arc_range(u);
                let local = g
                    .out(u)
                    .iter()
                    .enumerate()
                    .position(|(i, o)| {
                        o.head == v && o.weight == a.weight && !used[range.start + i]
                    })
                    .expect("original arc must exist");
                used[range.start + local] = true;
                orig_index[t_range.start + t_idx] = (range.start + local) as u32;
            }
        }
        Self {
            incoming,
            outgoing,
            transposed,
            orig_index,
        }
    }

    /// Bidirectional flagged query. Returns the distance and the total
    /// settled count over both searches.
    pub fn query(&self, g: &Graph, s: Vertex, t: Vertex) -> (Option<Weight>, usize) {
        use phast_pq::DecreaseKeyQueue;
        let cell_t = self.incoming.partition.cell(t);
        let cell_s = self.outgoing.partition.cell(s);
        let n = g.num_vertices();
        let forward = g.forward();
        let backward = self.transposed.forward();
        let mut df = vec![INF; n];
        let mut db = vec![INF; n];
        let mut qf = FourHeap::new(n);
        let mut qb = FourHeap::new(n);
        df[s as usize] = 0;
        db[t as usize] = 0;
        qf.insert(s, 0);
        qb.insert(t, 0);
        let mut mu = if s == t { 0 } else { INF };
        let mut settled = 0usize;
        loop {
            let fmin = qf.peek_min().map(|(_, k)| k);
            let bmin = qb.peek_min().map(|(_, k)| k);
            let lower = match (fmin, bmin) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if lower >= mu {
                break;
            }
            if fmin.is_some() && (bmin.is_none() || fmin <= bmin) {
                let (v, dv) = qf.pop_min().expect("non-empty");
                settled += 1;
                if db[v as usize] < INF {
                    mu = mu.min(dv + db[v as usize]);
                }
                let range = forward.arc_range(v);
                for (a, arc_idx) in forward.out(v).iter().zip(range) {
                    if !self.incoming.get(arc_idx, cell_t) {
                        continue;
                    }
                    let cand = dv + a.weight;
                    if cand < df[a.head as usize] {
                        if df[a.head as usize] == INF {
                            qf.insert(a.head, cand);
                        } else {
                            qf.decrease_key(a.head, cand);
                        }
                        df[a.head as usize] = cand;
                    }
                }
            } else {
                let (v, dv) = qb.pop_min().expect("non-empty");
                settled += 1;
                if df[v as usize] < INF {
                    mu = mu.min(dv + df[v as usize]);
                }
                let range = backward.arc_range(v);
                for (a, t_idx) in backward.out(v).iter().zip(range) {
                    if !self.outgoing.get(self.orig_index[t_idx] as usize, cell_s) {
                        continue;
                    }
                    let cand = dv + a.weight;
                    if cand < db[a.head as usize] {
                        if db[a.head as usize] == INF {
                            qb.insert(a.head, cand);
                        } else {
                            qb.decrease_key(a.head, cand);
                        }
                        db[a.head as usize] = cand;
                    }
                }
            }
        }
        ((mu < INF).then_some(mu), settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn reverse_phast(g: &Graph) -> Phast {
        phast_core::PhastBuilder::new()
            .direction(Direction::Reverse)
            .build(g)
    }

    #[test]
    fn phast_and_dijkstra_preprocessing_agree() {
        let net = RoadNetworkConfig::new(12, 12, 41, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 3, 3);
        let rev = reverse_phast(g);
        let a = ArcFlags::preprocess_phast(g, part.clone(), &rev);
        let b = ArcFlags::preprocess_dijkstra(g, part);
        assert_eq!(a.flags, b.flags);
        assert!(a.count_set() > 0);
    }

    #[test]
    fn batched_preprocessing_is_bit_identical() {
        let net = RoadNetworkConfig::new(12, 12, 45, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 3, 3);
        let rev = reverse_phast(g);
        let single = ArcFlags::preprocess_phast(g, part.clone(), &rev);
        for k in [4usize, 16] {
            let batched = ArcFlags::preprocess_phast_batched(g, part.clone(), &rev, k);
            assert_eq!(single.flags, batched.flags, "k = {k}");
        }
    }

    #[test]
    fn queries_match_plain_dijkstra() {
        let net = RoadNetworkConfig::new(14, 14, 42, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 4, 4);
        let rev = reverse_phast(g);
        let flags = ArcFlags::preprocess_phast(g, part, &rev);
        let n = g.num_vertices() as Vertex;
        for s in [0, 7, n / 2] {
            let want = shortest_paths(g.forward(), s).dist;
            for t in [1, n - 1, n / 3, s] {
                let (got, _) = flags.query(g, s, t);
                assert_eq!(got, Some(want[t as usize]), "{s} -> {t}");
            }
        }
    }

    #[test]
    fn queries_prune_the_search() {
        let net = RoadNetworkConfig::new(24, 24, 43, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 5, 5);
        let rev = reverse_phast(g);
        let flags = ArcFlags::preprocess_phast(g, part, &rev);
        let n = g.num_vertices() as Vertex;
        // Long-range query: flags must cut the settled count well below n.
        let (d, settled) = flags.query(g, 0, n - 1);
        assert!(d.is_some());
        assert!(
            settled * 2 < n as usize,
            "arc flags settled {settled} of {n}"
        );
    }

    #[test]
    fn works_on_random_digraphs_with_bfs_partition() {
        for seed in 0..3 {
            let g = strongly_connected_gnm(40, 100, 20, seed);
            let part = Partition::bfs_grow(&g, 4);
            let rev = reverse_phast(&g);
            let flags = ArcFlags::preprocess_phast(&g, part, &rev);
            let want = shortest_paths(g.forward(), 0).dist;
            for t in 0..40u32 {
                let (got, _) = flags.query(&g, 0, t);
                assert_eq!(got, Some(want[t as usize]), "seed {seed} t {t}");
            }
        }
    }

    #[test]
    fn many_cells_multi_word_flags() {
        let net = RoadNetworkConfig::new(12, 12, 44, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 9, 9); // 81 cells -> 2 words
        let rev = reverse_phast(g);
        let flags = ArcFlags::preprocess_phast(g, part, &rev);
        assert_eq!(flags.words_per_arc, 2);
        let want = shortest_paths(g.forward(), 3).dist;
        for t in [0u32, 50, 100] {
            let (got, _) = flags.query(g, 3, t);
            assert_eq!(got, Some(want[t as usize]));
        }
    }
}

#[cfg(test)]
mod bidirectional_tests {
    use super::*;
    use phast_core::PhastBuilder;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn bidirectional_queries_match_plain_dijkstra() {
        let net = RoadNetworkConfig::new(14, 14, 81, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 3, 3);
        let rev = PhastBuilder::new().direction(Direction::Reverse).build(g);
        let fwd = PhastBuilder::new().build(g);
        let bi = BidirectionalArcFlags::preprocess_phast(g, part, &rev, &fwd);
        let n = g.num_vertices() as Vertex;
        for s in [0, 7, n / 2] {
            let want = shortest_paths(g.forward(), s).dist;
            for t in [1, n - 1, n / 3, s] {
                let (got, _) = bi.query(g, s, t);
                assert_eq!(got, Some(want[t as usize]), "{s} -> {t}");
            }
        }
    }

    #[test]
    fn bidirectional_settles_fewer_than_unidirectional() {
        let net = RoadNetworkConfig::new(22, 22, 82, Metric::TravelTime).build();
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 4, 4);
        let rev = PhastBuilder::new().direction(Direction::Reverse).build(g);
        let fwd = PhastBuilder::new().build(g);
        let uni = ArcFlags::preprocess_phast(g, part.clone(), &rev);
        let bi = BidirectionalArcFlags::preprocess_phast(g, part, &rev, &fwd);
        let n = g.num_vertices() as Vertex;
        let mut uni_total = 0usize;
        let mut bi_total = 0usize;
        for i in 0..20u32 {
            let (s, t) = (i * 113 % n, i * 211 % n);
            let (du, su) = uni.query(g, s, t);
            let (db, sb) = bi.query(g, s, t);
            assert_eq!(du, db, "{s} -> {t}");
            uni_total += su;
            bi_total += sb;
        }
        // Not guaranteed per-query, but in aggregate the bidirectional
        // search should not settle more than the unidirectional one does.
        assert!(
            bi_total <= uni_total * 2,
            "bidirectional settled {bi_total} vs {uni_total}"
        );
    }

    #[test]
    fn outgoing_flags_are_the_transpose_of_incoming() {
        // On a symmetric (undirected) graph with a symmetric partition the
        // outgoing flags of (u, v) equal the incoming flags of (v, u).
        let net = RoadNetworkConfig::new(8, 8, 83, Metric::TravelTime).build();
        // Build a fully symmetric version by adding both directions.
        let g = &net.graph;
        let part = Partition::grid(&net.coords, 2, 2);
        let rev = PhastBuilder::new().direction(Direction::Reverse).build(g);
        let fwd = PhastBuilder::new().build(g);
        let inc = ArcFlags::preprocess_phast(g, part.clone(), &rev);
        let out = ArcFlags::preprocess_outgoing_phast(g, part, &fwd);
        assert_eq!(inc.count_set() > 0, out.count_set() > 0);
    }
}
