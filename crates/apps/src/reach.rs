//! Exact reach (Section VII-B.c).
//!
//! "The reach of `v` is defined as the maximum, over all shortest `s`-`t`
//! paths containing `v`, of `min(dist(s, v), dist(v, t))`. [...] The best
//! known method to calculate exact reaches for all vertices within a graph
//! requires computing all `n` shortest path trees."
//!
//! Per tree rooted at `s`, `dist(s, v)` is `v`'s *depth* and the farthest
//! descendant distance its *height*; the candidate reach from this tree is
//! `min(depth, height)`, aggregated by max over all roots. Heights are
//! computed bottom-up — which PHAST does cache-efficiently "by scanning
//! vertices in level order" (the sweep order is a reverse topological
//! order of each tree because tree arcs never increase the level... more
//! precisely, we traverse the tree by decreasing distance, which the
//! sweep-order data makes cheap).
//!
//! As with other exact-reach codes, reaches are computed with respect to a
//! fixed shortest-path *tree* per root (canonical tie-breaking); different
//! tie-breaking can give different — equally valid — reach values, so the
//! Dijkstra baseline shares the tree construction to stay comparable.

use phast_core::Phast;
use phast_dijkstra::dijkstra::Dijkstra;
use phast_dijkstra::ShortestPathTree;
use phast_graph::{Csr, Vertex, Weight, INF};
use phast_pq::FourHeap;
use rayon::prelude::*;

/// Aggregates one tree's `min(depth, height)` candidates into `reach`.
fn fold_tree(reach: &mut [Weight], tree: &ShortestPathTree) {
    let heights = tree.heights();
    for v in 0..reach.len() {
        let depth = tree.dist[v];
        if depth >= INF {
            continue;
        }
        let cand = depth.min(heights[v]);
        if cand > reach[v] {
            reach[v] = cand;
        }
    }
}

/// Exact reaches via PHAST trees from every source in `sources` (use all
/// vertices for the true value).
pub fn reaches_phast(p: &Phast, sources: &[Vertex]) -> Vec<Weight> {
    let n = p.num_vertices();
    let partials: Vec<Vec<Weight>> = sources
        .par_chunks(sources.len().div_ceil(rayon::current_num_threads()).max(1))
        .map(|chunk| {
            let mut engine = p.tree_engine();
            let mut reach = vec![0 as Weight; n];
            for &s in chunk {
                engine.run(s);
                let tree = engine.original_tree(s);
                fold_tree(&mut reach, &tree);
            }
            reach
        })
        .collect();
    let mut reach = vec![0 as Weight; n];
    for partial in partials {
        for (r, p) in reach.iter_mut().zip(partial) {
            *r = (*r).max(p);
        }
    }
    reach
}

/// The Dijkstra baseline (same tree semantics as
/// [`phast_dijkstra::dijkstra::Dijkstra`] produces).
pub fn reaches_dijkstra(g: &Csr, sources: &[Vertex]) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut reach = vec![0 as Weight; n];
    let mut solver = Dijkstra::<FourHeap>::new(g);
    for &s in sources {
        let r = solver.run(s);
        let tree = ShortestPathTree::new(s, r.dist, r.parent);
        fold_tree(&mut reach, &tree);
    }
    reach
}

/// A reach-pruned bidirectional point-to-point query — what the reaches are
/// *for* ("this notion is very useful to accelerate the computation of
/// point-to-point shortest paths", §VII-B.c; the RE algorithm of reference
/// \[13\]).
///
/// Pruning rule: when the forward search scans `v`, it may skip relaxation
/// if `reach(v) < d_s(v)` **and** `reach(v) < r_b` (the backward frontier's
/// radius, a lower bound on `dist(v, t)` for backward-unscanned vertices);
/// symmetrically for the backward search. Correctness relies on the reach
/// values being valid for the canonical shortest-path trees they were
/// computed from: every vertex `v` on the tree path `s → t` has
/// `reach(v) >= min(dist(s, v), dist(v, t))`, so at least that path always
/// survives the pruning.
pub struct ReachQuery<'g> {
    forward: &'g Csr,
    backward: Csr,
    reach: Vec<Weight>,
}

impl<'g> ReachQuery<'g> {
    /// Builds a query engine from the graph and precomputed reaches
    /// (from [`reaches_phast`] over **all** sources).
    pub fn new(forward: &'g Csr, reach: Vec<Weight>) -> Self {
        assert_eq!(forward.num_vertices(), reach.len());
        Self {
            backward: forward.transposed(),
            forward,
            reach,
        }
    }

    /// Shortest `s`-`t` distance; returns the distance and the number of
    /// vertices settled (the pruning metric).
    pub fn query(&self, s: Vertex, t: Vertex) -> (Option<Weight>, usize) {
        use phast_pq::DecreaseKeyQueue;
        let n = self.forward.num_vertices();
        let mut df = vec![INF; n];
        let mut db = vec![INF; n];
        let mut scanned_f = vec![false; n];
        let mut scanned_b = vec![false; n];
        let mut qf = FourHeap::new(n);
        let mut qb = FourHeap::new(n);
        df[s as usize] = 0;
        db[t as usize] = 0;
        qf.insert(s, 0);
        qb.insert(t, 0);
        let mut mu = if s == t { 0 } else { INF };
        let mut settled = 0usize;
        loop {
            let fmin = qf.peek_min().map(|(_, k)| k);
            let bmin = qb.peek_min().map(|(_, k)| k);
            let lower = match (fmin, bmin) {
                (Some(a), Some(b)) => a.saturating_add(b),
                _ => break,
            };
            if lower >= mu {
                break;
            }
            if fmin <= bmin {
                let (v, dv) = qf.pop_min().expect("non-empty");
                scanned_f[v as usize] = true;
                settled += 1;
                if db[v as usize] < INF {
                    mu = mu.min(dv + db[v as usize]);
                }
                // Prune: v cannot be interior to a surviving shortest path.
                let r_b = bmin.unwrap_or(0);
                if self.reach[v as usize] < dv
                    && self.reach[v as usize] < r_b
                    && !scanned_b[v as usize]
                {
                    continue;
                }
                for a in self.forward.out(v) {
                    let cand = dv + a.weight;
                    if cand < df[a.head as usize] {
                        if df[a.head as usize] == INF {
                            qf.insert(a.head, cand);
                        } else {
                            qf.decrease_key(a.head, cand);
                        }
                        df[a.head as usize] = cand;
                    }
                }
            } else {
                let (v, dv) = qb.pop_min().expect("non-empty");
                scanned_b[v as usize] = true;
                settled += 1;
                if df[v as usize] < INF {
                    mu = mu.min(dv + df[v as usize]);
                }
                let r_f = fmin.unwrap_or(0);
                if self.reach[v as usize] < dv
                    && self.reach[v as usize] < r_f
                    && !scanned_f[v as usize]
                {
                    continue;
                }
                for a in self.backward.out(v) {
                    let cand = dv + a.weight;
                    if cand < db[a.head as usize] {
                        if db[a.head as usize] == INF {
                            qb.insert(a.head, cand);
                        } else {
                            qb.decrease_key(a.head, cand);
                        }
                        db[a.head as usize] = cand;
                    }
                }
            }
        }
        ((mu < INF).then_some(mu), settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::GraphBuilder;

    #[test]
    fn path_graph_reaches() {
        // 0 -10- 1 -10- 2 -10- 3 -10- 4 (undirected).
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 10);
        }
        let g = b.build();
        let sources: Vec<Vertex> = (0..5).collect();
        let want = reaches_dijkstra(g.forward(), &sources);
        // The middle vertex sees min(20, 20) from the end-to-end path; the
        // ends have reach 0 (they are never interior with positive min).
        assert_eq!(want[2], 20);
        assert_eq!(want[0], 0);
        assert_eq!(want[4], 0);
        assert_eq!(want[1], 10);
    }

    /// The reach depends on tie-breaking among equal shortest paths, so
    /// PHAST-vs-Dijkstra equality is only guaranteed when shortest paths
    /// are unique; road networks with jittered weights mostly are, and this
    /// test uses a graph designed to have unique paths.
    #[test]
    fn phast_matches_dijkstra_on_unique_path_graph() {
        // Weights are distinct powers of two-ish values: sums are unique.
        let mut b = GraphBuilder::new(8);
        let ws = [3u32, 5, 9, 17, 33, 65, 129];
        for v in 0..7u32 {
            b.add_edge(v, v + 1, ws[v as usize]);
        }
        b.add_edge(0, 7, 500);
        let g = b.build();
        let sources: Vec<Vertex> = (0..8).collect();
        let p = Phast::preprocess(&g);
        assert_eq!(
            reaches_phast(&p, &sources),
            reaches_dijkstra(g.forward(), &sources)
        );
    }

    #[test]
    fn highway_vertices_have_high_reach() {
        let net = RoadNetworkConfig::new(24, 24, 51, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sources: Vec<Vertex> = (0..net.num_vertices() as Vertex).step_by(3).collect();
        let reach = reaches_phast(&p, &sources);
        // Sanity: reaches are bounded by half the diameter-ish scale and
        // at least some vertices (the motorway grid) have large reach.
        let max = *reach.iter().max().unwrap();
        assert!(max > 0);
        let big = reach.iter().filter(|&&r| r * 3 > max).count();
        assert!(big > 0);
        assert!(
            big * 2 < net.num_vertices(),
            "too many high-reach vertices: {big}"
        );
    }

    #[test]
    fn reach_pruned_queries_match_plain_dijkstra() {
        use phast_dijkstra::dijkstra::shortest_paths;
        let net = RoadNetworkConfig::new(16, 16, 53, Metric::TravelTime).build();
        let g = &net.graph;
        let n = g.num_vertices() as u32;
        let p = Phast::preprocess(g);
        let all: Vec<Vertex> = (0..n).collect();
        let reach = reaches_phast(&p, &all);
        let rq = ReachQuery::new(g.forward(), reach);
        for s in (0..n).step_by(31) {
            let want = shortest_paths(g.forward(), s).dist;
            for t in (0..n).step_by(17) {
                let (got, _) = rq.query(s, t);
                assert_eq!(got, Some(want[t as usize]), "{s} -> {t}");
            }
        }
    }

    #[test]
    fn reach_pruning_shrinks_long_range_searches() {
        use phast_dijkstra::dijkstra::shortest_paths;
        let net = RoadNetworkConfig::new(28, 28, 54, Metric::TravelTime).build();
        let g = &net.graph;
        let n = g.num_vertices() as u32;
        let p = Phast::preprocess(g);
        let all: Vec<Vertex> = (0..n).collect();
        let reach = reaches_phast(&p, &all);
        let rq = ReachQuery::new(g.forward(), reach);
        let mut pruned_total = 0usize;
        let mut plain_total = 0usize;
        for i in 0..12u32 {
            let (s, t) = (i * 67 % n, (n - 1) - (i * 41 % n));
            let (d, settled) = rq.query(s, t);
            let plain = shortest_paths(g.forward(), s);
            assert_eq!(d, Some(plain.dist[t as usize]));
            pruned_total += settled;
            plain_total += plain.scanned;
        }
        assert!(
            pruned_total * 2 < plain_total,
            "reach pruning settled {pruned_total} vs {plain_total} plain"
        );
    }

    #[test]
    fn reach_query_handles_degenerate_pairs() {
        let net = RoadNetworkConfig::new(8, 8, 55, Metric::TravelTime).build();
        let g = &net.graph;
        let p = Phast::preprocess(g);
        let all: Vec<Vertex> = (0..g.num_vertices() as u32).collect();
        let reach = reaches_phast(&p, &all);
        let rq = ReachQuery::new(g.forward(), reach);
        assert_eq!(rq.query(5, 5).0, Some(0));
    }

    #[test]
    fn reaches_monotone_in_source_set() {
        let net = RoadNetworkConfig::new(10, 10, 52, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let few: Vec<Vertex> = (0..10).collect();
        let many: Vec<Vertex> = (0..net.num_vertices() as Vertex).collect();
        let a = reaches_phast(&p, &few);
        let b = reaches_phast(&p, &many);
        assert!(a.iter().zip(&b).all(|(x, y)| x <= y));
    }
}
