//! Graph partitions into cells, the substrate arc flags need.
//!
//! The paper cites dedicated partitioners \[24–27\] that produce balanced
//! cells with few boundary vertices in minutes. Two lightweight equivalents
//! are provided (documented in `DESIGN.md`): a geometric grid partition —
//! road networks come with coordinates — and a BFS region-growing fallback
//! for graphs without geometry. Both produce what arc flags care about:
//! contiguous cells whose boundary-vertex count is small relative to `n`.

use phast_graph::{Graph, Vertex};
use std::collections::VecDeque;

/// A partition of the vertices into `num_cells` cells.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `cell_of[v]`: the cell of vertex `v`.
    pub cell_of: Vec<u32>,
    /// Number of cells (cells may be empty).
    pub num_cells: usize,
}

impl Partition {
    /// Wraps a raw assignment.
    pub fn new(cell_of: Vec<u32>, num_cells: usize) -> Self {
        assert!(
            cell_of.iter().all(|&c| (c as usize) < num_cells),
            "cell ID out of range"
        );
        Self { cell_of, num_cells }
    }

    /// Geometric grid partition: the bounding box of `coords` is cut into
    /// `cells_x × cells_y` tiles.
    pub fn grid(coords: &[(f32, f32)], cells_x: u32, cells_y: u32) -> Self {
        assert!(cells_x >= 1 && cells_y >= 1);
        assert!(!coords.is_empty(), "need coordinates");
        let (mut min_x, mut min_y) = (f32::INFINITY, f32::INFINITY);
        let (mut max_x, mut max_y) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
        for &(x, y) in coords {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        let spanx = (max_x - min_x).max(f32::EPSILON);
        let spany = (max_y - min_y).max(f32::EPSILON);
        let cell_of = coords
            .iter()
            .map(|&(x, y)| {
                let cx = (((x - min_x) / spanx) * cells_x as f32).min(cells_x as f32 - 1.0) as u32;
                let cy = (((y - min_y) / spany) * cells_y as f32).min(cells_y as f32 - 1.0) as u32;
                cy * cells_x + cx
            })
            .collect();
        Self::new(cell_of, (cells_x * cells_y) as usize)
    }

    /// BFS region growing: grows `num_cells` roughly equal-sized contiguous
    /// cells from evenly spread seeds (undirected BFS).
    pub fn bfs_grow(g: &Graph, num_cells: usize) -> Self {
        let n = g.num_vertices();
        assert!(num_cells >= 1);
        let target = n.div_ceil(num_cells);
        const UNASSIGNED: u32 = u32::MAX;
        let mut cell_of = vec![UNASSIGNED; n];
        let mut next_cell = 0u32;
        let mut queue = VecDeque::new();
        for root in 0..n as Vertex {
            if cell_of[root as usize] != UNASSIGNED {
                continue;
            }
            let cell = next_cell.min(num_cells as u32 - 1);
            next_cell += 1;
            let mut size = 0usize;
            queue.clear();
            queue.push_back(root);
            cell_of[root as usize] = cell;
            while let Some(v) = queue.pop_front() {
                size += 1;
                if size >= target {
                    break;
                }
                for a in g.out(v) {
                    if cell_of[a.head as usize] == UNASSIGNED {
                        cell_of[a.head as usize] = cell;
                        queue.push_back(a.head);
                    }
                }
                for a in g.incoming(v) {
                    if cell_of[a.tail as usize] == UNASSIGNED {
                        cell_of[a.tail as usize] = cell;
                        queue.push_back(a.tail);
                    }
                }
            }
            // Frontier vertices already labeled stay in this cell.
        }
        Self::new(cell_of, num_cells.min(next_cell.max(1) as usize).max(1))
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.cell_of.len()
    }

    /// True for the empty partition.
    pub fn is_empty(&self) -> bool {
        self.cell_of.is_empty()
    }

    /// Cell of `v`.
    #[inline]
    pub fn cell(&self, v: Vertex) -> u32 {
        self.cell_of[v as usize]
    }

    /// Cell sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_cells];
        for &c in &self.cell_of {
            s[c as usize] += 1;
        }
        s
    }

    /// The *boundary vertices* of each cell: `v` is a boundary vertex of
    /// its cell if some arc from another cell enters `v`. These are the
    /// sources of the reverse trees arc-flag preprocessing builds.
    pub fn boundary_vertices(&self, g: &Graph) -> Vec<Vec<Vertex>> {
        let mut out = vec![Vec::new(); self.num_cells];
        for v in 0..g.num_vertices() as Vertex {
            let cv = self.cell(v);
            let is_boundary = g.incoming(v).iter().any(|a| self.cell(a.tail) != cv);
            if is_boundary {
                out[cv as usize].push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn grid_partition_covers_and_balances() {
        let net = RoadNetworkConfig::new(20, 20, 5, Metric::TravelTime).build();
        let p = Partition::grid(&net.coords, 4, 4);
        assert_eq!(p.len(), net.num_vertices());
        assert_eq!(p.num_cells, 16);
        let sizes = p.sizes();
        let nonempty = sizes.iter().filter(|&&s| s > 0).count();
        assert!(nonempty >= 12, "grid cells unexpectedly empty: {sizes:?}");
    }

    #[test]
    fn boundary_vertices_are_a_small_fraction() {
        let net = RoadNetworkConfig::new(32, 32, 6, Metric::TravelTime).build();
        let p = Partition::grid(&net.coords, 4, 4);
        let boundary: usize = p.boundary_vertices(&net.graph).iter().map(Vec::len).sum();
        let n = net.num_vertices();
        assert!(boundary * 2 < n, "boundary {boundary} too large for n={n}");
        assert!(boundary > 0);
    }

    #[test]
    fn bfs_grow_covers_all_vertices() {
        let net = RoadNetworkConfig::new(16, 16, 7, Metric::TravelTime).build();
        let p = Partition::bfs_grow(&net.graph, 8);
        assert_eq!(p.len(), net.num_vertices());
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), net.num_vertices());
        assert!(sizes.iter().all(|&s| s > 0), "empty cell: {sizes:?}");
    }

    #[test]
    fn boundary_vertex_definition() {
        // Two 2-cliques joined by one arc into vertex 2: only 2 is boundary.
        let mut b = phast_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(2, 3, 1).add_arc(1, 2, 5);
        let g = b.build();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let bv = p.boundary_vertices(&g);
        assert_eq!(bv[0], Vec::<Vertex>::new());
        assert_eq!(bv[1], vec![2]);
    }

    #[test]
    #[should_panic(expected = "cell ID out of range")]
    fn rejects_bad_cell_ids() {
        Partition::new(vec![0, 5], 2);
    }

    #[test]
    fn single_cell_partition_has_no_boundary() {
        let net = RoadNetworkConfig::new(6, 6, 8, Metric::TravelTime).build();
        let p = Partition::grid(&net.coords, 1, 1);
        assert_eq!(p.num_cells, 1);
        let bv = p.boundary_vertices(&net.graph);
        assert!(bv[0].is_empty(), "one cell cannot have boundary vertices");
    }

    #[test]
    fn more_cells_than_vertices() {
        let net = RoadNetworkConfig::new(3, 3, 9, Metric::TravelTime).build();
        let p = Partition::bfs_grow(&net.graph, 100);
        assert_eq!(p.len(), net.num_vertices());
        assert!(p.num_cells <= net.num_vertices());
    }
}
