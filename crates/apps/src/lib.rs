//! Applications of PHAST (Section VII-B of the paper).
//!
//! Everything here needs *many* shortest path trees, which is exactly the
//! workload PHAST accelerates by orders of magnitude:
//!
//! * [`diameter`] — the longest shortest path, via `n` tree computations;
//! * [`arcflags`] — arc-flag preprocessing for point-to-point queries,
//!   driven by reverse trees from cell-boundary vertices (plus the
//!   [`partition`] substrate that produces the cells);
//! * [`reach`] — exact vertex reaches, via trees with bottom-up height
//!   aggregation;
//! * [`betweenness`] — exact betweenness centrality (Brandes), with the
//!   shortest-path DAG derived from PHAST distance labels.
//!
//! Each application has a Dijkstra-based reference implementation used both
//! as the paper's baseline and as a correctness oracle in tests.

pub mod arcflags;
pub mod betweenness;
pub mod diameter;
pub mod partition;
pub mod reach;

pub use arcflags::{ArcFlags, BidirectionalArcFlags};
pub use betweenness::{
    betweenness_approx, betweenness_dijkstra, betweenness_phast, edge_betweenness_phast,
};
pub use diameter::{diameter_dijkstra, diameter_phast};
pub use partition::Partition;
pub use reach::{reaches_dijkstra, reaches_phast, ReachQuery};
