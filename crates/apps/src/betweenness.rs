//! Exact betweenness centrality (Section VII-B.c).
//!
//! `c_B(v) = Σ_{s≠v≠t} σ_st(v) / σ_st`, where `σ_st` counts shortest
//! `s`-`t` paths. Brandes' algorithm \[28\] computes it with one
//! single-source computation per source: a forward pass accumulates path
//! counts `σ` in non-decreasing distance order, a backward pass accumulates
//! dependencies `δ(v) = Σ_{w: v ∈ pred(w)} σ(v)/σ(w) · (1 + δ(w))`.
//!
//! Replacing the Dijkstra in Brandes by PHAST: the sweep yields all
//! distance labels, after which both passes are plain scans over the
//! original arc list testing *tightness* (`d(u) + w = d(v)`) — no priority
//! queue at all. Path counts use `f64` (exact for counts below 2^53, the
//! standard choice for betweenness implementations).

use phast_core::Phast;
use phast_dijkstra::dijkstra::Dijkstra;
use phast_graph::{Csr, Vertex, INF};
use phast_pq::FourHeap;
use rayon::prelude::*;

/// Accumulates one source's dependency contributions into `acc` given the
/// distance labels and the incoming-arc CSR (in the same indexing as the
/// labels), with vertices enumerable in distance order. Allocation-free in
/// the inner loops — this runs once per (source, vertex) pair, i.e. `n²`
/// times over an exact computation.
fn accumulate_source(
    acc: &mut [f64],
    order: &[Vertex],  // reached vertices by increasing distance
    dist: &[u32],      // labels (any consistent indexing)
    incoming: &phast_graph::csr::ReverseCsr,
    s_idx: Vertex,
    translate: impl Fn(Vertex) -> usize, // index into acc
) {
    let n = dist.len();
    let mut sigma = vec![0f64; n];
    let mut delta = vec![0f64; n];
    sigma[s_idx as usize] = 1.0;
    // Forward: path counts in non-decreasing distance order. Requires
    // strictly positive weights (zero-weight plateaus would need a
    // stable-order fixpoint; documented contract).
    for &v in order {
        if v == s_idx {
            continue;
        }
        let dv = dist[v as usize];
        let mut s = 0f64;
        for a in incoming.incoming(v) {
            let du = dist[a.tail as usize];
            if du < INF && du + a.weight == dv {
                s += sigma[a.tail as usize];
            }
        }
        sigma[v as usize] = s;
    }
    // Backward: dependencies in non-increasing distance order.
    for &v in order.iter().rev() {
        let dv = dist[v as usize];
        if sigma[v as usize] == 0.0 {
            continue;
        }
        for a in incoming.incoming(v) {
            let du = dist[a.tail as usize];
            if du < INF && du + a.weight == dv && sigma[a.tail as usize] > 0.0 {
                delta[a.tail as usize] +=
                    sigma[a.tail as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    for &v in order {
        if v != s_idx {
            acc[translate(v)] += delta[v as usize];
        }
    }
}

/// Exact betweenness with PHAST distance computations (one sweep per
/// source). Requires strictly positive arc weights.
pub fn betweenness_phast(p: &Phast, sources: &[Vertex]) -> Vec<f64> {
    let n = p.num_vertices();
    let partials: Vec<Vec<f64>> = sources
        .par_chunks(sources.len().div_ceil(rayon::current_num_threads()).max(1))
        .map(|chunk| {
            let mut engine = p.engine();
            let mut acc = vec![0f64; n];
            for &s in chunk {
                let labels = engine.distances_sweep(s).to_vec();
                // Vertices by increasing distance (counting-sort-free: the
                // label range is data-dependent, so sort indices).
                let mut order: Vec<Vertex> = (0..n as Vertex)
                    .filter(|&v| labels[v as usize] < INF)
                    .collect();
                order.sort_by_key(|&v| labels[v as usize]);
                let s_sweep = p.to_sweep(s);
                accumulate_source(&mut acc, &order, &labels, p.orig_incoming(), s_sweep, |v| {
                    p.to_original(v) as usize
                });
            }
            acc
        })
        .collect();
    let mut acc = vec![0f64; n];
    for partial in partials {
        for (a, b) in acc.iter_mut().zip(partial) {
            *a += b;
        }
    }
    acc
}

/// Approximate betweenness by source sampling (Brandes & Pich style — the
/// technique the paper notes PHAST "could also be helpful for
/// accelerating"): runs the exact per-source accumulation for
/// `num_samples` uniformly sampled sources and extrapolates by
/// `n / num_samples`. The estimator is unbiased; error shrinks as
/// `O(1/sqrt(num_samples))`.
pub fn betweenness_approx(p: &Phast, num_samples: usize, seed: u64) -> Vec<f64> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = p.num_vertices();
    let mut all: Vec<Vertex> = (0..n as Vertex).collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(num_samples.min(n).max(1));
    let scale = n as f64 / all.len() as f64;
    let mut acc = betweenness_phast(p, &all);
    for x in &mut acc {
        *x *= scale;
    }
    acc
}

/// The Brandes baseline with Dijkstra distance computations.
pub fn betweenness_dijkstra(g: &Csr, sources: &[Vertex]) -> Vec<f64> {
    let n = g.num_vertices();
    let reverse = g.reversed();
    let mut acc = vec![0f64; n];
    let mut solver = Dijkstra::<FourHeap>::new(g);
    for &s in sources {
        let (dist, _, _) = solver.run_in_place(s);
        let dist = dist.to_vec();
        let mut order: Vec<Vertex> = (0..n as Vertex)
            .filter(|&v| dist[v as usize] < INF)
            .collect();
        order.sort_by_key(|&v| dist[v as usize]);
        accumulate_source(&mut acc, &order, &dist, &reverse, s, |v| v as usize);
    }
    acc
}

/// Exact **edge** betweenness (`c_B(e) = Σ σ_st(e)/σ_st`), indexed by the
/// arc's position in `g`'s forward CSR. Uses PHAST for the distance
/// computations, then the same two Brandes passes with per-arc
/// accumulation: a tight arc `(u, v)` receives `σ(u)/σ(v) · (1 + δ(v))`
/// from each source. Requires strictly positive weights.
pub fn edge_betweenness_phast(
    g: &phast_graph::Graph,
    p: &Phast,
    sources: &[Vertex],
) -> Vec<f64> {
    assert_eq!(g.num_vertices(), p.num_vertices());
    let n = g.num_vertices();
    // Reverse adjacency of g carrying each incoming arc's original forward
    // index: (head, tail, weight, forward index), grouped by head.
    let mut rev_list: Vec<(Vertex, Vertex, u32, u32)> = Vec::with_capacity(g.num_arcs());
    let mut arc_idx = 0u32;
    for u in 0..n as Vertex {
        for a in g.out(u) {
            rev_list.push((a.head, u, a.weight, arc_idx));
            arc_idx += 1;
        }
    }
    rev_list.sort_unstable_by_key(|&(head, ..)| head);
    let mut rev_first = vec![0u32; n + 1];
    for &(head, ..) in &rev_list {
        rev_first[head as usize + 1] += 1;
    }
    for v in 0..n {
        rev_first[v + 1] += rev_first[v];
    }

    let partials: Vec<Vec<f64>> = sources
        .par_chunks(sources.len().div_ceil(rayon::current_num_threads()).max(1))
        .map(|chunk| {
            let mut engine = p.engine();
            let mut acc = vec![0f64; g.num_arcs()];
            let mut sigma = vec![0f64; n];
            let mut delta = vec![0f64; n];
            for &s in chunk {
                let dist = engine.distances(s); // original vertex order
                let mut order: Vec<Vertex> = (0..n as Vertex)
                    .filter(|&v| dist[v as usize] < INF)
                    .collect();
                order.sort_by_key(|&v| dist[v as usize]);
                sigma.fill(0.0);
                delta.fill(0.0);
                sigma[s as usize] = 1.0;
                for &v in &order {
                    if v == s {
                        continue;
                    }
                    let dv = dist[v as usize];
                    let mut count = 0f64;
                    for &(_, u, w, _) in &rev_list
                        [rev_first[v as usize] as usize..rev_first[v as usize + 1] as usize]
                    {
                        if dist[u as usize] < INF && dist[u as usize] + w == dv {
                            count += sigma[u as usize];
                        }
                    }
                    sigma[v as usize] = count;
                }
                for &v in order.iter().rev() {
                    let dv = dist[v as usize];
                    if sigma[v as usize] == 0.0 {
                        continue;
                    }
                    for &(_, u, w, idx) in &rev_list
                        [rev_first[v as usize] as usize..rev_first[v as usize + 1] as usize]
                    {
                        if dist[u as usize] < INF
                            && dist[u as usize] + w == dv
                            && sigma[u as usize] > 0.0
                        {
                            let share =
                                sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                            acc[idx as usize] += share;
                            delta[u as usize] += share;
                        }
                    }
                }
            }
            acc
        })
        .collect();
    let mut acc = vec![0f64; g.num_arcs()];
    for partial in partials {
        for (a, b) in acc.iter_mut().zip(partial) {
            *a += b;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::GraphBuilder;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-6)
    }

    #[test]
    fn path_graph_betweenness() {
        // Undirected path 0-1-2-3-4: interior vertices carry all through
        // traffic. For vertex 1: pairs (0,2),(0,3),(0,4),(2,0),(3,0),(4,0).
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 7);
        }
        let g = b.build();
        let sources: Vec<Vertex> = (0..5).collect();
        let bc = betweenness_dijkstra(g.forward(), &sources);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[1], 6.0);
        assert_eq!(bc[2], 8.0);
        assert_eq!(bc[3], 6.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5u32 {
            b.add_edge(0, leaf, 3);
        }
        let g = b.build();
        let sources: Vec<Vertex> = (0..5).collect();
        let bc = betweenness_dijkstra(g.forward(), &sources);
        // 4 leaves, 4*3 ordered pairs through the center.
        assert_eq!(bc[0], 12.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn equal_path_splitting() {
        // Diamond: 0->1->3 and 0->2->3 with equal weights; σ_03 = 2, each
        // middle vertex carries 1/2.
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1, 1)
            .add_arc(0, 2, 1)
            .add_arc(1, 3, 1)
            .add_arc(2, 3, 1);
        let g = b.build();
        let sources: Vec<Vertex> = (0..4).collect();
        let bc = betweenness_dijkstra(g.forward(), &sources);
        assert_eq!(bc[1], 0.5);
        assert_eq!(bc[2], 0.5);
    }

    #[test]
    fn phast_matches_dijkstra_on_road_network() {
        let net = RoadNetworkConfig::new(10, 10, 61, Metric::TravelTime).build();
        let sources: Vec<Vertex> = (0..net.num_vertices() as Vertex).collect();
        let p = Phast::preprocess(&net.graph);
        let a = betweenness_phast(&p, &sources);
        let b = betweenness_dijkstra(net.graph.forward(), &sources);
        assert!(close(&a, &b), "betweenness mismatch");
    }

    #[test]
    fn phast_matches_dijkstra_on_random_digraphs() {
        for seed in 0..4 {
            let g = strongly_connected_gnm(25, 60, 15, seed);
            let sources: Vec<Vertex> = (0..25).collect();
            let p = Phast::preprocess(&g);
            let a = betweenness_phast(&p, &sources);
            let b = betweenness_dijkstra(g.forward(), &sources);
            assert!(close(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn subset_of_sources_is_a_partial_sum() {
        let g = strongly_connected_gnm(20, 40, 10, 9);
        let all: Vec<Vertex> = (0..20).collect();
        let half: Vec<Vertex> = (0..10).collect();
        let rest: Vec<Vertex> = (10..20).collect();
        let a = betweenness_dijkstra(g.forward(), &all);
        let h = betweenness_dijkstra(g.forward(), &half);
        let r = betweenness_dijkstra(g.forward(), &rest);
        let sum: Vec<f64> = h.iter().zip(&r).map(|(x, y)| x + y).collect();
        assert!(close(&a, &sum));
    }
}

#[cfg(test)]
mod approx_tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::Vertex;

    #[test]
    fn sampled_betweenness_tracks_exact_ranking() {
        let net = RoadNetworkConfig::new(12, 12, 71, Metric::TravelTime).build();
        let n = net.graph.num_vertices();
        let p = Phast::preprocess(&net.graph);
        let all: Vec<Vertex> = (0..n as Vertex).collect();
        let exact = betweenness_phast(&p, &all);
        let approx = betweenness_approx(&p, n / 2, 3);
        // The estimator is unbiased; with half the sources sampled the top
        // exact vertex must be near the top of the approximation.
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(v, _)| v)
            .unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| approx[b].partial_cmp(&approx[a]).unwrap());
        let pos = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(pos < n / 10, "top exact vertex ranked {pos} in approximation");
        // Total mass is preserved in expectation; allow generous slack.
        let sum_e: f64 = exact.iter().sum();
        let sum_a: f64 = approx.iter().sum();
        assert!((sum_a - sum_e).abs() / sum_e < 0.35, "{sum_a} vs {sum_e}");
    }

    #[test]
    fn full_sample_equals_exact() {
        let net = RoadNetworkConfig::new(8, 8, 72, Metric::TravelTime).build();
        let n = net.graph.num_vertices();
        let p = Phast::preprocess(&net.graph);
        let all: Vec<Vertex> = (0..n as Vertex).collect();
        let exact = betweenness_phast(&p, &all);
        let approx = betweenness_approx(&p, n, 0);
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::{GraphBuilder, Vertex};

    #[test]
    fn path_graph_edge_betweenness() {
        // Undirected path 0-1-2: each directed arc carries two ordered
        // pairs' worth of shortest paths.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5).add_edge(1, 2, 5);
        let g = b.build();
        let p = Phast::preprocess(&g);
        let sources: Vec<Vertex> = (0..3).collect();
        let eb = edge_betweenness_phast(&g, &p, &sources);
        assert_eq!(eb.len(), g.num_arcs());
        // Every arc lies on exactly 2 ordered shortest paths.
        for (i, &c) in eb.iter().enumerate() {
            assert!((c - 2.0).abs() < 1e-9, "arc {i}: {c}");
        }
    }

    #[test]
    fn edge_betweenness_sums_to_total_path_lengths() {
        // Σ_e c_B(e) = Σ_{s≠t reachable} (#arcs on the chosen-path DAG
        // weighted by split shares) = Σ_st (expected path hop count), which
        // must also equal Σ_v c_B(v) + (#ordered reachable pairs).
        let net = RoadNetworkConfig::new(7, 7, 63, Metric::TravelTime).build();
        let g = &net.graph;
        let n = g.num_vertices();
        let p = Phast::preprocess(g);
        let sources: Vec<Vertex> = (0..n as Vertex).collect();
        let eb = edge_betweenness_phast(g, &p, &sources);
        let vb = betweenness_phast(&p, &sources);
        let sum_e: f64 = eb.iter().sum();
        let sum_v: f64 = vb.iter().sum();
        let pairs = (n * (n - 1)) as f64; // strongly connected
        assert!(
            (sum_e - (sum_v + pairs)).abs() / sum_e < 1e-9,
            "Σe {sum_e} vs Σv {sum_v} + pairs {pairs}"
        );
    }

    #[test]
    fn bridge_arc_dominates() {
        // Two triangles joined by a single bridge: the bridge carries all
        // 3x3 cross pairs in each direction.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(2, 0, 1);
        b.add_edge(3, 4, 1).add_edge(4, 5, 1).add_edge(5, 3, 1);
        b.add_edge(2, 3, 1); // bridge
        let g = b.build();
        let p = Phast::preprocess(&g);
        let sources: Vec<Vertex> = (0..6).collect();
        let eb = edge_betweenness_phast(&g, &p, &sources);
        // Locate the bridge arc 2 -> 3.
        let mut idx = 0usize;
        let mut bridge = None;
        for u in 0..6u32 {
            for a in g.out(u) {
                if u == 2 && a.head == 3 {
                    bridge = Some(idx);
                }
                idx += 1;
            }
        }
        let bridge = bridge.expect("bridge arc exists");
        assert_eq!(eb[bridge], 9.0, "3x3 ordered pairs cross the bridge");
        let max = eb.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(max, 9.0);
    }
}
