//! Graph diameter (Section VII-B.a).
//!
//! "The diameter of a graph `G` is defined by the longest shortest path in
//! `G`. Its exact value can be computed by building `n` shortest path
//! trees. PHAST can easily do it by making each core keep track of the
//! maximum label it encounters."

use phast_core::{par_trees, Phast};
use phast_dijkstra::many_trees;
use phast_graph::{Csr, Vertex, Weight, INF};
use phast_pq::FourHeap;

/// Exact diameter over the given sources (pass all vertices for the true
/// diameter; a sample gives a lower bound). Returns `None` when no source
/// reaches anything.
pub fn diameter_phast(p: &Phast, sources: &[Vertex]) -> Option<Weight> {
    par_trees(p, sources, |_, engine| {
        engine
            .labels()
            .iter()
            .copied()
            .filter(|&d| d < INF)
            .max()
            .unwrap_or(0)
    })
    .into_iter()
    .max()
}

/// The Dijkstra baseline ("one tree per core").
pub fn diameter_dijkstra(g: &Csr, sources: &[Vertex]) -> Option<Weight> {
    many_trees::<FourHeap, _, _>(g, sources, |_, dist, _| {
        dist.iter().copied().filter(|&d| d < INF).max().unwrap_or(0)
    })
    .into_iter()
    .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::GraphBuilder;

    #[test]
    fn path_graph_diameter() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 10);
        }
        let g = b.build();
        let sources: Vec<Vertex> = (0..5).collect();
        assert_eq!(diameter_dijkstra(g.forward(), &sources), Some(40));
        let p = Phast::preprocess(&g);
        assert_eq!(diameter_phast(&p, &sources), Some(40));
    }

    #[test]
    fn phast_matches_dijkstra_on_road_network() {
        let net = RoadNetworkConfig::new(12, 12, 31, Metric::TravelTime).build();
        let sources: Vec<Vertex> = (0..net.graph.num_vertices() as Vertex).collect();
        let p = Phast::preprocess(&net.graph);
        assert_eq!(
            diameter_phast(&p, &sources),
            diameter_dijkstra(net.graph.forward(), &sources)
        );
    }

    #[test]
    fn phast_matches_dijkstra_on_random_digraphs() {
        for seed in 0..5 {
            let g = strongly_connected_gnm(30, 70, 25, seed);
            let sources: Vec<Vertex> = (0..30).collect();
            let p = Phast::preprocess(&g);
            assert_eq!(
                diameter_phast(&p, &sources),
                diameter_dijkstra(g.forward(), &sources),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_sources() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(diameter_dijkstra(g.forward(), &[]), None);
    }
}
