//! `phast-serve` — a batching query service over the PHAST engines.
//!
//! The paper's central throughput lever is *batching*: sweeping `k`
//! sources at once amortizes the `G↓` scan, so time-per-tree drops by
//! roughly 4× at `k = 16` (Table II). Every engine in this workspace is a
//! library call, though — nothing converts concurrent, independent
//! requests into those batched sweeps. This crate is that conversion:
//!
//! * [`scheduler`] — the embeddable service. Incoming requests accumulate
//!   in a bounded admission queue; workers drain them after a configurable
//!   *batch window* into [`MultiTreeEngine`] sweeps of width 4/8/16
//!   (padding short batches), degrading to a single scalar sweep — or a
//!   bidirectional CH query for a lone point-to-point request — when the
//!   window closes with one request. Many-to-many `matrix` requests run
//!   on their own rung: an RPHAST target selection (cached per worker
//!   across repeated target lists) restricts the sweep to the targets'
//!   downward closure, k sources per sweep (DESIGN.md §13).
//! * [`protocol`] — a line-delimited JSON protocol with typed error
//!   replies (`malformed`, `bad_request`, `queue_full`,
//!   `deadline_exceeded`, `shutdown`, `internal`); a malformed line never
//!   tears down a connection.
//! * [`server`] — a std-only TCP front end (`std::net::TcpListener`, one
//!   thread per connection) exposed as `phast_cli serve`, hardened
//!   against hostile clients: bounded concurrent connections (typed
//!   `busy` refusal), per-connection I/O timeouts (slowloris reaping), a
//!   hard request-line byte cap, and forced connection close on
//!   shutdown.
//! * [`overload`] — pre-admission load shedding: queue-depth and
//!   queue-latency signals shed bursts with typed
//!   `overloaded{retry_after_ms}` replies before deadlines blow.
//! * [`conn`] — the connection registry and the bounded line reader
//!   behind the server hardening.
//! * [`client`] — a small blocking client used by the `loadgen` bench
//!   binary and the integration tests; supports connect/read/write
//!   timeouts, typed `transport` errors, and bounded retry with
//!   exponential backoff + jitter that honors `retry_after_ms`.
//! * [`stats`] — service-level counters (requests, batches, mean batch
//!   occupancy, rejects, sheds, refusals, timeouts, deadline misses)
//!   plus the aggregated per-batch [`QueryStats`], exported through the
//!   `phast-obs` [`Report`] schema.
//! * [`watch`] — a background metric customizer with a guarded rollout
//!   pipeline: polls a weights file, runs the `phast-metrics`
//!   customization pass off the serving path, canaries the candidate
//!   against reference Dijkstra, and only then publishes through
//!   [`Service::swap_epoch`](scheduler::Service::swap_epoch) — queries
//!   keep flowing on the old metric until the instant the new epoch is
//!   published (zero downtime, `metric_swaps`/`swap_latency_us`
//!   counters). After the publish a configurable guard window watches
//!   service health and auto-rolls-back through
//!   [`Service::rollback_epoch`](scheduler::Service::rollback_epoch)
//!   (`canary_failures`/`quarantined_metrics`/`epoch_rollbacks`/
//!   `guard_trips` counters).
//!
//! ```no_run
//! use phast_serve::{Service, ServeConfig, server::Server};
//! use phast_core::HeteroQuery;
//! use phast_graph::gen::{Metric, RoadNetworkConfig};
//!
//! let net = RoadNetworkConfig::new(20, 20, 1, Metric::TravelTime).build();
//! let service = Service::for_graph(&net.graph, ServeConfig::default());
//! // Embedded use: call the scheduler directly...
//! let dist = service.call(HeteroQuery::Tree { source: 0 }, None).unwrap();
//! // ...or put the TCP front end in front of it.
//! let srv = Server::spawn(service, "127.0.0.1:0").unwrap();
//! println!("listening on {}", srv.local_addr());
//! srv.shutdown();
//! ```
//!
//! [`MultiTreeEngine`]: phast_core::MultiTreeEngine
//! [`QueryStats`]: phast_obs::QueryStats
//! [`Report`]: phast_obs::Report

pub mod client;
pub mod conn;
pub mod overload;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod watch;

pub use client::{Client, ClientConfig};
pub use overload::LoadTracker;
pub use protocol::{ErrorKind, Op, Request, ServeError};
pub use scheduler::{BatchRunner, MetricEpoch, ServeConfig, Service, SELECTION_CACHE_CAPACITY};
pub use server::Server;
pub use stats::ServiceStats;
pub use watch::{check_guard, poll_metric_file, MetricWatcher, WatchConfig, WatchReport, WatchState};
