//! The batching scheduler: a bounded admission queue, a batch window, and
//! a worker pool draining into `k`-trees-per-sweep engines.
//!
//! ## Invariants
//!
//! * **Bounded admission.** [`Service::submit`] never blocks: a full
//!   queue rejects with [`ErrorKind::QueueFull`]; a closed service
//!   rejects with [`ErrorKind::Shutdown`]. Backpressure is the caller's
//!   signal, not a hidden stall.
//! * **Load shedding.** Before the hard capacity backstop, a queue at or
//!   past [`ServeConfig::shed_queue_depth`] (or whose smoothed wait
//!   exceeds [`ServeConfig::shed_wait`]) sheds new submissions with
//!   [`ErrorKind::Overloaded`] and a latency-derived `retry_after_ms`
//!   hint — refusing early beats queuing until deadlines blow (see
//!   [`crate::overload`]).
//! * **Window, then drain.** A worker adopts the queue's head, waits at
//!   most [`ServeConfig::window`] for companions (leaving early when the
//!   queue reaches the maximum width), then drains up to
//!   [`ServeConfig::max_k`] requests as one batch.
//! * **Degradation ladder.** A batch of `r` requests runs on the
//!   narrowest configured engine width `>= r` (by default 4 / 8 / 16,
//!   padded with duplicate lanes). A batch of one degrades further: a
//!   lone point-to-point request runs a bidirectional CH query, anything
//!   else a scalar single-tree sweep. Every rung computes exact
//!   distances, so the ladder is invisible in the answers.
//! * **Deadlines.** A request carrying a deadline that expires before its
//!   batch forms is answered with [`ErrorKind::DeadlineExceeded`] and
//!   excluded from the batch; once computation starts the answer is
//!   always delivered.
//! * **Graceful shutdown.** [`Service::shutdown`] stops admissions,
//!   wakes the workers, and joins them only after the queue is drained —
//!   every admitted request receives a reply.
//! * **Supervision.** Batch execution runs under `catch_unwind`. A panic
//!   (engine bug, poisoned input) quarantines the batch — every request
//!   in it receives a typed [`ErrorKind::Internal`] reply instead of a
//!   dropped connection — and the worker discards its possibly-corrupt
//!   engine state and rebuilds it before taking the next batch. The
//!   `worker_restarts` / `quarantined_requests` counters in
//!   [`ServiceStats`] make these events observable.

use crate::overload::LoadTracker;
use crate::protocol::{ErrorKind, ServeError};
use crate::stats::ServiceStats;
use phast_ch::{contract_graph, ChQuery, ContractionConfig, Hierarchy};
use phast_core::simd::MAX_K;
use phast_core::{run_hetero_batch, HeteroAnswer, HeteroQuery, Phast, PhastBuilder};
use phast_graph::{Graph, Vertex, INF};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum requests per batched sweep (`1..=64`); the engine ladder
    /// is every power of two in `{4, 8, 16, ...}` up to this value.
    pub max_k: usize,
    /// How long a worker holds the first request of a batch open for
    /// companions. Zero batches whatever is already queued.
    pub window: Duration,
    /// Admission queue capacity; submissions beyond it are rejected with
    /// [`ErrorKind::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue depth at which submissions are shed with a typed
    /// [`ErrorKind::Overloaded`] reply carrying a `retry_after_ms` hint —
    /// graceful refusal *before* the hard `queue_capacity` backstop.
    /// Set `>= queue_capacity` to disable shedding.
    pub shed_queue_depth: usize,
    /// Optional latency trigger: when the smoothed admission-to-batch
    /// wait exceeds this, submissions are shed even at shallow queue
    /// depths (requests are expensive, not merely numerous). `None`
    /// disables the latency signal.
    pub shed_wait: Option<Duration>,
    /// Maximum concurrent TCP connections the front end admits; one more
    /// is refused with a typed [`ErrorKind::Busy`] reply and closed.
    pub max_conns: usize,
    /// Per-connection socket read/write timeout: a client that stalls a
    /// read or write longer than this is reaped. `Duration::ZERO`
    /// disables the timeouts (not recommended outside tests).
    pub io_timeout: Duration,
    /// Hard cap on one request line's bytes; a longer line is answered
    /// with a typed `malformed` reply and the connection is closed
    /// without buffering the tail.
    pub max_line_bytes: usize,
    /// **Fault-injection hook** (tests and soak runs only): any batch
    /// containing a query with this source panics inside the worker,
    /// exercising the supervision path. `None` — the default, and the
    /// only sensible production value — disables the hook entirely.
    pub panic_on_source: Option<Vertex>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_k: 16,
            window: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            shed_queue_depth: 768,
            shed_wait: None,
            max_conns: 256,
            io_timeout: Duration::from_secs(10),
            max_line_bytes: 256 * 1024,
            panic_on_source: None,
        }
    }
}

impl ServeConfig {
    /// The engine widths this configuration batches into: 4 and 8 where
    /// they fit under `max_k`, then `max_k` itself.
    pub fn width_ladder(&self) -> Vec<usize> {
        let mut ladder: Vec<usize> = [4usize, 8, 16]
            .into_iter()
            .filter(|&w| w < self.max_k)
            .collect();
        ladder.push(self.max_k);
        ladder
    }
}

/// A reply to one scheduled job.
type JobReply = Result<HeteroAnswer, ServeError>;

struct Job {
    query: HeteroQuery,
    deadline: Option<Instant>,
    admitted_at: Instant,
    reply: mpsc::Sender<JobReply>,
}

struct SchedState {
    queue: VecDeque<Job>,
    open: bool,
}

struct Shared {
    phast: Arc<Phast>,
    hierarchy: Option<Arc<Hierarchy>>,
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    stats: ServiceStats,
    load: LoadTracker,
}

/// The embeddable batching service. Cheap to share (`Arc`); the TCP
/// front end in [`crate::server`] is one possible caller, in-process
/// embedding another.
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service over a preprocessed instance. `hierarchy`
    /// (optional) enables the bidirectional-CH rung of the degradation
    /// ladder for lone point-to-point requests.
    pub fn new(
        phast: Arc<Phast>,
        hierarchy: Option<Arc<Hierarchy>>,
        cfg: ServeConfig,
    ) -> Arc<Service> {
        assert!(
            (1..=MAX_K).contains(&cfg.max_k),
            "max_k must be in 1..={MAX_K}"
        );
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.shed_queue_depth > 0, "shed depth must be positive");
        assert!(cfg.max_conns > 0, "need room for at least one connection");
        assert!(cfg.max_line_bytes > 0, "line cap must be positive");
        let shared = Arc::new(Shared {
            phast,
            hierarchy,
            cfg,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            stats: ServiceStats::default(),
            load: LoadTracker::default(),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phast-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(Service {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Convenience constructor: contracts `g`, builds the sweep instance,
    /// and keeps the hierarchy for the point-to-point fallback.
    pub fn for_graph(g: &Graph, cfg: ServeConfig) -> Arc<Service> {
        let h = contract_graph(g, &ContractionConfig::default());
        let p = PhastBuilder::new().build_with_hierarchy(g, &h);
        Service::new(Arc::new(p), Some(Arc::new(h)), cfg)
    }

    /// The instance this service answers queries on.
    pub fn phast(&self) -> &Phast {
        &self.shared.phast
    }

    /// The service-level counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// The latency tracker feeding the overload policy.
    pub fn load(&self) -> &LoadTracker {
        &self.shared.load
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submits a query without blocking. Returns the receiver the reply
    /// will arrive on, or a typed rejection ([`ErrorKind::Overloaded`],
    /// [`ErrorKind::QueueFull`], [`ErrorKind::Shutdown`],
    /// [`ErrorKind::BadRequest`]).
    pub fn submit(
        &self,
        query: HeteroQuery,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<JobReply>, ServeError> {
        self.validate(&query)?;
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            query,
            deadline: deadline.map(|d| now + d),
            admitted_at: now,
            reply: tx,
        };
        {
            let cfg = &self.shared.cfg;
            let mut g = self.shared.state.lock().unwrap();
            if !g.open {
                return Err(ServeError::new(
                    ErrorKind::Shutdown,
                    "service is shutting down",
                ));
            }
            if g.queue.len() >= cfg.queue_capacity {
                self.shared.stats.add_rejected_queue_full(1);
                return Err(ServeError::new(
                    ErrorKind::QueueFull,
                    format!("admission queue at capacity {}", cfg.queue_capacity),
                ));
            }
            // Load shedding happens *before* admission: a shed request
            // never consumed a queue slot, and its retry hint reflects
            // the drain time of what is already queued.
            if let Some(retry_after_ms) = self.shared.load.should_shed(
                g.queue.len(),
                cfg.shed_queue_depth,
                cfg.shed_wait,
            ) {
                self.shared.stats.add_shed_overload(1);
                return Err(ServeError::overloaded(
                    retry_after_ms,
                    format!(
                        "service overloaded ({} queued); retry in ~{retry_after_ms}ms",
                        g.queue.len()
                    ),
                ));
            }
            g.queue.push_back(job);
        }
        self.shared.stats.add_admitted(1);
        self.shared.cv.notify_all();
        Ok(rx)
    }

    /// Submits and blocks until the reply arrives. The optional deadline
    /// is measured from now (admission).
    pub fn call(
        &self,
        query: HeteroQuery,
        deadline: Option<Duration>,
    ) -> Result<HeteroAnswer, ServeError> {
        let rx = self.submit(query, deadline)?;
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServeError::new(
                ErrorKind::Internal,
                "worker dropped the request",
            )),
        }
    }

    fn validate(&self, query: &HeteroQuery) -> Result<(), ServeError> {
        let n = self.shared.phast.num_vertices() as u64;
        let check = |v: u32, what: &str| -> Result<(), ServeError> {
            if u64::from(v) >= n {
                self.shared.stats.add_rejected_invalid(1);
                Err(ServeError::new(
                    ErrorKind::BadRequest,
                    format!("{what} {v} out of range (graph has {n} vertices)"),
                ))
            } else {
                Ok(())
            }
        };
        match query {
            HeteroQuery::Tree { source } => check(*source, "source"),
            HeteroQuery::Many { source, targets } => {
                check(*source, "source")?;
                targets.iter().try_for_each(|&t| check(t, "target"))
            }
            HeteroQuery::Point { source, target } => {
                check(*source, "source")?;
                check(*target, "target")
            }
        }
    }

    /// A synchronous handle on the worker batch-execution path — the
    /// benchable hook. The runner owns the same engine ladder a worker
    /// builds and [`BatchRunner::run`] drives the exact `execute_batch`
    /// code (ladder selection, padding, stats merge) without the queue,
    /// window, or reply channels, so a perf harness can measure the
    /// service's compute path deterministically.
    pub fn batch_runner(&self) -> BatchRunner<'_> {
        BatchRunner {
            shared: &self.shared,
            engines: WorkerEngines::build(&self.shared),
        }
    }

    /// Stops admitting requests, drains every queued job, and joins the
    /// workers. Idempotent; concurrent submissions observe
    /// [`ErrorKind::Shutdown`].
    pub fn shutdown(&self) {
        {
            let mut g = self.shared.state.lock().unwrap();
            g.open = false;
        }
        self.shared.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-worker compute state. Everything in here may be left
/// half-updated by a panic, so the supervision path throws the whole
/// bundle away and rebuilds it from the immutable [`Phast`] instance.
struct WorkerEngines<'p> {
    multi: Vec<phast_core::MultiTreeEngine<'p>>,
    scalar: phast_core::PhastEngine<'p>,
    ch_query: Option<ChQuery<'p>>,
}

impl<'p> WorkerEngines<'p> {
    fn build(shared: &'p Shared) -> Self {
        let phast: &Phast = &shared.phast;
        WorkerEngines {
            multi: shared
                .cfg
                .width_ladder()
                .into_iter()
                .map(|w| phast.multi_engine(w))
                .collect(),
            scalar: phast.engine(),
            ch_query: shared.hierarchy.as_deref().map(ChQuery::new),
        }
    }
}

/// A borrowed engine ladder executing batches synchronously through the
/// scheduler's own batch path (see [`Service::batch_runner`]). Queries
/// must already be in range — the runner sits *below* admission
/// validation, exactly like a worker.
pub struct BatchRunner<'s> {
    shared: &'s Shared,
    engines: WorkerEngines<'s>,
}

impl BatchRunner<'_> {
    /// Executes one batch; element `i` answers `queries[i]`. Batches
    /// larger than the configured `max_k` panic (a worker never forms
    /// one), as does an out-of-range vertex — callers wanting typed
    /// errors go through [`Service::submit`].
    pub fn run(&mut self, queries: &[HeteroQuery]) -> Vec<HeteroAnswer> {
        assert!(
            queries.len() <= self.shared.cfg.max_k,
            "batch of {} exceeds max_k {}",
            queries.len(),
            self.shared.cfg.max_k
        );
        execute_batch(self.shared, queries, &mut self.engines)
    }
}

/// One worker: engines for every ladder width plus the fallbacks, looping
/// over window-formed batches until shutdown empties the queue.
///
/// The loop is its own supervisor: batch execution runs under
/// `catch_unwind`, with the reply senders held *outside* the unwind
/// boundary, so a panicking engine can never strand a request. After a
/// panic the worker answers the quarantined batch with typed errors,
/// rebuilds its engines from the immutable instance, and keeps draining —
/// the thread itself never dies, so no capacity is silently lost.
fn worker_loop(shared: &Shared) {
    let cfg = &shared.cfg;
    let mut engines = WorkerEngines::build(shared);
    loop {
        let batch = {
            let mut g = shared.state.lock().unwrap();
            while g.queue.is_empty() && g.open {
                g = shared.cv.wait(g).unwrap();
            }
            if g.queue.is_empty() {
                return; // closed and drained
            }
            // Hold the window open for companions; leave early when the
            // batch is full or the service is draining for shutdown.
            let window_end = Instant::now() + cfg.window;
            while g.queue.len() < cfg.max_k && g.open {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                let (guard, _) = shared.cv.wait_timeout(g, window_end - now).unwrap();
                g = guard;
            }
            let take = g.queue.len().min(cfg.max_k);
            g.queue.drain(..take).collect::<Vec<Job>>()
        };
        let live = expire_deadlines(shared, batch);
        if live.is_empty() {
            continue;
        }
        let queries: Vec<HeteroQuery> = live.iter().map(|j| j.query.clone()).collect();
        // The unwind closure borrows only the engines and the query
        // values; the `Job`s (and with them the reply channels) stay out
        // here so the quarantine path below can still answer them.
        let exec_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_batch(shared, &queries, &mut engines)
        }));
        shared.load.observe_batch(exec_start.elapsed(), live.len());
        let stats = &shared.stats;
        match outcome {
            Ok(answers) => {
                stats.add_served(live.len() as u64);
                for (job, answer) in live.into_iter().zip(answers) {
                    let _ = job.reply.send(Ok(answer));
                }
            }
            Err(_) => {
                stats.add_worker_restarts(1);
                stats.add_quarantined_requests(live.len() as u64);
                stats.add_failed(live.len() as u64);
                for job in live {
                    let _ = job.reply.send(Err(ServeError::new(
                        ErrorKind::Internal,
                        "worker panicked while executing this batch; request quarantined",
                    )));
                }
                engines = WorkerEngines::build(shared);
            }
        }
    }
}

/// Answers every job whose deadline already expired with a typed error
/// and returns the still-live remainder.
fn expire_deadlines(shared: &Shared, batch: Vec<Job>) -> Vec<Job> {
    let stats = &shared.stats;
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        shared
            .load
            .observe_wait(now.saturating_duration_since(job.admitted_at));
        if job.deadline.is_some_and(|d| d <= now) {
            stats.add_deadline_misses(1);
            stats.add_failed(1);
            let _ = job.reply.send(Err(ServeError::new(
                ErrorKind::DeadlineExceeded,
                "deadline expired before the batch formed",
            )));
        } else {
            live.push(job);
        }
    }
    live
}

/// Computes the answers for one batch; element `i` answers `queries[i]`.
/// May panic (that is the point of the supervision around it); must not
/// touch any reply channel.
fn execute_batch(
    shared: &Shared,
    queries: &[HeteroQuery],
    engines: &mut WorkerEngines<'_>,
) -> Vec<HeteroAnswer> {
    let stats = &shared.stats;
    if let Some(bad) = shared.cfg.panic_on_source {
        if queries.iter().any(|q| q.source() == bad) {
            panic!("injected fault: batch contains poisoned source {bad}");
        }
    }
    match queries {
        [] => Vec::new(),
        [query] => {
            let answer = match (query, engines.ch_query.as_mut()) {
                (&HeteroQuery::Point { source, target }, Some(q)) => {
                    stats.add_p2p_fallbacks(1);
                    HeteroAnswer::Point(q.query(source, target).unwrap_or(INF))
                }
                _ => {
                    stats.add_scalar_fallbacks(1);
                    let dist = engines.scalar.distances(query.source());
                    stats.merge_query(engines.scalar.stats());
                    match query {
                        HeteroQuery::Tree { .. } => HeteroAnswer::Tree(dist),
                        HeteroQuery::Many { targets, .. } => HeteroAnswer::Many(
                            targets.iter().map(|&t| dist[t as usize]).collect(),
                        ),
                        HeteroQuery::Point { target, .. } => {
                            HeteroAnswer::Point(dist[*target as usize])
                        }
                    }
                }
            };
            vec![answer]
        }
        _ => {
            let r = queries.len();
            let engine = engines
                .multi
                .iter_mut()
                .find(|e| e.k() >= r)
                .expect("ladder always ends at max_k");
            let answers = run_hetero_batch(engine, queries);
            stats.merge_query(engine.stats());
            stats.add_batches(1);
            stats.add_batched_requests(r as u64);
            stats.add_multi_batches(1);
            stats.add_padded_lanes((engine.k() - r) as u64);
            answers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn small_service(cfg: ServeConfig) -> (Graph, Arc<Service>) {
        let net = RoadNetworkConfig::new(10, 10, 5, Metric::TravelTime).build();
        let svc = Service::for_graph(&net.graph, cfg);
        (net.graph, svc)
    }

    #[test]
    fn width_ladder_tracks_max_k() {
        let cfg = |max_k| ServeConfig {
            max_k,
            ..ServeConfig::default()
        };
        assert_eq!(cfg(16).width_ladder(), vec![4, 8, 16]);
        assert_eq!(cfg(8).width_ladder(), vec![4, 8]);
        assert_eq!(cfg(6).width_ladder(), vec![4, 6]);
        assert_eq!(cfg(1).width_ladder(), vec![1]);
        assert_eq!(cfg(64).width_ladder(), vec![4, 8, 16, 64]);
    }

    #[test]
    fn single_calls_answer_exactly() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let want = shortest_paths(g.forward(), 3).dist;
        let got = svc.call(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(got, HeteroAnswer::Tree(want.clone()));
        let got = svc
            .call(
                HeteroQuery::Many {
                    source: 3,
                    targets: vec![0, 9],
                },
                None,
            )
            .unwrap();
        assert_eq!(got, HeteroAnswer::Many(vec![want[0], want[9]]));
        let got = svc
            .call(HeteroQuery::Point { source: 3, target: 7 }, None)
            .unwrap();
        assert_eq!(got, HeteroAnswer::Point(want[7]));
        assert_eq!(svc.stats().served(), 3);
    }

    #[test]
    fn concurrent_calls_form_multi_occupancy_batches() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(40),
            workers: 1,
            ..ServeConfig::default()
        });
        let n = g.num_vertices() as u32;
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    svc.call(HeteroQuery::Tree { source: i % n }, None).unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let want = shortest_paths(g.forward(), i as u32 % n).dist;
            assert_eq!(h.join().unwrap(), HeteroAnswer::Tree(want), "request {i}");
        }
        assert!(
            svc.stats().multi_batches() >= 1,
            "8 concurrent requests inside a 40ms window must share a sweep"
        );
        assert!(svc.stats().mean_batch_occupancy() > 1.0);
    }

    #[test]
    fn queue_full_rejects_instead_of_blocking() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(300),
            queue_capacity: 2,
            workers: 1,
            ..ServeConfig::default()
        });
        // The worker adopts the queue head and holds the window open, so
        // back-to-back submissions keep the queue at capacity.
        let _rx1 = svc.submit(HeteroQuery::Tree { source: 0 }, None).unwrap();
        let _rx2 = svc.submit(HeteroQuery::Tree { source: 1 }, None).unwrap();
        let err = svc
            .submit(HeteroQuery::Tree { source: 2 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::QueueFull);
        assert_eq!(svc.stats().rejected_queue_full(), 1);
    }

    #[test]
    fn overload_sheds_before_the_queue_full_backstop() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(300),
            queue_capacity: 8,
            shed_queue_depth: 2,
            workers: 1,
            ..ServeConfig::default()
        });
        // The worker holds the window open, so submissions accumulate.
        let _rx1 = svc.submit(HeteroQuery::Tree { source: 0 }, None).unwrap();
        let _rx2 = svc.submit(HeteroQuery::Tree { source: 1 }, None).unwrap();
        // Depth 2 >= shed threshold 2: shed with a retry hint, while the
        // queue itself (capacity 8) still has room.
        let err = svc
            .submit(HeteroQuery::Tree { source: 2 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(err.retry_after_ms.is_some_and(|ms| ms > 0), "{err:?}");
        assert_eq!(svc.stats().shed_overload(), 1);
        assert_eq!(svc.stats().rejected_queue_full(), 0);
    }

    #[test]
    fn zero_deadline_misses_with_typed_error() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(10),
            ..ServeConfig::default()
        });
        let err = svc
            .call(HeteroQuery::Tree { source: 0 }, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(svc.stats().deadline_misses(), 1);
        // The service keeps serving afterwards.
        svc.call(HeteroQuery::Tree { source: 0 }, None).unwrap();
    }

    #[test]
    fn out_of_range_vertices_are_bad_requests() {
        let (_, svc) = small_service(ServeConfig::default());
        let err = svc
            .call(HeteroQuery::Tree { source: 1_000_000 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let err = svc
            .call(
                HeteroQuery::Many {
                    source: 0,
                    targets: vec![0, 1_000_000],
                },
                None,
            )
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn shutdown_drains_admitted_requests_then_rejects() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(50),
            workers: 1,
            ..ServeConfig::default()
        });
        let rx = svc.submit(HeteroQuery::Tree { source: 4 }, None).unwrap();
        svc.shutdown();
        // The queued request was drained, not dropped.
        let want = shortest_paths(g.forward(), 4).dist;
        assert_eq!(rx.recv().unwrap().unwrap(), HeteroAnswer::Tree(want));
        // New work is rejected with the typed shutdown error.
        let err = svc
            .call(HeteroQuery::Tree { source: 0 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Shutdown);
    }

    #[test]
    fn panicked_batch_is_quarantined_and_the_worker_recovers() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            panic_on_source: Some(7),
            ..ServeConfig::default()
        });
        // The poisoned request gets a typed Internal error, not a hang or
        // a dropped channel.
        let err = svc
            .call(HeteroQuery::Tree { source: 7 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert_eq!(svc.stats().worker_restarts(), 1);
        assert_eq!(svc.stats().quarantined_requests(), 1);
        // The sole worker survived the panic and still answers exactly.
        let want = shortest_paths(g.forward(), 3).dist;
        let got = svc.call(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(got, HeteroAnswer::Tree(want));
        let r = svc.stats().report("t");
        assert_eq!(
            r.get("worker_restarts"),
            Some(&phast_obs::MetricValue::Count(1)),
            "restart counter surfaces through the obs report"
        );
    }

    #[test]
    fn repeated_panics_do_not_wedge_the_service() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 2,
            panic_on_source: Some(0),
            ..ServeConfig::default()
        });
        for _ in 0..5 {
            let err = svc.call(HeteroQuery::Tree { source: 0 }, None).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Internal);
        }
        assert_eq!(svc.stats().worker_restarts(), 5);
        assert_eq!(svc.stats().quarantined_requests(), 5);
        svc.call(HeteroQuery::Tree { source: 1 }, None).unwrap();
        svc.shutdown();
    }

    #[test]
    fn batch_runner_matches_dijkstra_and_counts_batches() {
        let (g, svc) = small_service(ServeConfig::default());
        let n = g.num_vertices() as u32;
        let mut runner = svc.batch_runner();
        let queries: Vec<HeteroQuery> =
            (0..6u32).map(|i| HeteroQuery::Tree { source: i % n }).collect();
        let answers = runner.run(&queries);
        assert_eq!(answers.len(), queries.len());
        for (i, a) in answers.iter().enumerate() {
            let want = shortest_paths(g.forward(), i as u32 % n).dist;
            assert_eq!(*a, HeteroAnswer::Tree(want), "query {i}");
        }
        // The runner went through the real batch path: the multi-tree
        // ladder engaged and the batch counters registered.
        assert_eq!(svc.stats().multi_batches(), 1);
        assert!(svc.stats().mean_batch_occupancy() > 1.0);
        // A lone query takes the scalar rung, exactly like a worker.
        let lone = runner.run(&[HeteroQuery::Tree { source: 2 }]);
        assert_eq!(
            lone,
            vec![HeteroAnswer::Tree(shortest_paths(g.forward(), 2).dist)]
        );
        assert_eq!(
            svc.stats().report("t").get("scalar_fallbacks"),
            Some(&phast_obs::MetricValue::Count(1))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds max_k")]
    fn batch_runner_rejects_oversized_batches() {
        let (_, svc) = small_service(ServeConfig {
            max_k: 4,
            ..ServeConfig::default()
        });
        let queries: Vec<HeteroQuery> =
            (0..5u32).map(|source| HeteroQuery::Tree { source }).collect();
        svc.batch_runner().run(&queries);
    }

    #[test]
    fn lone_p2p_uses_the_ch_rung_and_matches() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let want = shortest_paths(g.forward(), 2).dist;
        let got = svc
            .call(HeteroQuery::Point { source: 2, target: 11 }, None)
            .unwrap();
        assert_eq!(got, HeteroAnswer::Point(want[11]));
        assert_eq!(
            svc.stats().report("t").get("p2p_fallbacks"),
            Some(&phast_obs::MetricValue::Count(1)),
            "a lone point-to-point request takes the bidirectional-CH rung"
        );
    }
}
