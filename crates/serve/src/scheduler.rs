//! The batching scheduler: a bounded admission queue, a batch window, and
//! a worker pool draining into `k`-trees-per-sweep engines.
//!
//! ## Invariants
//!
//! * **Bounded admission.** [`Service::submit`] never blocks: a full
//!   queue rejects with [`ErrorKind::QueueFull`]; a closed service
//!   rejects with [`ErrorKind::Shutdown`]. Backpressure is the caller's
//!   signal, not a hidden stall.
//! * **Load shedding.** Before the hard capacity backstop, a queue at or
//!   past [`ServeConfig::shed_queue_depth`] (or whose smoothed wait
//!   exceeds [`ServeConfig::shed_wait`]) sheds new submissions with
//!   [`ErrorKind::Overloaded`] and a latency-derived `retry_after_ms`
//!   hint — refusing early beats queuing until deadlines blow (see
//!   [`crate::overload`]).
//! * **Window, then drain.** A worker adopts the queue's head, waits at
//!   most [`ServeConfig::window`] for companions (leaving early when the
//!   queue reaches the maximum width), then drains up to
//!   [`ServeConfig::max_k`] requests as one batch.
//! * **Degradation ladder.** A batch of `r` requests runs on the
//!   narrowest configured engine width `>= r` (by default 4 / 8 / 16,
//!   padded with duplicate lanes). A batch of one degrades further: a
//!   lone point-to-point request runs a bidirectional CH query, anything
//!   else a scalar single-tree sweep. Every rung computes exact
//!   distances, so the ladder is invisible in the answers.
//! * **Matrix rung.** A many-to-many `matrix` request is its own batch:
//!   the worker takes it alone (no window wait — the request already
//!   amortizes internally), builds one RPHAST target selection, and runs
//!   every source through `k`-lane restricted sweeps. Each worker keeps a
//!   bounded LRU ([`SELECTION_CACHE_CAPACITY`] entries) of recent
//!   selections keyed by their exact target lists, so matrix requests
//!   cycling over a few hot target fleets skip the build
//!   (`selection_cache_hits`); overflow evicts the least-recently-used
//!   entry (`selection_cache_evictions`), and a quarantined panic clears
//!   the cache with the rest of the engine state.
//! * **Deadlines.** A request carrying a deadline that expires before its
//!   batch forms is answered with [`ErrorKind::DeadlineExceeded`] and
//!   excluded from the batch; once computation starts the answer is
//!   always delivered.
//! * **Metric epochs.** The instance a worker sweeps is not a fixed
//!   field but a [`MetricEpoch`] — an immutable `(id, Phast, Hierarchy)`
//!   snapshot. Every job captures the epoch current at admission and is
//!   executed on exactly that epoch, even if [`Service::swap_epoch`]
//!   publishes a newer one while the job is queued (the
//!   `queries_on_stale_metric` counter makes the overlap observable).
//!   Publishing a swap is a pointer store under the queue lock —
//!   microseconds, measured by `swap_latency_us` — and workers rebuild
//!   their engines against the new snapshot between batches, so queries
//!   keep flowing through a swap with zero downtime and zero wrong
//!   answers.
//! * **Graceful shutdown.** [`Service::shutdown`] stops admissions,
//!   wakes the workers, and joins them only after the queue is drained —
//!   every admitted request receives a reply.
//! * **Supervision.** Batch execution runs under `catch_unwind`. A panic
//!   (engine bug, poisoned input) quarantines the batch — every request
//!   in it receives a typed [`ErrorKind::Internal`] reply instead of a
//!   dropped connection — and the worker discards its possibly-corrupt
//!   engine state and rebuilds it before taking the next batch. The
//!   `worker_restarts` / `quarantined_requests` counters in
//!   [`ServiceStats`] make these events observable.

use crate::overload::LoadTracker;
use crate::protocol::{ErrorKind, ServeError, MAX_MATRIX_CELLS, MAX_MATRIX_SOURCES, MAX_TARGETS};
use crate::stats::ServiceStats;
use phast_ch::{contract_graph, ChQuery, ContractionConfig, Hierarchy};
use phast_core::simd::MAX_K;
use phast_core::{
    run_hetero_batch, HeteroAnswer, HeteroQuery, Phast, PhastBuilder, RestrictedMultiEngine,
    SelectionBuilder, TargetSelection,
};
use phast_graph::{Graph, Vertex, Weight, INF};
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum requests per batched sweep (`1..=64`); the engine ladder
    /// is every power of two in `{4, 8, 16, ...}` up to this value.
    pub max_k: usize,
    /// How long a worker holds the first request of a batch open for
    /// companions. Zero batches whatever is already queued.
    pub window: Duration,
    /// Admission queue capacity; submissions beyond it are rejected with
    /// [`ErrorKind::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue depth at which submissions are shed with a typed
    /// [`ErrorKind::Overloaded`] reply carrying a `retry_after_ms` hint —
    /// graceful refusal *before* the hard `queue_capacity` backstop.
    /// Set `>= queue_capacity` to disable shedding.
    pub shed_queue_depth: usize,
    /// Optional latency trigger: when the smoothed admission-to-batch
    /// wait exceeds this, submissions are shed even at shallow queue
    /// depths (requests are expensive, not merely numerous). `None`
    /// disables the latency signal.
    pub shed_wait: Option<Duration>,
    /// Maximum concurrent TCP connections the front end admits; one more
    /// is refused with a typed [`ErrorKind::Busy`] reply and closed.
    pub max_conns: usize,
    /// Per-connection socket read/write timeout: a client that stalls a
    /// read or write longer than this is reaped. `Duration::ZERO`
    /// disables the timeouts (not recommended outside tests).
    pub io_timeout: Duration,
    /// Hard cap on one request line's bytes; a longer line is answered
    /// with a typed `malformed` reply and the connection is closed
    /// without buffering the tail.
    pub max_line_bytes: usize,
    /// **Fault-injection hook** (tests and soak runs only): any batch
    /// containing a query with this source panics inside the worker,
    /// exercising the supervision path. `None` — the default, and the
    /// only sensible production value — disables the hook entirely.
    pub panic_on_source: Option<Vertex>,
    /// How many superseded epochs the rollback history retains. Each
    /// retained epoch pins a full `(Phast, Hierarchy)` in memory, so this
    /// is a deliberate space-for-safety trade; `0` disables rollback
    /// entirely ([`Service::rollback_epoch`] then always fails typed).
    pub epoch_history: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_k: 16,
            window: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            shed_queue_depth: 768,
            shed_wait: None,
            max_conns: 256,
            io_timeout: Duration::from_secs(10),
            max_line_bytes: 256 * 1024,
            panic_on_source: None,
            epoch_history: 4,
        }
    }
}

impl ServeConfig {
    /// The engine widths this configuration batches into: 4 and 8 where
    /// they fit under `max_k`, then `max_k` itself.
    pub fn width_ladder(&self) -> Vec<usize> {
        let mut ladder: Vec<usize> = [4usize, 8, 16]
            .into_iter()
            .filter(|&w| w < self.max_k)
            .collect();
        ladder.push(self.max_k);
        ladder
    }
}

/// How many distinct target selections a worker's LRU cache retains.
/// Small and fixed: one selection is `O(selected vertices)` of memory per
/// worker, so an unbounded cache under adversarial target churn is a slow
/// memory leak. Eight covers the "few hot fleets polled round-robin"
/// pattern that motivated caching in the first place.
pub const SELECTION_CACHE_CAPACITY: usize = 8;

/// One immutable metric snapshot: the preprocessed instance (and the
/// hierarchy powering the point-to-point rung) the service answers
/// queries on. Swapping metrics publishes a new `MetricEpoch`; in-flight
/// jobs keep the `Arc` they captured at admission, so a swap never
/// changes the metric a request is answered under.
pub struct MetricEpoch {
    /// Monotonically increasing epoch number (the first epoch is 1).
    /// Rollbacks also mint a *new* id — epoch ids never move backwards,
    /// so every stale-epoch comparison in the pipeline stays valid.
    pub id: u64,
    /// The preprocessed sweep instance for this metric.
    pub phast: Arc<Phast>,
    /// Optional hierarchy enabling the bidirectional-CH rung.
    pub hierarchy: Option<Arc<Hierarchy>>,
    /// `Some(bad_id)` when this epoch was published by
    /// [`Service::rollback_epoch`] to displace epoch `bad_id`; `None` for
    /// ordinary swaps. Purely observability — execution never branches on
    /// it.
    pub rolled_back_from: Option<u64>,
}

/// A reply to one scheduled job.
type JobReply = Result<HeteroAnswer, ServeError>;

/// What one admitted job asks the worker to compute.
enum WorkItem {
    /// A lane-shaped query riding a heterogeneous batch.
    Query(HeteroQuery),
    /// A many-to-many matrix; runs alone on the restricted-sweep rung.
    Matrix {
        sources: Vec<Vertex>,
        targets: Vec<Vertex>,
    },
}

struct Job {
    work: WorkItem,
    deadline: Option<Instant>,
    admitted_at: Instant,
    /// The metric epoch current at admission; the job executes on exactly
    /// this snapshot regardless of later swaps.
    epoch: Arc<MetricEpoch>,
    reply: mpsc::Sender<JobReply>,
}

struct SchedState {
    queue: VecDeque<Job>,
    open: bool,
    /// The epoch new admissions capture. Swaps replace this `Arc` under
    /// the queue lock so admission and publication are atomic w.r.t.
    /// each other.
    epoch: Arc<MetricEpoch>,
    /// Bounded ring of superseded epochs, most recent at the back. A
    /// swap pushes the displaced epoch here (evicting the oldest past
    /// `cfg.epoch_history`); a rollback pops the back and re-publishes
    /// it. An epoch displaced *by* a rollback is discarded, never
    /// re-enrolled — rolling back twice keeps walking into the past
    /// instead of ping-ponging onto the bad metric.
    history: VecDeque<Arc<MetricEpoch>>,
}

struct Shared {
    /// Vertex count, invariant across metric swaps (the topology is
    /// frozen; only weights change), so admission validation never needs
    /// the epoch lock.
    num_vertices: usize,
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    stats: ServiceStats,
    load: LoadTracker,
    /// The id of the most recently published epoch — a lock-free copy of
    /// `SchedState::epoch.id` letting idle workers notice a swap without
    /// reacquiring the queue lock contents, and letting the execution
    /// path count `queries_on_stale_metric`.
    published: AtomicU64,
}

/// The embeddable batching service. Cheap to share (`Arc`); the TCP
/// front end in [`crate::server`] is one possible caller, in-process
/// embedding another.
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service over a preprocessed instance. `hierarchy`
    /// (optional) enables the bidirectional-CH rung of the degradation
    /// ladder for lone point-to-point requests.
    pub fn new(
        phast: Arc<Phast>,
        hierarchy: Option<Arc<Hierarchy>>,
        cfg: ServeConfig,
    ) -> Arc<Service> {
        assert!(
            (1..=MAX_K).contains(&cfg.max_k),
            "max_k must be in 1..={MAX_K}"
        );
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.shed_queue_depth > 0, "shed depth must be positive");
        assert!(cfg.max_conns > 0, "need room for at least one connection");
        assert!(cfg.max_line_bytes > 0, "line cap must be positive");
        let num_vertices = phast.num_vertices();
        let epoch = Arc::new(MetricEpoch {
            id: 1,
            phast,
            hierarchy,
            rolled_back_from: None,
        });
        let shared = Arc::new(Shared {
            num_vertices,
            cfg,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                open: true,
                epoch,
                history: VecDeque::new(),
            }),
            cv: Condvar::new(),
            stats: ServiceStats::default(),
            load: LoadTracker::default(),
            published: AtomicU64::new(1),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phast-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(Service {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Convenience constructor: contracts `g`, builds the sweep instance,
    /// and keeps the hierarchy for the point-to-point fallback.
    pub fn for_graph(g: &Graph, cfg: ServeConfig) -> Arc<Service> {
        let h = contract_graph(g, &ContractionConfig::default());
        let p = PhastBuilder::new().build_with_hierarchy(g, &h);
        Service::new(Arc::new(p), Some(Arc::new(h)), cfg)
    }

    /// The instance the *current* epoch answers queries on. A metric swap
    /// replaces the epoch, so callers wanting a stable snapshot should
    /// hold the [`MetricEpoch`] from [`Service::current_epoch`] instead.
    pub fn phast(&self) -> Arc<Phast> {
        Arc::clone(&self.current_epoch().phast)
    }

    /// The currently published metric epoch. The returned `Arc` is a
    /// stable snapshot: it stays valid (and exact for its weights) even
    /// if a newer epoch is published afterwards.
    pub fn current_epoch(&self) -> Arc<MetricEpoch> {
        Arc::clone(&self.shared.state.lock().unwrap().epoch)
    }

    /// The id of the most recently published epoch (the first is 1).
    pub fn epoch_id(&self) -> u64 {
        self.shared.published.load(Ordering::SeqCst)
    }

    /// Publishes a new metric epoch and returns its id. Requests admitted
    /// before the swap complete on the epoch they captured; requests
    /// admitted after it run on the new one — the boundary is the queue
    /// lock, so there is no window where a request runs on a mix.
    ///
    /// The new instance must describe the same vertex set (a metric swap
    /// changes weights, never topology); anything else is rejected with a
    /// typed [`ErrorKind::BadRequest`] and leaves the current epoch
    /// untouched.
    pub fn swap_epoch(
        &self,
        phast: Arc<Phast>,
        hierarchy: Option<Arc<Hierarchy>>,
    ) -> Result<u64, ServeError> {
        let start = Instant::now();
        if phast.num_vertices() != self.shared.num_vertices {
            return Err(ServeError::new(
                ErrorKind::BadRequest,
                format!(
                    "metric swap changes the vertex count ({} -> {}); \
                     swaps may change weights, never topology",
                    self.shared.num_vertices,
                    phast.num_vertices()
                ),
            ));
        }
        let id = {
            let mut g = self.shared.state.lock().unwrap();
            if !g.open {
                return Err(ServeError::new(
                    ErrorKind::Shutdown,
                    "service is shutting down",
                ));
            }
            let id = g.epoch.id + 1;
            let displaced = std::mem::replace(
                &mut g.epoch,
                Arc::new(MetricEpoch {
                    id,
                    phast,
                    hierarchy,
                    rolled_back_from: None,
                }),
            );
            if self.shared.cfg.epoch_history > 0 {
                g.history.push_back(displaced);
                while g.history.len() > self.shared.cfg.epoch_history {
                    g.history.pop_front();
                }
            }
            self.shared.published.store(id, Ordering::SeqCst);
            id
        };
        // Wake idle workers so they rebuild onto the new epoch now, not
        // on the first post-swap request's critical path.
        self.shared.cv.notify_all();
        self.shared.stats.add_metric_swaps(1);
        self.shared
            .stats
            .add_swap_latency_us(start.elapsed().as_micros() as u64);
        Ok(id)
    }

    /// Atomically re-publishes the most recent predecessor epoch from the
    /// rollback history and returns the *new* epoch id.
    ///
    /// The predecessor's instance comes back under a fresh, strictly
    /// larger id (stamped with [`MetricEpoch::rolled_back_from`]), so
    /// epoch ids stay monotone and replies admitted after the rollback
    /// are visibly stamped with the rollback epoch. The displaced (bad)
    /// epoch is discarded rather than re-enrolled in the history:
    /// consecutive rollbacks walk further into the past.
    ///
    /// Fails typed with [`ErrorKind::BadRequest`] when the history is
    /// empty (nothing was ever swapped, every predecessor was already
    /// consumed, or `epoch_history` is 0) and with
    /// [`ErrorKind::Shutdown`] once the service is closing. Either way
    /// the current epoch keeps serving untouched.
    pub fn rollback_epoch(&self) -> Result<u64, ServeError> {
        let start = Instant::now();
        let id = {
            let mut g = self.shared.state.lock().unwrap();
            if !g.open {
                return Err(ServeError::new(
                    ErrorKind::Shutdown,
                    "service is shutting down",
                ));
            }
            let Some(prev) = g.history.pop_back() else {
                return Err(ServeError::new(
                    ErrorKind::BadRequest,
                    "no predecessor epoch in the rollback history",
                ));
            };
            let id = g.epoch.id + 1;
            g.epoch = Arc::new(MetricEpoch {
                id,
                phast: Arc::clone(&prev.phast),
                hierarchy: prev.hierarchy.clone(),
                rolled_back_from: Some(g.epoch.id),
            });
            self.shared.published.store(id, Ordering::SeqCst);
            id
        };
        self.shared.cv.notify_all();
        self.shared.stats.add_epoch_rollbacks(1);
        self.shared
            .stats
            .add_swap_latency_us(start.elapsed().as_micros() as u64);
        Ok(id)
    }

    /// How many predecessor epochs the rollback history currently holds.
    pub fn epoch_history_len(&self) -> usize {
        self.shared.state.lock().unwrap().history.len()
    }

    /// The service-level counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// The latency tracker feeding the overload policy.
    pub fn load(&self) -> &LoadTracker {
        &self.shared.load
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submits a query without blocking. Returns the receiver the reply
    /// will arrive on, or a typed rejection ([`ErrorKind::Overloaded`],
    /// [`ErrorKind::QueueFull`], [`ErrorKind::Shutdown`],
    /// [`ErrorKind::BadRequest`]).
    pub fn submit(
        &self,
        query: HeteroQuery,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<JobReply>, ServeError> {
        self.validate(&query)?;
        Ok(self.submit_work(WorkItem::Query(query), deadline)?.0)
    }

    /// Submits a many-to-many matrix request without blocking. Targets
    /// must be duplicate-free and in range (rejected with a typed
    /// [`ErrorKind::Malformed`] — a sloppy target list is a client bug
    /// the engine layer must never paper over); sources are subject to
    /// the same range check and caps as every other query shape.
    pub fn submit_matrix(
        &self,
        sources: Vec<Vertex>,
        targets: Vec<Vertex>,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<JobReply>, ServeError> {
        self.validate_matrix(&sources, &targets)?;
        Ok(self
            .submit_work(WorkItem::Matrix { sources, targets }, deadline)?
            .0)
    }

    /// Submits work, returning the reply receiver and the id of the epoch
    /// the job was admitted under (and will therefore execute on).
    fn submit_work(
        &self,
        work: WorkItem,
        deadline: Option<Duration>,
    ) -> Result<(mpsc::Receiver<JobReply>, u64), ServeError> {
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let epoch_id;
        {
            let cfg = &self.shared.cfg;
            let mut g = self.shared.state.lock().unwrap();
            if !g.open {
                return Err(ServeError::new(
                    ErrorKind::Shutdown,
                    "service is shutting down",
                ));
            }
            if g.queue.len() >= cfg.queue_capacity {
                self.shared.stats.add_rejected_queue_full(1);
                return Err(ServeError::new(
                    ErrorKind::QueueFull,
                    format!("admission queue at capacity {}", cfg.queue_capacity),
                ));
            }
            // Load shedding happens *before* admission: a shed request
            // never consumed a queue slot, and its retry hint reflects
            // the drain time of what is already queued.
            if let Some(retry_after_ms) = self.shared.load.should_shed(
                g.queue.len(),
                cfg.shed_queue_depth,
                cfg.shed_wait,
            ) {
                self.shared.stats.add_shed_overload(1);
                return Err(ServeError::overloaded(
                    retry_after_ms,
                    format!(
                        "service overloaded ({} queued); retry in ~{retry_after_ms}ms",
                        g.queue.len()
                    ),
                ));
            }
            let job = Job {
                work,
                deadline: deadline.map(|d| now + d),
                admitted_at: now,
                epoch: Arc::clone(&g.epoch),
                reply: tx,
            };
            epoch_id = g.epoch.id;
            g.queue.push_back(job);
        }
        self.shared.stats.add_admitted(1);
        self.shared.cv.notify_all();
        Ok((rx, epoch_id))
    }

    /// Submits and blocks until the reply arrives. The optional deadline
    /// is measured from now (admission).
    pub fn call(
        &self,
        query: HeteroQuery,
        deadline: Option<Duration>,
    ) -> Result<HeteroAnswer, ServeError> {
        self.call_with_epoch(query, deadline).map(|(a, _)| a)
    }

    /// Like [`Service::call`], additionally returning the id of the
    /// metric epoch the request was admitted under — the epoch its answer
    /// is exact for.
    pub fn call_with_epoch(
        &self,
        query: HeteroQuery,
        deadline: Option<Duration>,
    ) -> Result<(HeteroAnswer, u64), ServeError> {
        self.validate(&query)?;
        let (rx, epoch_id) = self.submit_work(WorkItem::Query(query), deadline)?;
        match rx.recv() {
            Ok(reply) => reply.map(|a| (a, epoch_id)),
            Err(_) => Err(ServeError::new(
                ErrorKind::Internal,
                "worker dropped the request",
            )),
        }
    }

    /// Submits a matrix request and blocks until the rows arrive (one row
    /// per source, one column per target).
    pub fn matrix(
        &self,
        sources: Vec<Vertex>,
        targets: Vec<Vertex>,
        deadline: Option<Duration>,
    ) -> Result<Vec<Vec<Weight>>, ServeError> {
        self.matrix_with_epoch(sources, targets, deadline)
            .map(|(rows, _)| rows)
    }

    /// Like [`Service::matrix`], additionally returning the id of the
    /// metric epoch the request was admitted under.
    pub fn matrix_with_epoch(
        &self,
        sources: Vec<Vertex>,
        targets: Vec<Vertex>,
        deadline: Option<Duration>,
    ) -> Result<(Vec<Vec<Weight>>, u64), ServeError> {
        self.validate_matrix(&sources, &targets)?;
        let (rx, epoch_id) = self.submit_work(WorkItem::Matrix { sources, targets }, deadline)?;
        match rx.recv() {
            Ok(Ok(HeteroAnswer::Matrix(rows))) => Ok((rows, epoch_id)),
            Ok(Ok(_)) => Err(ServeError::new(
                ErrorKind::Internal,
                "matrix job answered with a non-matrix shape",
            )),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(ServeError::new(
                ErrorKind::Internal,
                "worker dropped the request",
            )),
        }
    }

    fn validate(&self, query: &HeteroQuery) -> Result<(), ServeError> {
        let n = self.shared.num_vertices as u64;
        let check = |v: u32, what: &str| -> Result<(), ServeError> {
            if u64::from(v) >= n {
                self.shared.stats.add_rejected_invalid(1);
                Err(ServeError::new(
                    ErrorKind::BadRequest,
                    format!("{what} {v} out of range (graph has {n} vertices)"),
                ))
            } else {
                Ok(())
            }
        };
        match query {
            HeteroQuery::Tree { source } => check(*source, "source"),
            HeteroQuery::Many { source, targets } => {
                check(*source, "source")?;
                targets.iter().try_for_each(|&t| check(t, "target"))
            }
            HeteroQuery::Point { source, target } => {
                check(*source, "source")?;
                check(*target, "target")
            }
        }
    }

    /// The single source of truth for matrix-request validation, shared
    /// by the wire path and in-process embedders. Sources violations are
    /// [`ErrorKind::BadRequest`] like every other query shape; target
    /// violations (duplicates, out-of-range ids) are
    /// [`ErrorKind::Malformed`] — the target list keys the per-worker
    /// selection cache, so a sloppy list is a malformed request the
    /// engine layer must never silently dedup or panic over.
    fn validate_matrix(&self, sources: &[Vertex], targets: &[Vertex]) -> Result<(), ServeError> {
        let n = self.shared.num_vertices as u64;
        let reject = |kind: ErrorKind, msg: String| -> ServeError {
            self.shared.stats.add_rejected_invalid(1);
            ServeError::new(kind, msg)
        };
        if sources.is_empty() || sources.len() > MAX_MATRIX_SOURCES {
            return Err(reject(
                ErrorKind::BadRequest,
                format!("`sources` must hold 1..={MAX_MATRIX_SOURCES} entries"),
            ));
        }
        if targets.is_empty() || targets.len() > MAX_TARGETS {
            return Err(reject(
                ErrorKind::BadRequest,
                format!("`targets` must hold 1..={MAX_TARGETS} entries"),
            ));
        }
        if sources.len() * targets.len() > MAX_MATRIX_CELLS {
            return Err(reject(
                ErrorKind::BadRequest,
                format!(
                    "matrix of {}x{} exceeds the {MAX_MATRIX_CELLS}-cell cap",
                    sources.len(),
                    targets.len()
                ),
            ));
        }
        for &s in sources {
            if u64::from(s) >= n {
                return Err(reject(
                    ErrorKind::BadRequest,
                    format!("source {s} out of range (graph has {n} vertices)"),
                ));
            }
        }
        let mut seen = HashSet::with_capacity(targets.len());
        for &t in targets {
            if u64::from(t) >= n {
                return Err(reject(
                    ErrorKind::Malformed,
                    format!("matrix target {t} out of range (graph has {n} vertices)"),
                ));
            }
            if !seen.insert(t) {
                return Err(reject(
                    ErrorKind::Malformed,
                    format!("matrix target {t} appears more than once"),
                ));
            }
        }
        Ok(())
    }

    /// A synchronous handle on the worker batch-execution path — the
    /// benchable hook. The runner owns the same engine ladder a worker
    /// builds and [`BatchRunner::run`] drives the exact `execute_batch`
    /// code (ladder selection, padding, stats merge) without the queue,
    /// window, or reply channels, so a perf harness can measure the
    /// service's compute path deterministically.
    ///
    /// The caller owns the epoch snapshot the runner's engines borrow —
    /// typically `let epoch = svc.current_epoch();` immediately before.
    pub fn batch_runner<'e>(&'e self, epoch: &'e MetricEpoch) -> BatchRunner<'e> {
        BatchRunner {
            shared: &self.shared,
            engines: WorkerEngines::build(epoch, &self.shared.cfg),
        }
    }

    /// Stops admitting requests, drains every queued job, and joins the
    /// workers. Idempotent; concurrent submissions observe
    /// [`ErrorKind::Shutdown`].
    pub fn shutdown(&self) {
        {
            let mut g = self.shared.state.lock().unwrap();
            g.open = false;
        }
        self.shared.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-worker compute state, built against one [`MetricEpoch`]
/// snapshot. Everything in here may be left half-updated by a panic, so
/// the supervision path throws the whole bundle away and rebuilds it from
/// the immutable epoch; a metric swap retires it the same way (between
/// batches, never mid-batch).
struct WorkerEngines<'p> {
    multi: Vec<phast_core::MultiTreeEngine<'p>>,
    scalar: phast_core::PhastEngine<'p>,
    ch_query: Option<ChQuery<'p>>,
    /// RPHAST state for the matrix rung: a reusable selection builder, a
    /// `max_k`-wide restricted engine, and a bounded LRU of recent
    /// selections keyed by their exact target lists (most recent first;
    /// at most [`SELECTION_CACHE_CAPACITY`] entries).
    sel_builder: SelectionBuilder<'p>,
    restricted: RestrictedMultiEngine<'p>,
    selections: VecDeque<(Vec<Vertex>, TargetSelection<'p>)>,
}

impl<'p> WorkerEngines<'p> {
    fn build(epoch: &'p MetricEpoch, cfg: &ServeConfig) -> Self {
        let phast: &Phast = &epoch.phast;
        WorkerEngines {
            multi: cfg
                .width_ladder()
                .into_iter()
                .map(|w| phast.multi_engine(w))
                .collect(),
            scalar: phast.engine(),
            ch_query: epoch.hierarchy.as_deref().map(ChQuery::new),
            sel_builder: SelectionBuilder::new(phast),
            restricted: RestrictedMultiEngine::new(phast, cfg.max_k),
            selections: VecDeque::new(),
        }
    }
}

/// A borrowed engine ladder executing batches synchronously through the
/// scheduler's own batch path (see [`Service::batch_runner`]). Queries
/// must already be in range — the runner sits *below* admission
/// validation, exactly like a worker.
pub struct BatchRunner<'s> {
    shared: &'s Shared,
    engines: WorkerEngines<'s>,
}

impl BatchRunner<'_> {
    /// Executes one batch; element `i` answers `queries[i]`. Batches
    /// larger than the configured `max_k` panic (a worker never forms
    /// one), as does an out-of-range vertex — callers wanting typed
    /// errors go through [`Service::submit`].
    pub fn run(&mut self, queries: &[HeteroQuery]) -> Vec<HeteroAnswer> {
        assert!(
            queries.len() <= self.shared.cfg.max_k,
            "batch of {} exceeds max_k {}",
            queries.len(),
            self.shared.cfg.max_k
        );
        execute_batch(self.shared, queries, &mut self.engines)
    }

    /// Executes one matrix request through the real matrix rung —
    /// selection build (or cache hit), restricted sweeps, stats merge —
    /// without the queue or reply channels. Inputs must already be valid
    /// (in-range, duplicate-free targets), exactly like [`Self::run`].
    pub fn run_matrix(&mut self, sources: &[Vertex], targets: &[Vertex]) -> Vec<Vec<Weight>> {
        match execute_matrix(self.shared, sources, targets, &mut self.engines) {
            HeteroAnswer::Matrix(rows) => rows,
            other => unreachable!("matrix rung answered {other:?}"),
        }
    }
}

/// One worker: engines for every ladder width plus the fallbacks, looping
/// over window-formed batches until shutdown empties the queue.
///
/// The loop is its own supervisor: batch execution runs under
/// `catch_unwind`, with the reply senders held *outside* the unwind
/// boundary, so a panicking engine can never strand a request. After a
/// panic the worker answers the quarantined batch with typed errors,
/// rebuilds its engines from the immutable instance, and keeps draining —
/// the thread itself never dies, so no capacity is silently lost.
fn worker_loop(shared: &Shared) {
    let mut current: Arc<MetricEpoch> = Arc::clone(&shared.state.lock().unwrap().epoch);
    loop {
        // The engines borrow `epoch` (a stack-owned `Arc` keeping the
        // snapshot alive), so both live exactly one `drain_on_epoch`
        // round; switching epochs or quarantining a panic drops them
        // together and loops back here to rebuild.
        let epoch = Arc::clone(&current);
        let mut engines = WorkerEngines::build(&epoch, &shared.cfg);
        match drain_on_epoch(shared, &epoch, &mut engines) {
            DrainExit::Shutdown => return,
            DrainExit::Switch(next) => current = next,
            DrainExit::Rebuild => {}
        }
    }
}

/// Why [`drain_on_epoch`] handed control back to [`worker_loop`].
enum DrainExit {
    /// The service closed and the queue is drained.
    Shutdown,
    /// The next job (or the published epoch, while idle) belongs to a
    /// different metric epoch; rebuild the engines against it.
    Switch(Arc<MetricEpoch>),
    /// A panic quarantined the engines; rebuild on the same epoch.
    Rebuild,
}

/// Drains batches admitted under `epoch` until the service shuts down,
/// the epoch is superseded, or a panic requires an engine rebuild. Every
/// batch formed here is epoch-homogeneous: a swap mid-queue splits the
/// batch at the boundary, so no sweep ever mixes metrics.
fn drain_on_epoch(
    shared: &Shared,
    epoch: &MetricEpoch,
    engines: &mut WorkerEngines<'_>,
) -> DrainExit {
    let cfg = &shared.cfg;
    loop {
        let batch = {
            let mut g = shared.state.lock().unwrap();
            loop {
                if let Some(head) = g.queue.front() {
                    if head.epoch.id != epoch.id {
                        return DrainExit::Switch(Arc::clone(&head.epoch));
                    }
                    break;
                }
                if !g.open {
                    return DrainExit::Shutdown; // closed and drained
                }
                // Idle and a newer epoch is published: rebuild now, off
                // any request's critical path, and release the old
                // snapshot's memory.
                if shared.published.load(Ordering::SeqCst) != epoch.id {
                    return DrainExit::Switch(Arc::clone(&g.epoch));
                }
                g = shared.cv.wait(g).unwrap();
            }
            // A matrix job at the head runs alone on its own rung — it
            // already amortizes one selection over many sources, so there
            // is nothing for a window to gather.
            let head_is_matrix = matches!(
                g.queue.front().map(|j| &j.work),
                Some(WorkItem::Matrix { .. })
            );
            if head_is_matrix {
                vec![g.queue.pop_front().expect("head observed above")]
            } else {
                // Hold the window open for companions; leave early when
                // the batch is full or the service is draining for
                // shutdown.
                let window_end = Instant::now() + cfg.window;
                while g.queue.len() < cfg.max_k && g.open {
                    let now = Instant::now();
                    if now >= window_end {
                        break;
                    }
                    let (guard, _) = shared.cv.wait_timeout(g, window_end - now).unwrap();
                    g = guard;
                }
                // Drain only the leading lane-shaped jobs *of this
                // epoch*: a matrix job or an epoch boundary mid-queue
                // ends the batch. The window wait released the lock, so
                // other workers may have stolen everything (take = 0 →
                // loop back around) or left a matrix job / foreign-epoch
                // job at the head (same).
                let take = g
                    .queue
                    .iter()
                    .take(cfg.max_k)
                    .take_while(|j| {
                        matches!(j.work, WorkItem::Query(_)) && j.epoch.id == epoch.id
                    })
                    .count();
                g.queue.drain(..take).collect::<Vec<Job>>()
            }
        };
        let live = expire_deadlines(shared, batch);
        if live.is_empty() {
            continue;
        }
        if epoch.id < shared.published.load(Ordering::SeqCst) {
            // These requests were admitted before a swap and are being
            // honored on their admission snapshot — by design, but worth
            // counting.
            shared
                .stats
                .add_queries_on_stale_metric(live.len() as u64);
        }
        let work: Vec<&WorkItem> = live.iter().map(|j| &j.work).collect();
        // The unwind closure borrows only the engines and the work
        // items; the `Job`s (and with them the reply channels) stay out
        // here so the quarantine path below can still answer them.
        let exec_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_work(shared, &work, engines)
        }));
        shared.load.observe_batch(exec_start.elapsed(), live.len());
        let stats = &shared.stats;
        match outcome {
            Ok(answers) => {
                stats.add_served(live.len() as u64);
                for (job, answer) in live.into_iter().zip(answers) {
                    let _ = job.reply.send(Ok(answer));
                }
            }
            Err(_) => {
                stats.add_worker_restarts(1);
                stats.add_quarantined_requests(live.len() as u64);
                stats.add_failed(live.len() as u64);
                for job in live {
                    let _ = job.reply.send(Err(ServeError::new(
                        ErrorKind::Internal,
                        "worker panicked while executing this batch; request quarantined",
                    )));
                }
                return DrainExit::Rebuild;
            }
        }
    }
}

/// Answers every job whose deadline already expired with a typed error
/// and returns the still-live remainder.
fn expire_deadlines(shared: &Shared, batch: Vec<Job>) -> Vec<Job> {
    let stats = &shared.stats;
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        shared
            .load
            .observe_wait(now.saturating_duration_since(job.admitted_at));
        if job.deadline.is_some_and(|d| d <= now) {
            stats.add_deadline_misses(1);
            stats.add_failed(1);
            let _ = job.reply.send(Err(ServeError::new(
                ErrorKind::DeadlineExceeded,
                "deadline expired before the batch formed",
            )));
        } else {
            live.push(job);
        }
    }
    live
}

/// Dispatches one formed batch: a lone matrix job takes the restricted
/// rung, anything else is a lane-shaped batch. Batch formation guarantees
/// the two never mix.
fn execute_work(
    shared: &Shared,
    work: &[&WorkItem],
    engines: &mut WorkerEngines<'_>,
) -> Vec<HeteroAnswer> {
    if let [WorkItem::Matrix { sources, targets }] = work {
        return vec![execute_matrix(shared, sources, targets, engines)];
    }
    let queries: Vec<HeteroQuery> = work
        .iter()
        .map(|w| match w {
            WorkItem::Query(q) => q.clone(),
            WorkItem::Matrix { .. } => unreachable!("matrix jobs are batched alone"),
        })
        .collect();
    execute_batch(shared, &queries, engines)
}

/// Runs one matrix request on the restricted rung: reuse (or build) the
/// worker's cached selection for this exact target list, then chunk the
/// sources through `max_k`-lane restricted sweeps. May panic, like
/// [`execute_batch`]; the selection cache lives in [`WorkerEngines`], so
/// quarantine rebuilds discard it along with everything else.
fn execute_matrix(
    shared: &Shared,
    sources: &[Vertex],
    targets: &[Vertex],
    engines: &mut WorkerEngines<'_>,
) -> HeteroAnswer {
    let stats = &shared.stats;
    if let Some(bad) = shared.cfg.panic_on_source {
        if sources.contains(&bad) {
            panic!("injected fault: matrix contains poisoned source {bad}");
        }
    }
    match engines
        .selections
        .iter()
        .position(|(key, _)| key == targets)
    {
        Some(i) => {
            stats.add_selection_cache_hits(1);
            if i != 0 {
                let hit = engines.selections.remove(i).expect("index found above");
                engines.selections.push_front(hit);
            }
        }
        None => {
            let sel = engines.sel_builder.build(targets);
            stats.add_selection_builds(1);
            stats.add_selection_vertices(sel.len() as u64);
            engines.selections.push_front((targets.to_vec(), sel));
            if engines.selections.len() > SELECTION_CACHE_CAPACITY {
                engines.selections.pop_back();
                stats.add_selection_cache_evictions(1);
            }
        }
    }
    let WorkerEngines {
        restricted,
        selections,
        ..
    } = engines;
    let (_, sel) = selections.front().expect("selection installed above");
    let rows = restricted.matrix(sel, sources);
    stats.merge_query(restricted.stats());
    stats.add_matrix_requests(1);
    stats.add_matrix_rows(sources.len() as u64);
    stats.add_matrix_chunks(restricted.chunks_for(sources.len()) as u64);
    HeteroAnswer::Matrix(rows)
}

/// Computes the answers for one batch; element `i` answers `queries[i]`.
/// May panic (that is the point of the supervision around it); must not
/// touch any reply channel.
fn execute_batch(
    shared: &Shared,
    queries: &[HeteroQuery],
    engines: &mut WorkerEngines<'_>,
) -> Vec<HeteroAnswer> {
    let stats = &shared.stats;
    if let Some(bad) = shared.cfg.panic_on_source {
        if queries.iter().any(|q| q.source() == bad) {
            panic!("injected fault: batch contains poisoned source {bad}");
        }
    }
    match queries {
        [] => Vec::new(),
        [query] => {
            let answer = match (query, engines.ch_query.as_mut()) {
                (&HeteroQuery::Point { source, target }, Some(q)) => {
                    stats.add_p2p_fallbacks(1);
                    HeteroAnswer::Point(q.query(source, target).unwrap_or(INF))
                }
                _ => {
                    stats.add_scalar_fallbacks(1);
                    let dist = engines.scalar.distances(query.source());
                    stats.merge_query(engines.scalar.stats());
                    match query {
                        HeteroQuery::Tree { .. } => HeteroAnswer::Tree(dist),
                        HeteroQuery::Many { targets, .. } => HeteroAnswer::Many(
                            targets.iter().map(|&t| dist[t as usize]).collect(),
                        ),
                        HeteroQuery::Point { target, .. } => {
                            HeteroAnswer::Point(dist[*target as usize])
                        }
                    }
                }
            };
            vec![answer]
        }
        _ => {
            let r = queries.len();
            let engine = engines
                .multi
                .iter_mut()
                .find(|e| e.k() >= r)
                .expect("ladder always ends at max_k");
            let answers = run_hetero_batch(engine, queries);
            stats.merge_query(engine.stats());
            stats.add_batches(1);
            stats.add_batched_requests(r as u64);
            stats.add_multi_batches(1);
            stats.add_padded_lanes((engine.k() - r) as u64);
            answers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn small_service(cfg: ServeConfig) -> (Graph, Arc<Service>) {
        let net = RoadNetworkConfig::new(10, 10, 5, Metric::TravelTime).build();
        let svc = Service::for_graph(&net.graph, cfg);
        (net.graph, svc)
    }

    #[test]
    fn width_ladder_tracks_max_k() {
        let cfg = |max_k| ServeConfig {
            max_k,
            ..ServeConfig::default()
        };
        assert_eq!(cfg(16).width_ladder(), vec![4, 8, 16]);
        assert_eq!(cfg(8).width_ladder(), vec![4, 8]);
        assert_eq!(cfg(6).width_ladder(), vec![4, 6]);
        assert_eq!(cfg(1).width_ladder(), vec![1]);
        assert_eq!(cfg(64).width_ladder(), vec![4, 8, 16, 64]);
    }

    #[test]
    fn single_calls_answer_exactly() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let want = shortest_paths(g.forward(), 3).dist;
        let got = svc.call(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(got, HeteroAnswer::Tree(want.clone()));
        let got = svc
            .call(
                HeteroQuery::Many {
                    source: 3,
                    targets: vec![0, 9],
                },
                None,
            )
            .unwrap();
        assert_eq!(got, HeteroAnswer::Many(vec![want[0], want[9]]));
        let got = svc
            .call(HeteroQuery::Point { source: 3, target: 7 }, None)
            .unwrap();
        assert_eq!(got, HeteroAnswer::Point(want[7]));
        assert_eq!(svc.stats().served(), 3);
    }

    #[test]
    fn concurrent_calls_form_multi_occupancy_batches() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(40),
            workers: 1,
            ..ServeConfig::default()
        });
        let n = g.num_vertices() as u32;
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    svc.call(HeteroQuery::Tree { source: i % n }, None).unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let want = shortest_paths(g.forward(), i as u32 % n).dist;
            assert_eq!(h.join().unwrap(), HeteroAnswer::Tree(want), "request {i}");
        }
        assert!(
            svc.stats().multi_batches() >= 1,
            "8 concurrent requests inside a 40ms window must share a sweep"
        );
        assert!(svc.stats().mean_batch_occupancy() > 1.0);
    }

    #[test]
    fn queue_full_rejects_instead_of_blocking() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(300),
            queue_capacity: 2,
            workers: 1,
            ..ServeConfig::default()
        });
        // The worker adopts the queue head and holds the window open, so
        // back-to-back submissions keep the queue at capacity.
        let _rx1 = svc.submit(HeteroQuery::Tree { source: 0 }, None).unwrap();
        let _rx2 = svc.submit(HeteroQuery::Tree { source: 1 }, None).unwrap();
        let err = svc
            .submit(HeteroQuery::Tree { source: 2 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::QueueFull);
        assert_eq!(svc.stats().rejected_queue_full(), 1);
    }

    #[test]
    fn overload_sheds_before_the_queue_full_backstop() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(300),
            queue_capacity: 8,
            shed_queue_depth: 2,
            workers: 1,
            ..ServeConfig::default()
        });
        // The worker holds the window open, so submissions accumulate.
        let _rx1 = svc.submit(HeteroQuery::Tree { source: 0 }, None).unwrap();
        let _rx2 = svc.submit(HeteroQuery::Tree { source: 1 }, None).unwrap();
        // Depth 2 >= shed threshold 2: shed with a retry hint, while the
        // queue itself (capacity 8) still has room.
        let err = svc
            .submit(HeteroQuery::Tree { source: 2 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(err.retry_after_ms.is_some_and(|ms| ms > 0), "{err:?}");
        assert_eq!(svc.stats().shed_overload(), 1);
        assert_eq!(svc.stats().rejected_queue_full(), 0);
    }

    #[test]
    fn zero_deadline_misses_with_typed_error() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(10),
            ..ServeConfig::default()
        });
        let err = svc
            .call(HeteroQuery::Tree { source: 0 }, Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(svc.stats().deadline_misses(), 1);
        // The service keeps serving afterwards.
        svc.call(HeteroQuery::Tree { source: 0 }, None).unwrap();
    }

    #[test]
    fn out_of_range_vertices_are_bad_requests() {
        let (_, svc) = small_service(ServeConfig::default());
        let err = svc
            .call(HeteroQuery::Tree { source: 1_000_000 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let err = svc
            .call(
                HeteroQuery::Many {
                    source: 0,
                    targets: vec![0, 1_000_000],
                },
                None,
            )
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn shutdown_drains_admitted_requests_then_rejects() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(50),
            workers: 1,
            ..ServeConfig::default()
        });
        let rx = svc.submit(HeteroQuery::Tree { source: 4 }, None).unwrap();
        svc.shutdown();
        // The queued request was drained, not dropped.
        let want = shortest_paths(g.forward(), 4).dist;
        assert_eq!(rx.recv().unwrap().unwrap(), HeteroAnswer::Tree(want));
        // New work is rejected with the typed shutdown error.
        let err = svc
            .call(HeteroQuery::Tree { source: 0 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Shutdown);
    }

    #[test]
    fn panicked_batch_is_quarantined_and_the_worker_recovers() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            panic_on_source: Some(7),
            ..ServeConfig::default()
        });
        // The poisoned request gets a typed Internal error, not a hang or
        // a dropped channel.
        let err = svc
            .call(HeteroQuery::Tree { source: 7 }, None)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert_eq!(svc.stats().worker_restarts(), 1);
        assert_eq!(svc.stats().quarantined_requests(), 1);
        // The sole worker survived the panic and still answers exactly.
        let want = shortest_paths(g.forward(), 3).dist;
        let got = svc.call(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(got, HeteroAnswer::Tree(want));
        let r = svc.stats().report("t");
        assert_eq!(
            r.get("worker_restarts"),
            Some(&phast_obs::MetricValue::Count(1)),
            "restart counter surfaces through the obs report"
        );
    }

    #[test]
    fn repeated_panics_do_not_wedge_the_service() {
        let (_, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 2,
            panic_on_source: Some(0),
            ..ServeConfig::default()
        });
        for _ in 0..5 {
            let err = svc.call(HeteroQuery::Tree { source: 0 }, None).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Internal);
        }
        assert_eq!(svc.stats().worker_restarts(), 5);
        assert_eq!(svc.stats().quarantined_requests(), 5);
        svc.call(HeteroQuery::Tree { source: 1 }, None).unwrap();
        svc.shutdown();
    }

    #[test]
    fn batch_runner_matches_dijkstra_and_counts_batches() {
        let (g, svc) = small_service(ServeConfig::default());
        let n = g.num_vertices() as u32;
        let epoch = svc.current_epoch();
        let mut runner = svc.batch_runner(&epoch);
        let queries: Vec<HeteroQuery> =
            (0..6u32).map(|i| HeteroQuery::Tree { source: i % n }).collect();
        let answers = runner.run(&queries);
        assert_eq!(answers.len(), queries.len());
        for (i, a) in answers.iter().enumerate() {
            let want = shortest_paths(g.forward(), i as u32 % n).dist;
            assert_eq!(*a, HeteroAnswer::Tree(want), "query {i}");
        }
        // The runner went through the real batch path: the multi-tree
        // ladder engaged and the batch counters registered.
        assert_eq!(svc.stats().multi_batches(), 1);
        assert!(svc.stats().mean_batch_occupancy() > 1.0);
        // A lone query takes the scalar rung, exactly like a worker.
        let lone = runner.run(&[HeteroQuery::Tree { source: 2 }]);
        assert_eq!(
            lone,
            vec![HeteroAnswer::Tree(shortest_paths(g.forward(), 2).dist)]
        );
        assert_eq!(
            svc.stats().report("t").get("scalar_fallbacks"),
            Some(&phast_obs::MetricValue::Count(1))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds max_k")]
    fn batch_runner_rejects_oversized_batches() {
        let (_, svc) = small_service(ServeConfig {
            max_k: 4,
            ..ServeConfig::default()
        });
        let queries: Vec<HeteroQuery> =
            (0..5u32).map(|source| HeteroQuery::Tree { source }).collect();
        let epoch = svc.current_epoch();
        svc.batch_runner(&epoch).run(&queries);
    }

    #[test]
    fn matrix_calls_answer_exactly_and_count_the_rung() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            max_k: 4,
            ..ServeConfig::default()
        });
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = vec![0, 7, n - 1, 3, 11, 5];
        let targets: Vec<u32> = vec![2, n / 2, n - 3];
        let rows = svc.matrix(sources.clone(), targets.clone(), None).unwrap();
        assert_eq!(rows.len(), sources.len());
        for (r, &s) in sources.iter().enumerate() {
            let want = shortest_paths(g.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(rows[r][i], want[t as usize], "{s} -> {t}");
            }
        }
        assert_eq!(svc.stats().matrix_requests(), 1);
        assert_eq!(svc.stats().matrix_rows(), sources.len() as u64);
        // 6 sources over k=4 lanes: two restricted sweeps.
        assert_eq!(svc.stats().matrix_chunks(), 2);
        assert_eq!(svc.stats().selection_builds(), 1);
        assert!(svc.stats().selection_vertices() >= targets.len() as u64);
    }

    #[test]
    fn repeated_matrix_targets_hit_the_selection_cache() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1, // one worker → one cache → deterministic hits
            ..ServeConfig::default()
        });
        let targets: Vec<u32> = vec![1, 9, 33];
        for s in [0u32, 5, 12] {
            let rows = svc.matrix(vec![s], targets.clone(), None).unwrap();
            let want = shortest_paths(g.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(rows[0][i], want[t as usize]);
            }
        }
        assert_eq!(svc.stats().selection_builds(), 1);
        assert_eq!(svc.stats().selection_cache_hits(), 2);
        // A different target list rebuilds.
        svc.matrix(vec![0], vec![4, 8], None).unwrap();
        assert_eq!(svc.stats().selection_builds(), 2);
    }

    #[test]
    fn matrix_validation_rejects_duplicates_and_bad_ids_typed() {
        let (_, svc) = small_service(ServeConfig::default());
        // Duplicate target → malformed (never silently deduped).
        let err = svc.matrix(vec![0], vec![3, 5, 3], None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
        assert!(err.message.contains("more than once"), "{}", err.message);
        // Out-of-range target → malformed.
        let err = svc.matrix(vec![0], vec![1_000_000], None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
        // Out-of-range source → bad_request, like every other shape.
        let err = svc.matrix(vec![1_000_000], vec![3], None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        // Empty axes → bad_request.
        let err = svc.matrix(vec![], vec![3], None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let err = svc.matrix(vec![0], vec![], None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert_eq!(svc.stats().rejected_invalid(), 5);
        // The service still answers after all the rejections.
        svc.matrix(vec![0], vec![3], None).unwrap();
    }

    #[test]
    fn poisoned_matrix_is_quarantined_and_cache_survives_rebuild() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            panic_on_source: Some(7),
            ..ServeConfig::default()
        });
        let targets = vec![1u32, 9];
        svc.matrix(vec![0], targets.clone(), None).unwrap();
        assert_eq!(svc.stats().selection_builds(), 1);
        // A poisoned matrix panics the worker: typed Internal reply,
        // quarantine counters, engine (and selection cache) rebuilt.
        let err = svc.matrix(vec![3, 7], targets.clone(), None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert_eq!(svc.stats().worker_restarts(), 1);
        assert_eq!(svc.stats().quarantined_requests(), 1);
        // The rebuilt worker lost its cache — same targets build again —
        // and still answers exactly.
        let rows = svc.matrix(vec![3], targets.clone(), None).unwrap();
        let want = shortest_paths(g.forward(), 3).dist;
        assert_eq!(rows[0], vec![want[1], want[9]]);
        assert_eq!(svc.stats().selection_builds(), 2);
    }

    #[test]
    fn batch_runner_matrix_matches_the_service_path() {
        let (g, svc) = small_service(ServeConfig::default());
        let epoch = svc.current_epoch();
        let mut runner = svc.batch_runner(&epoch);
        let sources = vec![0u32, 13, 44];
        let targets = vec![2u32, 6];
        let rows = runner.run_matrix(&sources, &targets);
        for (r, &s) in sources.iter().enumerate() {
            let want = shortest_paths(g.forward(), s).dist;
            assert_eq!(rows[r], vec![want[2], want[6]], "source {s}");
        }
        assert_eq!(svc.stats().matrix_requests(), 1);
    }

    #[test]
    fn lone_p2p_uses_the_ch_rung_and_matches() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let want = shortest_paths(g.forward(), 2).dist;
        let got = svc
            .call(HeteroQuery::Point { source: 2, target: 11 }, None)
            .unwrap();
        assert_eq!(got, HeteroAnswer::Point(want[11]));
        assert_eq!(
            svc.stats().report("t").get("p2p_fallbacks"),
            Some(&phast_obs::MetricValue::Count(1)),
            "a lone point-to-point request takes the bidirectional-CH rung"
        );
    }

    /// Rebuilds `g` with every weight scaled by `factor` and preprocesses
    /// it — the "new metric" of the swap tests.
    fn scaled_instance(g: &Graph, factor: u32) -> (Graph, Arc<Phast>, Arc<Hierarchy>) {
        let arcs = g
            .forward()
            .arcs()
            .iter()
            .map(|a| phast_graph::Arc::new(a.head, a.weight * factor))
            .collect();
        let g2 = Graph::from_csr(phast_graph::Csr::from_raw(
            g.forward().first().to_vec(),
            arcs,
        ));
        let h = contract_graph(&g2, &ContractionConfig::default());
        let p = PhastBuilder::new().build_with_hierarchy(&g2, &h);
        (g2, Arc::new(p), Arc::new(h))
    }

    #[test]
    fn swap_epoch_serves_the_new_metric_exactly() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            ..ServeConfig::default()
        });
        let (answer, epoch) = svc.call_with_epoch(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(answer, HeteroAnswer::Tree(shortest_paths(g.forward(), 3).dist));
        let (g2, p2, h2) = scaled_instance(&g, 3);
        assert_eq!(svc.swap_epoch(p2, Some(h2)).unwrap(), 2);
        assert_eq!(svc.epoch_id(), 2);
        assert_eq!(svc.stats().metric_swaps(), 1);
        // Tree, matrix and the CH point-to-point rung all answer on the
        // new metric.
        let (answer, epoch) = svc.call_with_epoch(HeteroQuery::Tree { source: 3 }, None).unwrap();
        assert_eq!(epoch, 2);
        let want = shortest_paths(g2.forward(), 3).dist;
        assert_eq!(answer, HeteroAnswer::Tree(want.clone()));
        let (rows, epoch) = svc.matrix_with_epoch(vec![3], vec![0, 9], None).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(rows[0], vec![want[0], want[9]]);
        let got = svc
            .call(HeteroQuery::Point { source: 3, target: 9 }, None)
            .unwrap();
        assert_eq!(got, HeteroAnswer::Point(want[9]));
    }

    #[test]
    fn swap_epoch_rejects_a_topology_change() {
        let (_, svc) = small_service(ServeConfig::default());
        let other = RoadNetworkConfig::new(4, 4, 2, Metric::TravelTime).build();
        let h = contract_graph(&other.graph, &ContractionConfig::default());
        let p = PhastBuilder::new().build_with_hierarchy(&other.graph, &h);
        let err = svc.swap_epoch(Arc::new(p), None).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert_eq!(svc.epoch_id(), 1, "a rejected swap publishes nothing");
        assert_eq!(svc.stats().metric_swaps(), 0);
    }

    #[test]
    fn jobs_admitted_before_a_swap_execute_on_their_admission_epoch() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(400),
            workers: 1,
            ..ServeConfig::default()
        });
        // The worker adopts this job and holds the window open, so the
        // swap below is published while the job is still pending.
        let rx = svc.submit(HeteroQuery::Tree { source: 5 }, None).unwrap();
        let (g2, p2, h2) = scaled_instance(&g, 2);
        svc.swap_epoch(p2, Some(h2)).unwrap();
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(
            got,
            HeteroAnswer::Tree(shortest_paths(g.forward(), 5).dist),
            "a pre-swap job must be answered on the metric it was admitted under"
        );
        assert!(
            svc.stats().queries_on_stale_metric() >= 1,
            "executing past a published swap is counted"
        );
        // And the next request runs on the new epoch.
        let (answer, epoch) = svc.call_with_epoch(HeteroQuery::Tree { source: 5 }, None).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(answer, HeteroAnswer::Tree(shortest_paths(g2.forward(), 5).dist));
    }

    #[test]
    fn epoch_history_is_a_bounded_ring_and_rollbacks_walk_back() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1,
            epoch_history: 2,
            ..ServeConfig::default()
        });
        for factor in [2u32, 3, 4] {
            let (_, p, h) = scaled_instance(&g, factor);
            svc.swap_epoch(p, Some(h)).unwrap();
        }
        // Three swaps through a capacity-2 ring: the base epoch was
        // evicted; only the ×2 and ×3 instances remain restorable.
        assert_eq!(svc.epoch_id(), 4);
        assert_eq!(svc.epoch_history_len(), 2);

        // First rollback displaces the ×4 epoch and re-publishes ×3
        // under a fresh, larger id stamped with the displaced id.
        assert_eq!(svc.rollback_epoch().unwrap(), 5);
        let cur = svc.current_epoch();
        assert_eq!(cur.rolled_back_from, Some(4));
        let (g3, _, _) = scaled_instance(&g, 3);
        let (answer, epoch) = svc.call_with_epoch(HeteroQuery::Tree { source: 7 }, None).unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(answer, HeteroAnswer::Tree(shortest_paths(g3.forward(), 7).dist));

        // The displaced ×4 epoch was discarded, not re-enrolled: a second
        // rollback keeps walking back, onto ×2.
        assert_eq!(svc.rollback_epoch().unwrap(), 6);
        let (g2, _, _) = scaled_instance(&g, 2);
        let (answer, epoch) = svc.call_with_epoch(HeteroQuery::Tree { source: 7 }, None).unwrap();
        assert_eq!(epoch, 6);
        assert_eq!(answer, HeteroAnswer::Tree(shortest_paths(g2.forward(), 7).dist));
        assert_eq!(svc.stats().epoch_rollbacks(), 2);

        // History exhausted → typed failure, current epoch untouched.
        let err = svc.rollback_epoch().unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert_eq!(svc.epoch_id(), 6);
        assert_eq!(svc.stats().epoch_rollbacks(), 2);
    }

    #[test]
    fn rollback_without_history_is_a_typed_error() {
        // Fresh service: nothing was ever swapped.
        let (g, svc) = small_service(ServeConfig::default());
        let err = svc.rollback_epoch().unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(
            err.message.contains("no predecessor epoch"),
            "{}",
            err.message
        );
        assert_eq!(svc.epoch_id(), 1);
        assert_eq!(svc.stats().epoch_rollbacks(), 0);

        // `epoch_history: 0` disables the ring entirely: even after a
        // swap there is nothing to roll back to.
        let (_, svc) = small_service(ServeConfig {
            epoch_history: 0,
            ..ServeConfig::default()
        });
        let (_, p, h) = scaled_instance(&g, 2);
        svc.swap_epoch(p, Some(h)).unwrap();
        assert_eq!(svc.epoch_history_len(), 0);
        let err = svc.rollback_epoch().unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert_eq!(svc.epoch_id(), 2);
    }

    #[test]
    fn selection_cache_is_a_bounded_lru() {
        let (g, svc) = small_service(ServeConfig {
            window: Duration::from_millis(0),
            workers: 1, // one worker → one cache → deterministic counters
            ..ServeConfig::default()
        });
        let list = |i: usize| vec![i as u32, i as u32 + 20];
        for i in 0..SELECTION_CACHE_CAPACITY {
            svc.matrix(vec![0], list(i), None).unwrap();
        }
        assert_eq!(svc.stats().selection_builds(), SELECTION_CACHE_CAPACITY as u64);
        assert_eq!(svc.stats().selection_cache_evictions(), 0);
        // Touch the oldest entry: a hit, and it moves to the MRU slot.
        svc.matrix(vec![1], list(0), None).unwrap();
        assert_eq!(svc.stats().selection_cache_hits(), 1);
        // One more distinct list overflows the cache and evicts the LRU
        // entry (list 1, not the just-touched list 0).
        svc.matrix(vec![0], list(SELECTION_CACHE_CAPACITY), None).unwrap();
        assert_eq!(svc.stats().selection_cache_evictions(), 1);
        svc.matrix(vec![2], list(1), None).unwrap(); // evicted → rebuilds
        assert_eq!(
            svc.stats().selection_builds(),
            SELECTION_CACHE_CAPACITY as u64 + 2
        );
        let rows = svc.matrix(vec![3], list(0), None).unwrap(); // retained → hit
        assert_eq!(svc.stats().selection_cache_hits(), 2);
        let want = shortest_paths(g.forward(), 3).dist;
        assert_eq!(rows[0], vec![want[0], want[20]]);
    }
}
