//! Service-level counters, aggregated on top of the per-batch
//! [`QueryStats`] the engines already produce.
//!
//! All counters are lock-free atomics except the engine aggregate (a
//! mutex-guarded [`QueryStats`] sum, touched once per *batch*, not per
//! request). [`ServiceStats::report`] exports everything through the
//! `phast-obs` [`Report`] JSON schema, so service metrics line up with the
//! engine metrics the rest of the workspace emits.

use phast_obs::{QueryStats, Report};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters of one [`Service`](crate::Service) instance.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    admitted: AtomicU64,
    /// Requests answered successfully.
    served: AtomicU64,
    /// Requests answered with a typed error (any kind).
    failed: AtomicU64,
    /// Requests rejected because the admission queue was full.
    rejected_queue_full: AtomicU64,
    /// Requests shed before admission because the queue depth (or queue
    /// latency) crossed the overload threshold; each got a typed
    /// `overloaded` reply with a `retry_after_ms` hint.
    shed_overload: AtomicU64,
    /// Connections refused with a typed `busy` reply because the
    /// concurrent-connection cap was reached.
    refused_busy: AtomicU64,
    /// Connections reaped because a socket read or write exceeded the
    /// per-connection I/O timeout (slowloris writers, dead clients).
    timed_out_connections: AtomicU64,
    /// `accept()` failures in the listener loop (e.g. EMFILE); each backs
    /// the accept loop off instead of tight-spinning.
    accept_errors: AtomicU64,
    /// Request lines rejected as malformed or bad before admission.
    rejected_invalid: AtomicU64,
    /// Requests whose deadline expired before their batch formed.
    deadline_misses: AtomicU64,
    /// Batched sweeps executed (occupancy >= 2 lives in `multi_batches`).
    batches: AtomicU64,
    /// Real (non-padding) requests summed over all batched sweeps.
    batched_requests: AtomicU64,
    /// Batched sweeps that served two or more requests.
    multi_batches: AtomicU64,
    /// Padding lanes added to fill short batches to the engine width.
    padded_lanes: AtomicU64,
    /// Lone requests served by the scalar single-tree engine.
    scalar_fallbacks: AtomicU64,
    /// Lone point-to-point requests served by the bidirectional CH query.
    p2p_fallbacks: AtomicU64,
    /// Times a worker's engine state was torn down and rebuilt after a
    /// panic escaped batch execution.
    worker_restarts: AtomicU64,
    /// Requests that were in a batch whose execution panicked; each got a
    /// typed `internal` error reply instead of a dropped connection.
    quarantined_requests: AtomicU64,
    /// Many-to-many matrix requests served on the restricted rung.
    matrix_requests: AtomicU64,
    /// Matrix rows (sources) computed over all matrix requests.
    matrix_rows: AtomicU64,
    /// Restricted `k`-lane sweeps run by matrix requests (sources are
    /// chunked to the engine width; the selection is shared across all
    /// chunks of a request).
    matrix_chunks: AtomicU64,
    /// RPHAST target selections built by matrix requests.
    selection_builds: AtomicU64,
    /// Matrix requests that reused a worker's cached selection (same
    /// target list as that worker's previous matrix request).
    selection_cache_hits: AtomicU64,
    /// Vertices selected, summed over all selection builds (cache hits
    /// add nothing — no construction work happened).
    selection_vertices: AtomicU64,
    /// Selections evicted from a worker's bounded LRU cache to make room
    /// for a newer target list.
    selection_cache_evictions: AtomicU64,
    /// Metric epochs published via [`Service::swap_epoch`](crate::Service::swap_epoch).
    metric_swaps: AtomicU64,
    /// Microseconds spent publishing metric swaps (admission-side cost
    /// only; workers rebuild engines off the publisher's critical path).
    swap_latency_us: AtomicU64,
    /// Requests executed on an epoch older than the currently published
    /// one — admitted before a swap, honoring their admission snapshot.
    queries_on_stale_metric: AtomicU64,
    /// Polls of the watched weights file that ended in a rejection
    /// (unreadable file, bad JSON, failed customization). The previous
    /// epoch keeps serving; this counter is how operators notice a
    /// persistently broken weights feed that stderr alone would bury.
    watch_errors: AtomicU64,
    /// Candidate metrics whose canary queries diverged from the reference
    /// Dijkstra — rejected *before* publication, so no live query ever
    /// ran on them.
    canary_failures: AtomicU64,
    /// Distinct `(name, version)` metrics quarantined (canary failure or
    /// guard rollback); a quarantined metric is never retried.
    quarantined_metrics: AtomicU64,
    /// Epochs re-published from the rollback history after a bad swap
    /// ([`Service::rollback_epoch`](crate::Service::rollback_epoch)).
    epoch_rollbacks: AtomicU64,
    /// Post-swap guard windows that tripped on a health regression and
    /// triggered an automatic rollback.
    guard_trips: AtomicU64,
    /// Sum of per-batch engine statistics.
    engine: Mutex<QueryStats>,
}

macro_rules! bumpers {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self, n: u64) {
            self.$field.fetch_add(n, Ordering::Relaxed);
        }
    )*};
}

impl ServiceStats {
    bumpers! {
        /// Counts admitted requests.
        add_admitted => admitted,
        /// Counts successful replies.
        add_served => served,
        /// Counts typed-error replies.
        add_failed => failed,
        /// Counts queue-full rejections.
        add_rejected_queue_full => rejected_queue_full,
        /// Counts pre-admission overload sheds.
        add_shed_overload => shed_overload,
        /// Counts busy connection refusals.
        add_refused_busy => refused_busy,
        /// Counts connections reaped by the I/O timeout.
        add_timed_out_connections => timed_out_connections,
        /// Counts listener `accept()` failures.
        add_accept_errors => accept_errors,
        /// Counts malformed/bad request rejections.
        add_rejected_invalid => rejected_invalid,
        /// Counts deadline misses.
        add_deadline_misses => deadline_misses,
        /// Counts executed batched sweeps.
        add_batches => batches,
        /// Counts real requests inside batched sweeps.
        add_batched_requests => batched_requests,
        /// Counts batches serving >= 2 requests.
        add_multi_batches => multi_batches,
        /// Counts padding lanes.
        add_padded_lanes => padded_lanes,
        /// Counts scalar fallbacks.
        add_scalar_fallbacks => scalar_fallbacks,
        /// Counts bidirectional-CH fallbacks.
        add_p2p_fallbacks => p2p_fallbacks,
        /// Counts worker restarts after an escaped panic.
        add_worker_restarts => worker_restarts,
        /// Counts requests quarantined by a panicked batch.
        add_quarantined_requests => quarantined_requests,
        /// Counts matrix requests served on the restricted rung.
        add_matrix_requests => matrix_requests,
        /// Counts matrix rows (sources) computed.
        add_matrix_rows => matrix_rows,
        /// Counts restricted sweeps run by matrix requests.
        add_matrix_chunks => matrix_chunks,
        /// Counts RPHAST selection builds.
        add_selection_builds => selection_builds,
        /// Counts selection-cache hits.
        add_selection_cache_hits => selection_cache_hits,
        /// Counts selected vertices over all builds.
        add_selection_vertices => selection_vertices,
        /// Counts selections evicted from the bounded LRU cache.
        add_selection_cache_evictions => selection_cache_evictions,
        /// Counts published metric swaps.
        add_metric_swaps => metric_swaps,
        /// Accumulates swap publication latency in microseconds.
        add_swap_latency_us => swap_latency_us,
        /// Counts requests executed on a superseded metric epoch.
        add_queries_on_stale_metric => queries_on_stale_metric,
        /// Counts rejected weights-file polls.
        add_watch_errors => watch_errors,
        /// Counts candidate metrics rejected by the pre-publish canary.
        add_canary_failures => canary_failures,
        /// Counts metrics quarantined after a canary failure or guard trip.
        add_quarantined_metrics => quarantined_metrics,
        /// Counts epochs re-published from the rollback history.
        add_epoch_rollbacks => epoch_rollbacks,
        /// Counts tripped post-swap guard windows.
        add_guard_trips => guard_trips,
    }

    /// Folds one batch's engine statistics into the running aggregate.
    pub fn merge_query(&self, q: &QueryStats) {
        // Poison-tolerant: a worker that panicked *while* holding this
        // lock must not take the whole stats pipeline down with it — the
        // aggregate is monotone counters, so the partial state is usable.
        let mut agg = self
            .engine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        agg.counters.merge(&q.counters);
        agg.upward_time += q.upward_time;
        agg.sweep_time += q.sweep_time;
    }

    /// Requests answered successfully so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Batched sweeps executed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Batched sweeps that served two or more requests.
    pub fn multi_batches(&self) -> u64 {
        self.multi_batches.load(Ordering::Relaxed)
    }

    /// Queue-full rejections so far.
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
    }

    /// Pre-admission overload sheds so far.
    pub fn shed_overload(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
    }

    /// Busy connection refusals so far.
    pub fn refused_busy(&self) -> u64 {
        self.refused_busy.load(Ordering::Relaxed)
    }

    /// Connections reaped by the I/O timeout so far.
    pub fn timed_out_connections(&self) -> u64 {
        self.timed_out_connections.load(Ordering::Relaxed)
    }

    /// Listener `accept()` failures so far.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Request lines rejected as malformed or bad so far.
    pub fn rejected_invalid(&self) -> u64 {
        self.rejected_invalid.load(Ordering::Relaxed)
    }

    /// Deadline misses so far.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    /// Worker restarts (engine rebuilds after an escaped panic) so far.
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts.load(Ordering::Relaxed)
    }

    /// Requests quarantined by panicked batches so far.
    pub fn quarantined_requests(&self) -> u64 {
        self.quarantined_requests.load(Ordering::Relaxed)
    }

    /// Matrix requests served on the restricted rung so far.
    pub fn matrix_requests(&self) -> u64 {
        self.matrix_requests.load(Ordering::Relaxed)
    }

    /// Matrix rows (sources) computed so far.
    pub fn matrix_rows(&self) -> u64 {
        self.matrix_rows.load(Ordering::Relaxed)
    }

    /// Restricted sweeps run by matrix requests so far.
    pub fn matrix_chunks(&self) -> u64 {
        self.matrix_chunks.load(Ordering::Relaxed)
    }

    /// RPHAST selection builds so far.
    pub fn selection_builds(&self) -> u64 {
        self.selection_builds.load(Ordering::Relaxed)
    }

    /// Selection-cache hits so far.
    pub fn selection_cache_hits(&self) -> u64 {
        self.selection_cache_hits.load(Ordering::Relaxed)
    }

    /// Vertices selected over all selection builds so far.
    pub fn selection_vertices(&self) -> u64 {
        self.selection_vertices.load(Ordering::Relaxed)
    }

    /// Selections evicted from the bounded LRU cache so far.
    pub fn selection_cache_evictions(&self) -> u64 {
        self.selection_cache_evictions.load(Ordering::Relaxed)
    }

    /// Metric swaps published so far.
    pub fn metric_swaps(&self) -> u64 {
        self.metric_swaps.load(Ordering::Relaxed)
    }

    /// Total swap publication latency in microseconds so far.
    pub fn swap_latency_us(&self) -> u64 {
        self.swap_latency_us.load(Ordering::Relaxed)
    }

    /// Requests executed on a superseded metric epoch so far.
    pub fn queries_on_stale_metric(&self) -> u64 {
        self.queries_on_stale_metric.load(Ordering::Relaxed)
    }

    /// Rejected weights-file polls so far.
    pub fn watch_errors(&self) -> u64 {
        self.watch_errors.load(Ordering::Relaxed)
    }

    /// Candidate metrics rejected by the pre-publish canary so far.
    pub fn canary_failures(&self) -> u64 {
        self.canary_failures.load(Ordering::Relaxed)
    }

    /// Metrics quarantined (canary failure or guard rollback) so far.
    pub fn quarantined_metrics(&self) -> u64 {
        self.quarantined_metrics.load(Ordering::Relaxed)
    }

    /// Epochs re-published from the rollback history so far.
    pub fn epoch_rollbacks(&self) -> u64 {
        self.epoch_rollbacks.load(Ordering::Relaxed)
    }

    /// Tripped post-swap guard windows so far.
    pub fn guard_trips(&self) -> u64 {
        self.guard_trips.load(Ordering::Relaxed)
    }

    /// Mean number of real requests per batched sweep (0 when no batch
    /// has run yet). The acceptance gate for "batching actually happens"
    /// is this ratio exceeding 1 under concurrent load.
    pub fn mean_batch_occupancy(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            0.0
        } else {
            self.batched_requests.load(Ordering::Relaxed) as f64 / b as f64
        }
    }

    /// Exports every counter (plus the engine aggregate) as a report.
    pub fn report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title);
        r.push_count("requests_admitted", self.admitted.load(Ordering::Relaxed))
            .push_count("requests_served", self.served.load(Ordering::Relaxed))
            .push_count("requests_failed", self.failed.load(Ordering::Relaxed))
            .push_count(
                "rejected_queue_full",
                self.rejected_queue_full.load(Ordering::Relaxed),
            )
            .push_count("shed_overload", self.shed_overload.load(Ordering::Relaxed))
            .push_count("refused_busy", self.refused_busy.load(Ordering::Relaxed))
            .push_count(
                "timed_out_connections",
                self.timed_out_connections.load(Ordering::Relaxed),
            )
            .push_count("accept_errors", self.accept_errors.load(Ordering::Relaxed))
            .push_count(
                "rejected_invalid",
                self.rejected_invalid.load(Ordering::Relaxed),
            )
            .push_count("deadline_misses", self.deadline_misses.load(Ordering::Relaxed))
            .push_count("batches", self.batches.load(Ordering::Relaxed))
            .push_count(
                "batched_requests",
                self.batched_requests.load(Ordering::Relaxed),
            )
            .push_count("multi_batches", self.multi_batches.load(Ordering::Relaxed))
            .push_count("padded_lanes", self.padded_lanes.load(Ordering::Relaxed))
            .push_count(
                "scalar_fallbacks",
                self.scalar_fallbacks.load(Ordering::Relaxed),
            )
            .push_count("p2p_fallbacks", self.p2p_fallbacks.load(Ordering::Relaxed))
            .push_count(
                "worker_restarts",
                self.worker_restarts.load(Ordering::Relaxed),
            )
            .push_count(
                "quarantined_requests",
                self.quarantined_requests.load(Ordering::Relaxed),
            )
            .push_count(
                "matrix_requests",
                self.matrix_requests.load(Ordering::Relaxed),
            )
            .push_count("matrix_rows", self.matrix_rows.load(Ordering::Relaxed))
            .push_count("matrix_chunks", self.matrix_chunks.load(Ordering::Relaxed))
            .push_count(
                "selection_builds",
                self.selection_builds.load(Ordering::Relaxed),
            )
            .push_count(
                "selection_cache_hits",
                self.selection_cache_hits.load(Ordering::Relaxed),
            )
            .push_count(
                "selection_vertices",
                self.selection_vertices.load(Ordering::Relaxed),
            )
            .push_count(
                "selection_cache_evictions",
                self.selection_cache_evictions.load(Ordering::Relaxed),
            )
            .push_count("metric_swaps", self.metric_swaps.load(Ordering::Relaxed))
            .push_count(
                "swap_latency_us",
                self.swap_latency_us.load(Ordering::Relaxed),
            )
            .push_count(
                "queries_on_stale_metric",
                self.queries_on_stale_metric.load(Ordering::Relaxed),
            )
            .push_count("watch_errors", self.watch_errors.load(Ordering::Relaxed))
            .push_count(
                "canary_failures",
                self.canary_failures.load(Ordering::Relaxed),
            )
            .push_count(
                "quarantined_metrics",
                self.quarantined_metrics.load(Ordering::Relaxed),
            )
            .push_count(
                "epoch_rollbacks",
                self.epoch_rollbacks.load(Ordering::Relaxed),
            )
            .push_count("guard_trips", self.guard_trips.load(Ordering::Relaxed))
            .push_ratio("mean_batch_occupancy", self.mean_batch_occupancy());
        let agg = *self
            .engine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        agg.counters.fill_report(&mut r);
        r.push_time("upward_time", agg.upward_time);
        r.push_time("sweep_time", agg.sweep_time);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn occupancy_is_batched_requests_over_batches() {
        let s = ServiceStats::default();
        assert_eq!(s.mean_batch_occupancy(), 0.0);
        s.add_batches(2);
        s.add_batched_requests(7);
        s.add_multi_batches(2);
        assert!((s.mean_batch_occupancy() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn report_carries_service_and_engine_metrics() {
        let s = ServiceStats::default();
        s.add_served(5);
        let mut q = QueryStats::default();
        q.counters.add_upward_settled(11);
        q.upward_time = Duration::from_micros(3);
        s.merge_query(&q);
        s.merge_query(&q);
        let r = s.report("svc");
        assert_eq!(
            r.get("requests_served"),
            Some(&phast_obs::MetricValue::Count(5))
        );
        assert_eq!(
            r.get("upward_settled"),
            Some(&phast_obs::MetricValue::Count(22))
        );
        assert_eq!(
            r.get("upward_time"),
            Some(&phast_obs::MetricValue::Time(Duration::from_micros(6)))
        );
    }
}
