//! Per-connection hardening primitives: a registry that bounds and can
//! forcibly close live connections, and a line reader that bounds the
//! bytes one request line may pin.
//!
//! The registry is what lets [`Server::shutdown`](crate::Server::shutdown)
//! finish without waiting on clients: it keeps a clone of every live
//! connection's socket handle, so shutdown can `shutdown(Both)` each of
//! them and unblock the connection threads mid-read. It also enforces the
//! concurrent-connection cap — a connection that does not fit is refused
//! with a typed `busy` reply before a thread is ever spawned for it.
//!
//! The [`BoundedLineReader`] exists because `BufRead::read_line` happily
//! buffers an attacker-controlled number of bytes looking for a `\n`.
//! Here a line that exceeds the cap is reported as
//! [`LineOutcome::TooLong`] the moment the cap is crossed — the oversized
//! tail is never accumulated.

use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tracks every live connection's socket handle, bounded by `max_conns`.
#[derive(Debug)]
pub struct ConnRegistry {
    max_conns: usize,
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    /// A registry admitting at most `max_conns` concurrent connections.
    pub fn new(max_conns: usize) -> Arc<ConnRegistry> {
        assert!(max_conns > 0, "need room for at least one connection");
        Arc::new(ConnRegistry {
            max_conns,
            next_id: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
        })
    }

    /// Registers `stream`, returning a guard that deregisters on drop, or
    /// `None` when the cap is reached (the caller refuses the connection).
    pub fn try_register(self: &Arc<Self>, stream: &TcpStream) -> Option<ConnGuard> {
        let handle = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut live = self.live.lock().unwrap();
        if live.len() >= self.max_conns {
            return None;
        }
        live.insert(id, handle);
        Some(ConnGuard {
            registry: Arc::clone(self),
            id,
        })
    }

    /// Live connections right now.
    pub fn live(&self) -> usize {
        self.live.lock().unwrap().len()
    }

    /// Forcibly closes every live connection's socket. The connection
    /// threads observe the close as an I/O error on their next read or
    /// write and exit; their guards deregister them.
    pub fn close_all(&self) {
        let live = self.live.lock().unwrap();
        for stream in live.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Blocks until every connection has deregistered or `timeout`
    /// passes; returns whether the registry drained.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.live() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

/// Deregisters one connection on drop.
#[derive(Debug)]
pub struct ConnGuard {
    registry: Arc<ConnRegistry>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.registry.live.lock().unwrap().remove(&self.id);
    }
}

/// One read attempt's result, with the pathological cases made explicit.
#[derive(Debug)]
pub enum LineOutcome {
    /// A complete line (without its `\n`), lossily decoded — invalid
    /// UTF-8 still reaches the parser, which rejects it as malformed
    /// JSON rather than tearing the connection down here.
    Line(String),
    /// Clean end of stream (a partial unterminated line is discarded).
    Eof,
    /// The line crossed the byte cap before a `\n` arrived. The caller
    /// replies `malformed` and closes — there is no way to resynchronize
    /// with a writer that is this far out of protocol.
    TooLong,
}

/// A line reader with a hard cap on buffered bytes per line.
#[derive(Debug)]
pub struct BoundedLineReader<R> {
    inner: R,
    max_line_bytes: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for `\n` (avoid re-scanning).
    scanned: usize,
}

impl<R: Read> BoundedLineReader<R> {
    /// Caps each line at `max_line_bytes` bytes (excluding the `\n`).
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        BoundedLineReader {
            inner,
            max_line_bytes,
            buf: Vec::new(),
            scanned: 0,
        }
    }

    /// Reads the next line. I/O errors (including read timeouts) surface
    /// as `Err`; the protocol-level pathologies as their [`LineOutcome`].
    pub fn read_line(&mut self) -> std::io::Result<LineOutcome> {
        loop {
            if let Some(nl) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let nl = self.scanned + nl;
                let line = String::from_utf8_lossy(&self.buf[..nl]).into_owned();
                self.buf.drain(..=nl);
                self.scanned = 0;
                return Ok(LineOutcome::Line(line));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_line_bytes {
                // Past the cap with no newline in sight: stop buffering.
                self.buf.clear();
                self.scanned = 0;
                return Ok(LineOutcome::TooLong);
            }
            let mut chunk = [0u8; 4096];
            // Never read past the cap by more than one chunk.
            let want = chunk
                .len()
                .min(self.max_line_bytes + 1 - self.buf.len().min(self.max_line_bytes));
            match self.inner.read(&mut chunk[..want])? {
                0 => return Ok(LineOutcome::Eof),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(input: &[u8], cap: usize) -> Vec<String> {
        let mut r = BoundedLineReader::new(input, cap);
        let mut out = Vec::new();
        loop {
            match r.read_line().unwrap() {
                LineOutcome::Line(l) => out.push(l),
                LineOutcome::Eof => return out,
                LineOutcome::TooLong => {
                    out.push("<TOOLONG>".into());
                    return out;
                }
            }
        }
    }

    #[test]
    fn splits_lines_and_discards_trailing_partial() {
        assert_eq!(lines(b"a\nbb\nccc", 100), vec!["a", "bb"]);
        assert_eq!(lines(b"", 100), Vec::<String>::new());
        assert_eq!(lines(b"\n\n", 100), vec!["", ""]);
    }

    #[test]
    fn caps_an_unterminated_line() {
        let long = vec![b'x'; 10_000];
        assert_eq!(lines(&long, 100), vec!["<TOOLONG>"]);
        // Exactly at the cap with a newline is still fine.
        let mut ok = vec![b'y'; 100];
        ok.push(b'\n');
        assert_eq!(lines(&ok, 100), vec!["y".repeat(100)]);
    }

    #[test]
    fn invalid_utf8_is_decoded_lossily_not_fatal() {
        let out = lines(b"\xff\xfe\xfd\n", 100);
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_empty());
    }

    #[test]
    fn registry_caps_and_closes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        let reg = ConnRegistry::new(1);
        let g1 = reg.try_register(&s1).expect("first fits");
        assert!(reg.try_register(&s2).is_none(), "cap of 1 is enforced");
        assert_eq!(reg.live(), 1);
        drop(g1);
        assert_eq!(reg.live(), 0);
        let _g2 = reg.try_register(&s2).expect("slot freed");
        drop(c1);
        drop(c2);
    }

    #[test]
    fn close_all_unblocks_a_reader() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let reg = ConnRegistry::new(4);
        let guard = reg.try_register(&server_side).unwrap();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 16];
            let n = (&server_side).read(&mut buf); // blocks until close_all
            drop(guard);
            n
        });
        std::thread::sleep(Duration::from_millis(50));
        reg.close_all();
        // The blocked read returns (0 or an error — either unblocks).
        let _ = reader.join().unwrap();
        assert!(reg.wait_drained(Duration::from_secs(2)));
        drop(client);
    }
}
