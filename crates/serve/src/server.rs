//! The std-only TCP front end: one accept loop, one thread per
//! connection, line-delimited JSON in both directions.
//!
//! Robustness contract: a malformed or invalid request line produces a
//! typed error *reply* and the connection keeps serving; only an I/O
//! failure (or the client closing its half) ends a connection thread.
//! [`Server::shutdown`] stops the accept loop, then drains the scheduler
//! so every admitted request is answered before the process moves on.

use crate::protocol::{self, Op};
use crate::scheduler::Service;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP front end over a [`Service`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    service: Arc<Service>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    pub fn spawn(service: Arc<Service>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("phast-serve-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &service))?
        };
        Ok(Server {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            service,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this front end.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, then drains the scheduler (graceful shutdown).
    /// Connection threads end when their clients disconnect; requests
    /// they had already admitted are answered by the drain.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.service.shutdown();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, service: &Arc<Service>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        let _ = std::thread::Builder::new()
            .name("phast-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(&stream, &service);
            });
    }
}

/// Runs one connection until EOF or an I/O error; every request line gets
/// exactly one reply line.
fn serve_connection(stream: &TcpStream, service: &Service) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(service, &line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Parses and executes one request line, returning the reply line. Never
/// panics on client input — every failure maps to a typed error reply.
pub fn handle_line(service: &Service, line: &str) -> String {
    match protocol::parse_request(line) {
        Err(err) => {
            service.stats().add_rejected_invalid(1);
            protocol::encode_error(None, &err)
        }
        Ok(req) => match req.op {
            Op::Stats => {
                protocol::encode_report(req.id, &service.stats().report("phast-serve"))
            }
            Op::Query(query) => {
                let deadline = req.deadline_ms.map(Duration::from_millis);
                match service.call(query, deadline) {
                    Ok(answer) => protocol::encode_answer(req.id, &answer),
                    Err(err) => protocol::encode_error(req.id, &err),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_reply, ErrorKind, Reply};
    use crate::scheduler::ServeConfig;
    use phast_core::HeteroAnswer;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn handle_line_maps_failures_to_typed_replies() {
        let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
        let svc = Service::for_graph(
            &net.graph,
            ServeConfig {
                window: Duration::from_millis(0),
                ..ServeConfig::default()
            },
        );
        let cases = [
            ("garbage", ErrorKind::Malformed),
            (r#"{"op":"fly","source":0}"#, ErrorKind::Malformed),
            (r#"{"op":"tree"}"#, ErrorKind::BadRequest),
            (r#"{"op":"tree","source":999999}"#, ErrorKind::BadRequest),
        ];
        for (line, kind) in cases {
            match decode_reply(&handle_line(&svc, line)).unwrap() {
                Reply::Error(e) => assert_eq!(e.kind, kind, "line {line}"),
                other => panic!("expected error for {line}, got {other:?}"),
            }
        }
        // And after all those failures a valid request still works.
        match decode_reply(&handle_line(&svc, r#"{"op":"p2p","source":0,"target":1}"#)).unwrap()
        {
            Reply::Answer(HeteroAnswer::Point(_)) => {}
            other => panic!("expected answer, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let net = RoadNetworkConfig::new(6, 6, 4, Metric::TravelTime).build();
        let svc = Service::for_graph(&net.graph, ServeConfig::default());
        let srv = Server::spawn(svc, "127.0.0.1:0").unwrap();
        assert_ne!(srv.local_addr().port(), 0);
        srv.shutdown();
    }
}
