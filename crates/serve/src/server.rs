//! The std-only TCP front end: one accept loop, one thread per
//! connection, line-delimited JSON in both directions.
//!
//! Robustness contract: a malformed or invalid request line produces a
//! typed error *reply* and the connection keeps serving; only an I/O
//! failure (or the client closing its half) ends a connection thread.
//! The edge is hardened against hostile and broken clients:
//!
//! * **Bounded connections.** At most `ServeConfig::max_conns` live
//!   connections; one past the cap gets a typed `busy` reply and an
//!   immediate close (`refused_busy` counter), so accepted clients keep
//!   their latency instead of sharing it with a flood.
//! * **Socket timeouts.** Every connection carries read/write timeouts
//!   (`ServeConfig::io_timeout`). A slowloris writer or a dead client is
//!   reaped when its socket stalls past the timeout
//!   (`timed_out_connections` counter) — it cannot pin a thread forever.
//! * **Bounded request lines.** A line longer than
//!   `ServeConfig::max_line_bytes` is answered with a typed `malformed`
//!   reply and the connection is closed; the oversized tail is never
//!   buffered (see [`BoundedLineReader`]).
//! * **Accept-loop backoff.** Persistent `accept()` failures (e.g.
//!   EMFILE) back off with a capped sleep and count `accept_errors`
//!   instead of tight-spinning the listener thread.
//! * **Forced shutdown.** [`Server::shutdown`] stops the accept loop,
//!   closes every live connection through the [`ConnRegistry`] (instead
//!   of waiting for clients to hang up), then drains the scheduler so
//!   every admitted request is answered before the process moves on.

use crate::conn::{BoundedLineReader, ConnRegistry, LineOutcome};
use crate::protocol::{self, ErrorKind, Op, ServeError};
use crate::scheduler::Service;
use phast_core::HeteroAnswer;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// First sleep after an `accept()` failure; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`], resets on success.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(5);

/// Cap of the accept-failure backoff: EMFILE-style conditions clear when
/// connections close, so the loop must keep probing.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// How long [`Server::shutdown`] waits for connection threads to observe
/// their closed sockets before giving up on the stragglers.
const SHUTDOWN_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A running TCP front end over a [`Service`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    service: Arc<Service>,
    registry: Arc<ConnRegistry>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections. Connection limits and timeouts come
    /// from the service's [`ServeConfig`](crate::ServeConfig).
    pub fn spawn(service: Arc<Service>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = ConnRegistry::new(service.config().max_conns);
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("phast-serve-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &service, &registry))?
        };
        Ok(Server {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            service,
            registry,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this front end.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Live connections right now.
    pub fn live_connections(&self) -> usize {
        self.registry.live()
    }

    /// Stops accepting, force-closes live connections, then drains the
    /// scheduler (graceful for admitted requests, forceful for sockets).
    /// A client mid-request observes a closed connection, not a hang.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.registry.close_all();
        self.registry.wait_drained(SHUTDOWN_DRAIN_TIMEOUT);
        self.service.shutdown();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
        self.registry.close_all();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    service: &Arc<Service>,
    registry: &Arc<ConnRegistry>,
) {
    let mut backoff = ACCEPT_BACKOFF_START;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => {
                backoff = ACCEPT_BACKOFF_START;
                s
            }
            Err(_) => {
                // EMFILE and friends: pressure that only clears when
                // connections close. Sleep instead of spinning, but keep
                // probing — and count it, so the condition is visible.
                service.stats().add_accept_errors(1);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        let Some(guard) = registry.try_register(&stream) else {
            refuse_busy(&stream, service);
            continue;
        };
        let svc = Arc::clone(service);
        if std::thread::Builder::new()
            .name("phast-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(&stream, &svc);
                drop(guard);
            })
            .is_err()
        {
            // Thread spawn failed (resource exhaustion). The closure —
            // and with it the stream and its registry guard — is dropped
            // by the failed spawn, closing and deregistering the
            // connection; only the counter is left to us.
            service.stats().add_accept_errors(1);
        }
    }
}

/// Writes the one-line `busy` refusal and closes. Best-effort: a client
/// that cannot even take one line just sees the close.
fn refuse_busy(stream: &TcpStream, service: &Service) {
    service.stats().add_refused_busy(1);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let err = ServeError::new(
        ErrorKind::Busy,
        format!(
            "connection limit {} reached; retry shortly",
            service.config().max_conns
        ),
    );
    let mut line = protocol::encode_error(None, &err);
    line.push('\n');
    let _ = (&*stream).write_all(line.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Whether an I/O error is a socket-timeout expiry (platform-dependent
/// spelling: `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Runs one connection until EOF, an I/O error or timeout, or an
/// oversized request line; every complete request line gets exactly one
/// reply line.
fn serve_connection(stream: &TcpStream, service: &Service) -> std::io::Result<()> {
    let cfg = service.config();
    stream.set_nodelay(true).ok();
    let io_timeout = (!cfg.io_timeout.is_zero()).then_some(cfg.io_timeout);
    stream.set_read_timeout(io_timeout)?;
    stream.set_write_timeout(io_timeout)?;
    let mut reader = BoundedLineReader::new(stream.try_clone()?, cfg.max_line_bytes);
    let mut writer = BufWriter::new(stream.try_clone()?);
    loop {
        let reply = match reader.read_line() {
            Ok(LineOutcome::Eof) => return Ok(()),
            Ok(LineOutcome::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(service, &line)
            }
            Ok(LineOutcome::TooLong) => {
                // Reply, then close: there is no resynchronizing with a
                // writer this far out of protocol.
                service.stats().add_rejected_invalid(1);
                let err = ServeError::new(
                    ErrorKind::Malformed,
                    format!("request line exceeds {} bytes", cfg.max_line_bytes),
                );
                let _ = write_reply(&mut writer, &protocol::encode_error(None, &err));
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Ok(());
            }
            Err(e) if is_timeout(&e) => {
                // Slowloris writer or dead client: reap the connection.
                service.stats().add_timed_out_connections(1);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        if let Err(e) = write_reply(&mut writer, &reply) {
            if is_timeout(&e) {
                // A reader that stopped draining its replies is as dead
                // as a writer that stopped sending.
                service.stats().add_timed_out_connections(1);
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            return Err(e);
        }
    }
}

fn write_reply(writer: &mut impl Write, reply: &str) -> std::io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Parses and executes one request line, returning the reply line. Never
/// panics on client input — every failure maps to a typed error reply.
pub fn handle_line(service: &Service, line: &str) -> String {
    match protocol::parse_request(line) {
        Err(err) => {
            service.stats().add_rejected_invalid(1);
            protocol::encode_error(None, &err)
        }
        Ok(req) => match req.op {
            Op::Stats => {
                protocol::encode_report(req.id, &service.stats().report("phast-serve"))
            }
            Op::Query(query) => {
                let deadline = req.deadline_ms.map(Duration::from_millis);
                match service.call_with_epoch(query, deadline) {
                    Ok((answer, epoch)) => {
                        protocol::encode_answer(req.id, &answer, Some(epoch))
                    }
                    Err(err) => protocol::encode_error(req.id, &err),
                }
            }
            Op::Matrix { sources, targets } => {
                let deadline = req.deadline_ms.map(Duration::from_millis);
                match service.matrix_with_epoch(sources, targets, deadline) {
                    Ok((rows, epoch)) => protocol::encode_answer(
                        req.id,
                        &HeteroAnswer::Matrix(rows),
                        Some(epoch),
                    ),
                    Err(err) => protocol::encode_error(req.id, &err),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_reply, ErrorKind, Reply};
    use crate::scheduler::ServeConfig;
    use phast_core::HeteroAnswer;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn handle_line_maps_failures_to_typed_replies() {
        let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
        let svc = Service::for_graph(
            &net.graph,
            ServeConfig {
                window: Duration::from_millis(0),
                ..ServeConfig::default()
            },
        );
        let cases = [
            ("garbage", ErrorKind::Malformed),
            (r#"{"op":"fly","source":0}"#, ErrorKind::Malformed),
            (r#"{"op":"tree"}"#, ErrorKind::BadRequest),
            (r#"{"op":"tree","source":999999}"#, ErrorKind::BadRequest),
        ];
        for (line, kind) in cases {
            match decode_reply(&handle_line(&svc, line)).unwrap() {
                Reply::Error(e) => assert_eq!(e.kind, kind, "line {line}"),
                other => panic!("expected error for {line}, got {other:?}"),
            }
        }
        // And after all those failures a valid request still works.
        match decode_reply(&handle_line(&svc, r#"{"op":"p2p","source":0,"target":1}"#)).unwrap()
        {
            Reply::Answer(HeteroAnswer::Point(_)) => {}
            other => panic!("expected answer, got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let net = RoadNetworkConfig::new(6, 6, 4, Metric::TravelTime).build();
        let svc = Service::for_graph(&net.graph, ServeConfig::default());
        let srv = Server::spawn(svc, "127.0.0.1:0").unwrap();
        assert_ne!(srv.local_addr().port(), 0);
        srv.shutdown();
    }

    #[test]
    fn shutdown_closes_a_live_idle_connection() {
        use std::io::Read;
        let net = RoadNetworkConfig::new(6, 6, 4, Metric::TravelTime).build();
        let svc = Service::for_graph(&net.graph, ServeConfig::default());
        let srv = Server::spawn(svc, "127.0.0.1:0").unwrap();
        let mut idle = TcpStream::connect(srv.local_addr()).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Wait for the connection to be registered before shutting down.
        let t0 = std::time::Instant::now();
        while srv.live_connections() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(srv.live_connections(), 1);
        let t = std::time::Instant::now();
        srv.shutdown();
        assert!(
            t.elapsed() < Duration::from_secs(4),
            "shutdown must not wait on the idle client"
        );
        // The idle client observes the close instead of hanging.
        let mut buf = [0u8; 8];
        match idle.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("expected close, read {n} bytes"),
        }
    }
}
