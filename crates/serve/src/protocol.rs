//! The wire protocol: line-delimited JSON requests and replies.
//!
//! One request per line, one reply line per request, always in order.
//! Requests:
//!
//! ```json
//! {"id":1,"op":"tree","source":17}
//! {"id":2,"op":"many","source":4,"targets":[0,9,9]}
//! {"id":3,"op":"p2p","source":0,"target":99,"deadline_ms":50}
//! {"id":4,"op":"stats"}
//! {"id":5,"op":"matrix","sources":[0,17],"targets":[3,9]}
//! ```
//!
//! `id` is an optional client-chosen integer echoed back verbatim;
//! `deadline_ms` is an optional per-request deadline measured from
//! admission. Successful replies:
//!
//! ```json
//! {"id":1,"ok":true,"op":"tree","dist":[0,10,30]}
//! {"id":2,"ok":true,"op":"many","dist":[12,7,7]}
//! {"id":3,"ok":true,"op":"p2p","dist":null}
//! {"id":4,"ok":true,"op":"stats","report":{...}}
//! {"id":5,"ok":true,"op":"matrix","dist":[[0,4],[9,2]]}
//! ```
//!
//! A `matrix` reply holds one row per source (in request order), one
//! column per target. Unlike `many`, the target set of a `matrix` request
//! must be duplicate-free and in range — the selection is built once per
//! target set and shared, so a sloppy target list is a client bug the
//! server reports as `malformed` rather than silently deduplicating.
//!
//! `tree` distances are in original vertex order; unreachable vertices
//! carry the `INF` sentinel (`2147483647`), except for `p2p` where an
//! unreachable target serializes as `null`. Error replies are typed:
//!
//! ```json
//! {"id":3,"ok":false,"error":"queue_full","message":"admission queue at capacity 1024"}
//! ```
//!
//! with `error` one of `malformed`, `bad_request`, `queue_full`,
//! `overloaded`, `busy`, `deadline_exceeded`, `shutdown`, `transport`,
//! `internal`. A malformed line produces a `malformed` reply (with
//! `id:null`) and the connection keeps serving. `overloaded` replies carry
//! an additional `retry_after_ms` hint — the server's estimate of when the
//! admission queue will have drained — which the retrying client honors:
//!
//! ```json
//! {"id":5,"ok":false,"error":"overloaded","message":"...","retry_after_ms":40}
//! ```

use phast_core::{HeteroAnswer, HeteroQuery};
use phast_graph::{Vertex, INF};
use phast_obs::Report;
use serde::Value;

/// The category of a typed error reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON or lacks a recognizable `op`.
    Malformed,
    /// Structurally valid, but semantically impossible (e.g. a vertex
    /// outside the graph, a missing field, an oversized target list).
    BadRequest,
    /// The admission queue is at capacity; the request was rejected
    /// instead of blocking (backpressure).
    QueueFull,
    /// The service shed this request before admission because the queue
    /// depth (or queue latency) crossed the overload threshold. The reply
    /// carries a `retry_after_ms` hint.
    Overloaded,
    /// The server refused the whole connection: the concurrent-connection
    /// cap is reached. Sent once, then the connection is closed.
    Busy,
    /// The request's deadline expired before its batch was formed.
    DeadlineExceeded,
    /// The service is shutting down and no longer admits requests.
    Shutdown,
    /// The link failed, not the service: a connect, read, or write on the
    /// client's socket errored or timed out. Never sent on the wire —
    /// produced client-side so retry logic can tell server faults
    /// ([`ErrorKind::Internal`]) from transport faults.
    Transport,
    /// The service failed internally (a worker disappeared).
    Internal,
}

impl ErrorKind {
    /// The stable wire code of this kind.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Busy => "busy",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Transport => "transport",
            ErrorKind::Internal => "internal",
        }
    }

    /// Whether a client may retry a request that failed with this kind
    /// and reasonably expect a different outcome: transient load
    /// ([`ErrorKind::QueueFull`], [`ErrorKind::Overloaded`],
    /// [`ErrorKind::Busy`]) and link faults ([`ErrorKind::Transport`])
    /// are retryable; malformed input, bad requests, expired deadlines,
    /// shutdown, and internal faults are not.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::QueueFull
                | ErrorKind::Overloaded
                | ErrorKind::Busy
                | ErrorKind::Transport
        )
    }

    /// Parses a wire code back into a kind.
    pub fn from_code(code: &str) -> Option<ErrorKind> {
        Some(match code {
            "malformed" => ErrorKind::Malformed,
            "bad_request" => ErrorKind::BadRequest,
            "queue_full" => ErrorKind::QueueFull,
            "overloaded" => ErrorKind::Overloaded,
            "busy" => ErrorKind::Busy,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "shutdown" => ErrorKind::Shutdown,
            "transport" => ErrorKind::Transport,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A typed service error: kind plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// Error category (drives the wire `error` code).
    pub kind: ErrorKind,
    /// Free-form detail for humans; never parsed.
    pub message: String,
    /// For [`ErrorKind::Overloaded`]: the server's estimate (ms) of when
    /// the queue will have drained enough to admit this request. A
    /// backoff *hint*, not a promise.
    pub retry_after_ms: Option<u64>,
}

impl ServeError {
    /// Builds an error of `kind` with a formatted message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Builds an [`ErrorKind::Overloaded`] shed reply with its
    /// retry-after hint.
    pub fn overloaded(retry_after_ms: u64, message: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::Overloaded,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// What a parsed request asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A routing query answered through the scheduler.
    Query(HeteroQuery),
    /// A many-to-many matrix answered on the scheduler's restricted-sweep
    /// rung (one RPHAST selection amortized over all sources).
    Matrix {
        /// Row sources, in reply-row order.
        sources: Vec<Vertex>,
        /// Column targets; must be duplicate-free and in range.
        targets: Vec<Vertex>,
    },
    /// The service-level statistics report (answered immediately,
    /// bypassing the scheduler).
    Stats,
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id echoed in the reply (`null` when absent).
    pub id: Option<i64>,
    /// Optional deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// Upper bound on `targets` per `many` or `matrix` request — a service
/// must bound the memory one request line can pin.
pub const MAX_TARGETS: usize = 4096;

/// Upper bound on `sources` per `matrix` request.
pub const MAX_MATRIX_SOURCES: usize = 1024;

/// Upper bound on `sources.len() * targets.len()` per `matrix` request —
/// the reply is materialized as one allocation per row, so the cell count
/// is the real cost and gets its own cap below the individual products.
pub const MAX_MATRIX_CELLS: usize = 1 << 20;

fn get_vertex(v: &Value, field: &str) -> Result<Vertex, ServeError> {
    let raw = v.get(field).ok_or_else(|| {
        ServeError::new(ErrorKind::BadRequest, format!("missing field `{field}`"))
    })?;
    let i = raw.as_i64().ok_or_else(|| {
        ServeError::new(ErrorKind::BadRequest, format!("`{field}` must be an integer"))
    })?;
    Vertex::try_from(i).map_err(|_| {
        ServeError::new(ErrorKind::BadRequest, format!("`{field}` {i} is not a vertex id"))
    })
}

fn get_vertex_array(v: &Value, field: &str, max: usize) -> Result<Vec<Vertex>, ServeError> {
    let raw = v.get(field).and_then(Value::as_array).ok_or_else(|| {
        ServeError::new(ErrorKind::BadRequest, format!("missing array field `{field}`"))
    })?;
    if raw.is_empty() || raw.len() > max {
        return Err(ServeError::new(
            ErrorKind::BadRequest,
            format!("`{field}` must hold 1..={max} entries"),
        ));
    }
    let mut out = Vec::with_capacity(raw.len());
    for t in raw {
        let i = t.as_i64().ok_or_else(|| {
            ServeError::new(
                ErrorKind::BadRequest,
                format!("`{field}` entries must be integers"),
            )
        })?;
        out.push(Vertex::try_from(i).map_err(|_| {
            ServeError::new(
                ErrorKind::BadRequest,
                format!("`{field}` entry {i} is not a vertex id"),
            )
        })?);
    }
    Ok(out)
}

/// Parses one request line. The error distinguishes `malformed` (not
/// JSON / no usable `op`) from `bad_request` (bad or missing fields), so
/// the caller can reply without tearing down the connection.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| ServeError::new(ErrorKind::Malformed, format!("invalid JSON: {e}")))?;
    let op_name = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "missing string field `op`"))?;
    let id = v.get("id").and_then(Value::as_i64);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(d) => Some(d.as_i64().and_then(|ms| u64::try_from(ms).ok()).ok_or_else(
            || {
                ServeError::new(
                    ErrorKind::BadRequest,
                    "`deadline_ms` must be a non-negative integer",
                )
            },
        )?),
    };
    let op = match op_name {
        "tree" => Op::Query(HeteroQuery::Tree {
            source: get_vertex(&v, "source")?,
        }),
        "many" => Op::Query(HeteroQuery::Many {
            source: get_vertex(&v, "source")?,
            targets: get_vertex_array(&v, "targets", MAX_TARGETS)?,
        }),
        "matrix" => {
            let sources = get_vertex_array(&v, "sources", MAX_MATRIX_SOURCES)?;
            let targets = get_vertex_array(&v, "targets", MAX_TARGETS)?;
            if sources.len() * targets.len() > MAX_MATRIX_CELLS {
                return Err(ServeError::new(
                    ErrorKind::BadRequest,
                    format!(
                        "matrix of {}x{} exceeds the {MAX_MATRIX_CELLS}-cell cap",
                        sources.len(),
                        targets.len()
                    ),
                ));
            }
            Op::Matrix { sources, targets }
        }
        "p2p" => Op::Query(HeteroQuery::Point {
            source: get_vertex(&v, "source")?,
            target: get_vertex(&v, "target")?,
        }),
        "stats" => Op::Stats,
        other => {
            return Err(ServeError::new(
                ErrorKind::Malformed,
                format!("unknown op `{other}`"),
            ))
        }
    };
    Ok(Request { id, deadline_ms, op })
}

fn id_value(id: Option<i64>) -> Value {
    match id {
        Some(i) => Value::Int(i),
        None => Value::Null,
    }
}

fn dist_array(dist: &[u32]) -> Value {
    Value::Array(dist.iter().map(|&d| Value::Int(i64::from(d))).collect())
}

fn write_line(v: &Value) -> String {
    let mut out = String::new();
    v.write_json(&mut out);
    out
}

/// Encodes a successful answer as one reply line (no trailing newline).
/// `epoch` (when known) records the metric epoch the answer is exact for,
/// so clients can differentially check replies across a live metric swap;
/// [`decode_epoch`] reads it back.
pub fn encode_answer(id: Option<i64>, answer: &HeteroAnswer, epoch: Option<u64>) -> String {
    let (op, dist) = match answer {
        HeteroAnswer::Tree(d) => ("tree", dist_array(d)),
        HeteroAnswer::Many(d) => ("many", dist_array(d)),
        HeteroAnswer::Matrix(rows) => (
            "matrix",
            Value::Array(rows.iter().map(|r| dist_array(r)).collect()),
        ),
        HeteroAnswer::Point(d) => (
            "p2p",
            if *d >= INF {
                Value::Null
            } else {
                Value::Int(i64::from(*d))
            },
        ),
    };
    let mut fields = vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::String(op.into())),
        ("dist".into(), dist),
    ];
    if let Some(e) = epoch {
        fields.push(("epoch".into(), Value::Int(e as i64)));
    }
    write_line(&Value::Object(fields))
}

/// Reads the metric-epoch stamp out of a reply line, if the server sent
/// one. Tolerant by design: replies from servers predating metric epochs
/// (or error replies, which carry no epoch) yield `None`.
pub fn decode_epoch(line: &str) -> Option<u64> {
    let v: Value = serde_json::from_str(line).ok()?;
    v.get("epoch")
        .and_then(Value::as_i64)
        .and_then(|e| u64::try_from(e).ok())
}

/// Encodes a statistics reply embedding a `phast-obs` report.
pub fn encode_report(id: Option<i64>, report: &Report) -> String {
    write_line(&Value::Object(vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::String("stats".into())),
        ("report".into(), serde::Serialize::to_value(report)),
    ]))
}

/// Encodes a typed error reply.
pub fn encode_error(id: Option<i64>, err: &ServeError) -> String {
    let mut fields = vec![
        ("id".into(), id_value(id)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::String(err.kind.code().into())),
        ("message".into(), Value::String(err.message.clone())),
    ];
    if let Some(ms) = err.retry_after_ms {
        fields.push(("retry_after_ms".into(), Value::Int(ms as i64)));
    }
    write_line(&Value::Object(fields))
}

/// A decoded reply line (the client half of the protocol).
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A successful routing answer.
    Answer(HeteroAnswer),
    /// A statistics report (raw JSON value, obs `Report` schema).
    Stats(Value),
    /// A typed error.
    Error(ServeError),
}

/// Decodes one reply line.
pub fn decode_reply(line: &str) -> Result<Reply, ServeError> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| ServeError::new(ErrorKind::Malformed, format!("invalid reply: {e}")))?;
    let ok = v
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "reply lacks `ok`"))?;
    if !ok {
        let code = v.get("error").and_then(Value::as_str).unwrap_or("internal");
        let kind = ErrorKind::from_code(code).unwrap_or(ErrorKind::Internal);
        let message = v
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned();
        let mut err = ServeError::new(kind, message);
        err.retry_after_ms = v
            .get("retry_after_ms")
            .and_then(Value::as_i64)
            .and_then(|ms| u64::try_from(ms).ok());
        return Ok(Reply::Error(err));
    }
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "reply lacks `op`"))?;
    let dists = |v: &Value| -> Result<Vec<u32>, ServeError> {
        v.get("dist")
            .and_then(Value::as_array)
            .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "reply lacks `dist`"))?
            .iter()
            .map(|d| {
                d.as_i64()
                    .and_then(|i| u32::try_from(i).ok())
                    .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "bad distance"))
            })
            .collect()
    };
    Ok(match op {
        "tree" => Reply::Answer(HeteroAnswer::Tree(dists(&v)?)),
        "many" => Reply::Answer(HeteroAnswer::Many(dists(&v)?)),
        "matrix" => {
            let rows = v
                .get("dist")
                .and_then(Value::as_array)
                .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "reply lacks `dist`"))?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| {
                            ServeError::new(ErrorKind::Malformed, "matrix row must be an array")
                        })?
                        .iter()
                        .map(|d| {
                            d.as_i64()
                                .and_then(|i| u32::try_from(i).ok())
                                .ok_or_else(|| {
                                    ServeError::new(ErrorKind::Malformed, "bad distance")
                                })
                        })
                        .collect()
                })
                .collect::<Result<Vec<Vec<u32>>, ServeError>>()?;
            Reply::Answer(HeteroAnswer::Matrix(rows))
        }
        "p2p" => {
            let d = match v.get("dist") {
                None | Some(Value::Null) => INF,
                Some(d) => d
                    .as_i64()
                    .and_then(|i| u32::try_from(i).ok())
                    .ok_or_else(|| ServeError::new(ErrorKind::Malformed, "bad distance"))?,
            };
            Reply::Answer(HeteroAnswer::Point(d))
        }
        "stats" => Reply::Stats(v.get("report").cloned().unwrap_or(Value::Null)),
        other => {
            return Err(ServeError::new(
                ErrorKind::Malformed,
                format!("unknown reply op `{other}`"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let r = parse_request(r#"{"id":7,"op":"tree","source":3}"#).unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.op, Op::Query(HeteroQuery::Tree { source: 3 }));
        let r = parse_request(r#"{"op":"many","source":1,"targets":[2,2,0]}"#).unwrap();
        assert_eq!(
            r.op,
            Op::Query(HeteroQuery::Many {
                source: 1,
                targets: vec![2, 2, 0]
            })
        );
        let r = parse_request(r#"{"op":"p2p","source":0,"target":9,"deadline_ms":50}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(50));
        assert_eq!(
            r.op,
            Op::Query(HeteroQuery::Point {
                source: 0,
                target: 9
            })
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap().op, Op::Stats);
    }

    #[test]
    fn malformed_vs_bad_request() {
        assert_eq!(
            parse_request("not json").unwrap_err().kind,
            ErrorKind::Malformed
        );
        assert_eq!(
            parse_request(r#"{"answer":42}"#).unwrap_err().kind,
            ErrorKind::Malformed
        );
        assert_eq!(
            parse_request(r#"{"op":"warp","source":0}"#).unwrap_err().kind,
            ErrorKind::Malformed
        );
        assert_eq!(
            parse_request(r#"{"op":"tree"}"#).unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"tree","source":-4}"#).unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"many","source":0,"targets":[]}"#)
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"tree","source":0,"deadline_ms":-1}"#)
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn parses_matrix_requests() {
        let r = parse_request(r#"{"id":5,"op":"matrix","sources":[0,17],"targets":[3,9]}"#)
            .unwrap();
        assert_eq!(r.id, Some(5));
        assert_eq!(
            r.op,
            Op::Matrix {
                sources: vec![0, 17],
                targets: vec![3, 9]
            }
        );
    }

    #[test]
    fn matrix_requests_enforce_structural_caps() {
        for line in [
            r#"{"op":"matrix","targets":[1]}"#,
            r#"{"op":"matrix","sources":[],"targets":[1]}"#,
            r#"{"op":"matrix","sources":[1],"targets":[]}"#,
            r#"{"op":"matrix","sources":[1],"targets":["x"]}"#,
            r#"{"op":"matrix","sources":[-1],"targets":[1]}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().kind,
                ErrorKind::BadRequest,
                "{line}"
            );
        }
        // Individually under the per-axis caps, but over the cell cap.
        let sources: Vec<String> = (0..MAX_MATRIX_SOURCES).map(|i| i.to_string()).collect();
        let targets: Vec<String> = (0..MAX_TARGETS).map(|i| i.to_string()).collect();
        let line = format!(
            r#"{{"op":"matrix","sources":[{}],"targets":[{}]}}"#,
            sources.join(","),
            targets.join(",")
        );
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("cell cap"), "{}", err.message);
    }

    #[test]
    fn answers_roundtrip() {
        for answer in [
            HeteroAnswer::Tree(vec![0, 5, INF]),
            HeteroAnswer::Many(vec![7]),
            HeteroAnswer::Matrix(vec![vec![0, 4, INF], vec![9, 2, 1]]),
            HeteroAnswer::Matrix(vec![]),
            HeteroAnswer::Point(12),
            HeteroAnswer::Point(INF),
        ] {
            let line = encode_answer(Some(3), &answer, None);
            assert_eq!(decode_reply(&line).unwrap(), Reply::Answer(answer));
        }
    }

    #[test]
    fn unreachable_p2p_is_null_on_the_wire() {
        let line = encode_answer(None, &HeteroAnswer::Point(INF), None);
        assert!(line.contains("\"dist\":null"), "{line}");
    }

    #[test]
    fn epoch_stamps_roundtrip_and_are_optional() {
        let answer = HeteroAnswer::Point(4);
        let stamped = encode_answer(Some(1), &answer, Some(7));
        assert_eq!(decode_epoch(&stamped), Some(7));
        // The stamp is an extra field — the reply still decodes normally.
        assert_eq!(decode_reply(&stamped).unwrap(), Reply::Answer(answer.clone()));
        let bare = encode_answer(Some(1), &answer, None);
        assert_eq!(decode_epoch(&bare), None);
        // Error replies carry no epoch.
        let err = encode_error(Some(1), &ServeError::new(ErrorKind::Internal, "x"));
        assert_eq!(decode_epoch(&err), None);
        assert_eq!(decode_epoch("not json"), None);
    }

    #[test]
    fn errors_roundtrip_with_stable_codes() {
        for kind in [
            ErrorKind::Malformed,
            ErrorKind::BadRequest,
            ErrorKind::QueueFull,
            ErrorKind::Overloaded,
            ErrorKind::Busy,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Shutdown,
            ErrorKind::Transport,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
            let line = encode_error(Some(1), &ServeError::new(kind, "detail"));
            match decode_reply(&line).unwrap() {
                Reply::Error(e) => {
                    assert_eq!(e.kind, kind);
                    assert_eq!(e.message, "detail");
                }
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn overloaded_replies_carry_the_retry_hint() {
        let line = encode_error(Some(5), &ServeError::overloaded(40, "queue deep"));
        assert!(line.contains("\"retry_after_ms\":40"), "{line}");
        match decode_reply(&line).unwrap() {
            Reply::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Overloaded);
                assert_eq!(e.retry_after_ms, Some(40));
            }
            other => panic!("expected overloaded error, got {other:?}"),
        }
        // Errors without the hint decode to None, not 0.
        let line = encode_error(None, &ServeError::new(ErrorKind::QueueFull, "full"));
        assert!(!line.contains("retry_after_ms"), "{line}");
        match decode_reply(&line).unwrap() {
            Reply::Error(e) => assert_eq!(e.retry_after_ms, None),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn retryability_matches_the_kind_taxonomy() {
        for kind in [
            ErrorKind::QueueFull,
            ErrorKind::Overloaded,
            ErrorKind::Busy,
            ErrorKind::Transport,
        ] {
            assert!(kind.is_retryable(), "{kind:?}");
        }
        for kind in [
            ErrorKind::Malformed,
            ErrorKind::BadRequest,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Shutdown,
            ErrorKind::Internal,
        ] {
            assert!(!kind.is_retryable(), "{kind:?}");
        }
    }

    #[test]
    fn stats_reply_embeds_the_report_schema() {
        let mut report = Report::new("svc");
        report.push_count("batches", 3).push_ratio("occupancy", 2.5);
        let line = encode_report(Some(9), &report);
        match decode_reply(&line).unwrap() {
            Reply::Stats(v) => {
                assert_eq!(v.get("title").and_then(Value::as_str), Some("svc"));
                let m = v.get("metrics").expect("metrics object");
                assert_eq!(m.get("batches").and_then(Value::as_i64), Some(3));
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
