//! A small blocking client for the line protocol — what `loadgen` and the
//! integration tests speak through.

use crate::protocol::{decode_reply, ErrorKind, Reply, ServeError};
use phast_core::HeteroAnswer;
use phast_graph::{Vertex, Weight};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a `phast-serve` front end. Requests are
/// answered in order, so a call is a write + a read.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: i64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Sends one raw line and returns the raw reply line. Exposed so the
    /// robustness tests can send deliberately malformed requests.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_owned())
    }

    fn request(&mut self, body: &str) -> Result<Reply, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"id\":{id},{body}}}");
        let reply = self
            .roundtrip_line(&line)
            .map_err(|e| ServeError::new(ErrorKind::Internal, format!("transport: {e}")))?;
        decode_reply(&reply)
    }

    fn answer(&mut self, body: &str) -> Result<HeteroAnswer, ServeError> {
        match self.request(body)? {
            Reply::Answer(a) => Ok(a),
            Reply::Error(e) => Err(e),
            Reply::Stats(_) => Err(ServeError::new(
                ErrorKind::Malformed,
                "unexpected stats reply",
            )),
        }
    }

    fn deadline_suffix(deadline_ms: Option<u64>) -> String {
        deadline_ms
            .map(|ms| format!(",\"deadline_ms\":{ms}"))
            .unwrap_or_default()
    }

    /// Requests a full shortest path tree from `source`.
    pub fn tree(
        &mut self,
        source: Vertex,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Weight>, ServeError> {
        let extra = Self::deadline_suffix(deadline_ms);
        match self.answer(&format!("\"op\":\"tree\",\"source\":{source}{extra}"))? {
            HeteroAnswer::Tree(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests the distances from `source` to each target.
    pub fn many(
        &mut self,
        source: Vertex,
        targets: &[Vertex],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Weight>, ServeError> {
        let list = targets
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let extra = Self::deadline_suffix(deadline_ms);
        match self.answer(&format!(
            "\"op\":\"many\",\"source\":{source},\"targets\":[{list}]{extra}"
        ))? {
            HeteroAnswer::Many(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests one point-to-point distance (`INF` when unreachable).
    pub fn p2p(
        &mut self,
        source: Vertex,
        target: Vertex,
        deadline_ms: Option<u64>,
    ) -> Result<Weight, ServeError> {
        let extra = Self::deadline_suffix(deadline_ms);
        match self.answer(&format!(
            "\"op\":\"p2p\",\"source\":{source},\"target\":{target}{extra}"
        ))? {
            HeteroAnswer::Point(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service's statistics report as a JSON value (the
    /// `phast-obs` `Report` schema).
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        match self.request("\"op\":\"stats\"")? {
            Reply::Stats(v) => Ok(v),
            Reply::Error(e) => Err(e),
            Reply::Answer(_) => Err(ServeError::new(
                ErrorKind::Malformed,
                "unexpected answer reply",
            )),
        }
    }
}

fn unexpected(answer: &HeteroAnswer) -> ServeError {
    let line = crate::protocol::encode_answer(None, answer);
    ServeError::new(
        ErrorKind::Internal,
        format!("reply shape does not match the request: {line}"),
    )
}
