//! A small blocking client for the line protocol — what `loadgen` and the
//! integration tests speak through.
//!
//! Hardened against a flaky link and an overloaded server:
//!
//! * **Timeouts everywhere.** Connect, read, and write all carry
//!   timeouts ([`ClientConfig`]); a dead server yields a typed
//!   [`ErrorKind::Transport`] error, never a hang.
//! * **Typed transport faults.** Socket-level failures map to
//!   [`ErrorKind::Transport`], distinct from the server-sent
//!   [`ErrorKind::Internal`], so callers can tell a broken link from a
//!   broken service.
//! * **Bounded retry.** With [`ClientConfig::max_retries`] > 0, retryable
//!   failures (`transport`, `overloaded`, `queue_full`, `busy`) are
//!   retried with exponential backoff plus jitter. An `overloaded` reply's
//!   `retry_after_ms` hint overrides the backoff. Transport faults
//!   reconnect automatically before the retry.
//! * **Deadline-aware give-up.** A request's `deadline_ms` bounds the
//!   *whole* retry loop: the client never sleeps past the deadline only
//!   to fail anyway, and gives up with the last error once the budget is
//!   spent.
//!
//! The default [`Client::connect`] keeps `max_retries = 0` — every typed
//! error surfaces immediately, which is what the differential tests want.
//! Load generators and production callers opt into retries via
//! [`Client::connect_with`].

use crate::protocol::{decode_reply, ErrorKind, Reply, ServeError};
use phast_core::HeteroAnswer;
use phast_graph::{Vertex, Weight};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Transport and retry policy of one [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per operation. `Duration::ZERO`
    /// disables the socket timeouts.
    pub io_timeout: Duration,
    /// Retries after the first attempt for retryable failures
    /// (`transport`, `overloaded`, `queue_full`, `busy`). `0` surfaces
    /// every failure immediately.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry (full jitter applied).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            max_retries: 0,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl ClientConfig {
    /// A retrying profile: up to `retries` retries with backoff.
    pub fn retrying(retries: u32) -> Self {
        ClientConfig {
            max_retries: retries,
            ..ClientConfig::default()
        }
    }
}

/// The socket pair of one live connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// One blocking connection to a `phast-serve` front end. Requests are
/// answered in order, so a call is a write + a read. Transparently
/// reconnects between requests when retries are enabled.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<Conn>,
    next_id: i64,
    /// xorshift state for backoff jitter.
    jitter: u64,
    /// Metric-epoch stamp of the most recent successful reply, when the
    /// server sent one (see [`crate::protocol::decode_epoch`]).
    last_epoch: Option<u64>,
}

fn transport(e: &std::io::Error) -> ServeError {
    ServeError::new(ErrorKind::Transport, format!("transport: {e}"))
}

impl Client {
    /// Connects with the default (non-retrying) configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit transport/retry policy.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let mut client = Client {
            addr,
            cfg,
            conn: None,
            next_id: 0,
            jitter: seed | 1,
            last_epoch: None,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// (Re)establishes the connection, honoring the timeouts.
    fn reconnect(&mut self) -> std::io::Result<()> {
        self.conn = None;
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_nodelay(true).ok();
        let io_timeout = (!self.cfg.io_timeout.is_zero()).then_some(self.cfg.io_timeout);
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        self.conn = Some(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        });
        Ok(())
    }

    /// Sends one raw line and returns the raw reply line. Exposed so the
    /// robustness tests can send deliberately malformed requests. No
    /// retries at this layer.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => {
                self.reconnect()?;
                self.conn.as_mut().expect("just connected")
            }
        };
        let result = (|| {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.write_all(b"\n")?;
            conn.writer.flush()?;
            let mut reply = String::new();
            let n = conn.reader.read_line(&mut reply)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(reply.trim_end().to_owned())
        })();
        if result.is_err() {
            // The connection is in an unknown half-spoken state; the next
            // request must start fresh.
            self.conn = None;
        }
        result
    }

    /// Full-jitter backoff for retry `attempt` (0-based).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let ceiling = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_backoff);
        // xorshift64*: cheap jitter, no rand dependency.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let nanos = ceiling.as_nanos().max(1) as u64;
        Duration::from_nanos(self.jitter % nanos)
    }

    /// One request with the configured retry policy. `deadline_ms` is
    /// both the per-request deadline sent to the server and the overall
    /// retry budget measured from now.
    fn request(&mut self, body: &str, deadline_ms: Option<u64>) -> Result<Reply, ServeError> {
        let give_up_at = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut attempt = 0u32;
        loop {
            let outcome = self.request_once(body, deadline_ms);
            let err = match outcome {
                Ok(Reply::Error(e)) if e.kind.is_retryable() => e,
                other => return other,
            };
            if attempt >= self.cfg.max_retries {
                return Ok(Reply::Error(err));
            }
            // Honor the server's drain estimate when it gave one;
            // otherwise back off exponentially with jitter.
            let mut pause = match err.retry_after_ms {
                Some(ms) => Duration::from_millis(ms),
                None => self.backoff(attempt),
            };
            if let Some(give_up) = give_up_at {
                let left = give_up.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    // The budget is spent; sleeping only defers the failure.
                    return Ok(Reply::Error(err));
                }
                // A jittered pause longer than the remaining budget is
                // clamped, not treated as give-up: the final attempt still
                // runs inside the deadline instead of being skipped.
                pause = pause.min(left);
            }
            std::thread::sleep(pause);
            attempt += 1;
        }
    }

    /// One attempt: reconnect if needed, send, receive, decode. Socket
    /// failures come back as typed [`ErrorKind::Transport`] errors.
    fn request_once(&mut self, body: &str, deadline_ms: Option<u64>) -> Result<Reply, ServeError> {
        if self.conn.is_none() {
            self.reconnect().map_err(|e| transport(&e))?;
        }
        let id = self.next_id;
        self.next_id += 1;
        let deadline = deadline_ms
            .map(|ms| format!(",\"deadline_ms\":{ms}"))
            .unwrap_or_default();
        let line = format!("{{\"id\":{id},{body}{deadline}}}");
        let reply = self.roundtrip_line(&line).map_err(|e| transport(&e))?;
        self.last_epoch = crate::protocol::decode_epoch(&reply);
        decode_reply(&reply)
    }

    /// The metric-epoch stamp of the most recent reply, when the server
    /// sent one. Differential checkers use this to pick the reference
    /// tables a reply must be compared against across a live metric swap.
    pub fn last_epoch(&self) -> Option<u64> {
        self.last_epoch
    }

    fn answer(
        &mut self,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> Result<HeteroAnswer, ServeError> {
        match self.request(body, deadline_ms)? {
            Reply::Answer(a) => Ok(a),
            Reply::Error(e) => Err(e),
            Reply::Stats(_) => Err(ServeError::new(
                ErrorKind::Malformed,
                "unexpected stats reply",
            )),
        }
    }

    /// Requests a full shortest path tree from `source`.
    pub fn tree(
        &mut self,
        source: Vertex,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Weight>, ServeError> {
        match self.answer(&format!("\"op\":\"tree\",\"source\":{source}"), deadline_ms)? {
            HeteroAnswer::Tree(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests the distances from `source` to each target.
    pub fn many(
        &mut self,
        source: Vertex,
        targets: &[Vertex],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Weight>, ServeError> {
        let list = targets
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        match self.answer(
            &format!("\"op\":\"many\",\"source\":{source},\"targets\":[{list}]"),
            deadline_ms,
        )? {
            HeteroAnswer::Many(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests the full many-to-many matrix: one row per source (in
    /// source order), one column per target. Targets must be
    /// duplicate-free and in range, or the server replies `malformed`.
    pub fn matrix(
        &mut self,
        sources: &[Vertex],
        targets: &[Vertex],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Vec<Weight>>, ServeError> {
        let join = |vs: &[Vertex]| {
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        match self.answer(
            &format!(
                "\"op\":\"matrix\",\"sources\":[{}],\"targets\":[{}]",
                join(sources),
                join(targets)
            ),
            deadline_ms,
        )? {
            HeteroAnswer::Matrix(rows) => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests one point-to-point distance (`INF` when unreachable).
    pub fn p2p(
        &mut self,
        source: Vertex,
        target: Vertex,
        deadline_ms: Option<u64>,
    ) -> Result<Weight, ServeError> {
        match self.answer(
            &format!("\"op\":\"p2p\",\"source\":{source},\"target\":{target}"),
            deadline_ms,
        )? {
            HeteroAnswer::Point(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service's statistics report as a JSON value (the
    /// `phast-obs` `Report` schema).
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        match self.request("\"op\":\"stats\"", None)? {
            Reply::Stats(v) => Ok(v),
            Reply::Error(e) => Err(e),
            Reply::Answer(_) => Err(ServeError::new(
                ErrorKind::Malformed,
                "unexpected answer reply",
            )),
        }
    }
}

fn unexpected(answer: &HeteroAnswer) -> ServeError {
    let line = crate::protocol::encode_answer(None, answer, None);
    ServeError::new(
        ErrorKind::Internal,
        format!("reply shape does not match the request: {line}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_answer, encode_error};
    use std::io::BufRead;
    use std::net::TcpListener;

    /// Regression: a backoff (or server retry hint) longer than the
    /// remaining deadline budget used to make the client give up without
    /// running its final attempt. The pause must be clamped to the budget
    /// so the last retry still happens *inside* the deadline.
    #[test]
    fn final_retry_runs_inside_a_short_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            // First attempt: overloaded, with a drain hint far beyond the
            // client's whole deadline.
            let err = ServeError::overloaded(60_000, "drain in progress");
            let mut reply = encode_error(None, &err);
            reply.push('\n');
            (&stream).write_all(reply.as_bytes()).unwrap();
            // Second attempt (the clamped retry): a real answer.
            line.clear();
            reader.read_line(&mut line).unwrap();
            let mut ok = encode_answer(None, &HeteroAnswer::Point(7), None);
            ok.push('\n');
            (&stream).write_all(ok.as_bytes()).unwrap();
        });
        let mut client = Client::connect_with(addr, ClientConfig::retrying(1)).unwrap();
        let t0 = Instant::now();
        let d = client
            .p2p(0, 1, Some(250))
            .expect("the final retry must run, not be skipped for its oversized pause");
        assert_eq!(d, 7);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "the 60s retry hint must be clamped to the 250ms budget"
        );
        server.join().unwrap();
    }

    /// With the budget already spent, the client gives up with the last
    /// error instead of sleeping or retrying.
    #[test]
    fn spent_budget_gives_up_with_the_last_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            // Serve exactly one request: stall past the deadline, then
            // send the retryable error. There is no second reply — a
            // retry attempt would hang the test, proving the give-up.
            reader.read_line(&mut line).unwrap();
            std::thread::sleep(Duration::from_millis(80));
            let err = ServeError::overloaded(10, "still full");
            let mut reply = encode_error(None, &err);
            reply.push('\n');
            (&stream).write_all(reply.as_bytes()).unwrap();
        });
        let mut client = Client::connect_with(addr, ClientConfig::retrying(3)).unwrap();
        match client.p2p(0, 1, Some(40)) {
            Err(e) => assert_eq!(e.kind, ErrorKind::Overloaded),
            Ok(d) => panic!("expected the budget-exhausted error, got answer {d}"),
        }
        server.join().unwrap();
    }
}
