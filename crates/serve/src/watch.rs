//! Background metric customization: watch a weights file, customize,
//! swap — without ever taking the service down.
//!
//! The serving loop in [`crate::scheduler`] answers queries on immutable
//! [`MetricEpoch`](crate::MetricEpoch) snapshots. This module produces
//! those snapshots from the outside world: a [`MetricWatcher`] polls a
//! JSON weights file (the [`MetricWeights`] serde schema), and when the
//! file changes it runs the `phast-metrics` customization pass — seconds
//! of CPU, but all of it on the watcher thread — and publishes the result
//! through [`Service::swap_epoch`], a microsecond pointer store. Queries
//! admitted before the publication finish on the old metric; queries
//! admitted after it run on the new one; none are ever answered on a mix.
//!
//! A malformed or half-written file is rejected by validation
//! (`MetricWeights::validate` checks arity and the weight cap) and simply
//! skipped — the previous epoch keeps serving, and the error is reported
//! through the [`WatchReport`] the poll returns (the spawned thread warns
//! on stderr *and* bumps the service's `watch_errors` counter, so a
//! persistently broken weights feed shows up in `--stats` output, not just
//! in a log nobody tails). Version deduplication is by `(name, version)`: rewriting
//! the file with the same metric identity does not trigger a re-customize.

use crate::scheduler::Service;
use phast_metrics::{MetricCustomizer, MetricWeights};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one poll of the weights file concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchReport {
    /// The file is absent or unchanged since the last applied metric.
    Unchanged,
    /// A new metric was customized and published as this epoch id.
    Swapped {
        /// Epoch id returned by [`Service::swap_epoch`].
        epoch: u64,
        /// `name` of the applied metric.
        name: String,
        /// `version` of the applied metric.
        version: u64,
    },
    /// The file exists but could not be applied; the message says why.
    /// The previously published epoch keeps serving.
    Rejected(String),
}

/// Poll-once state: the identity of the last metric actually applied,
/// so rewrites of the same metric don't re-customize.
#[derive(Default)]
pub struct WatchState {
    applied: Option<(String, u64)>,
}

/// Reads, validates, customizes and publishes the metric in `path` if it
/// differs from the last applied one. This is the synchronous core of the
/// watcher — the spawned thread calls it in a loop, tests and the CLI can
/// call it directly for deterministic behavior.
pub fn poll_metric_file(
    service: &Service,
    customizer: &MetricCustomizer,
    path: &Path,
    state: &mut WatchState,
) -> WatchReport {
    let bytes = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return WatchReport::Unchanged,
        Err(e) => return WatchReport::Rejected(format!("reading {}: {e}", path.display())),
    };
    let metric: MetricWeights = match serde_json::from_str(&bytes) {
        Ok(m) => m,
        Err(e) => {
            return WatchReport::Rejected(format!(
                "{} is not a metric-weights JSON document: {e:?}",
                path.display()
            ))
        }
    };
    let identity = (metric.name.clone(), metric.version);
    if state.applied.as_ref() == Some(&identity) {
        return WatchReport::Unchanged;
    }
    // Customize off the serving path (this thread), then publish. Any
    // failure — wrong arity, weight over the cap, hierarchy validation —
    // leaves the current epoch serving.
    let (phast, hierarchy) = match customizer.build(&metric) {
        Ok(built) => built,
        Err(e) => return WatchReport::Rejected(format!("customizing {}: {e}", path.display())),
    };
    match service.swap_epoch(Arc::new(phast), Some(Arc::new(hierarchy))) {
        Ok(epoch) => {
            state.applied = Some(identity.clone());
            WatchReport::Swapped {
                epoch,
                name: identity.0,
                version: identity.1,
            }
        }
        Err(e) => WatchReport::Rejected(format!("publishing epoch: {e}")),
    }
}

/// A background thread polling one weights file and hot-swapping the
/// service's metric whenever the file holds a new `(name, version)`.
pub struct MetricWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricWatcher {
    /// Starts watching `path`, polling every `interval`. The customizer
    /// must have been frozen from the same topology the service answers
    /// on (a mismatched swap is rejected per poll, not fatal).
    pub fn spawn(
        service: Arc<Service>,
        customizer: Arc<MetricCustomizer>,
        path: PathBuf,
        interval: Duration,
    ) -> MetricWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("phast-metric-watcher".into())
            .spawn(move || {
                let mut state = WatchState::default();
                while !stop_flag.load(Ordering::Relaxed) {
                    match poll_metric_file(&service, &customizer, &path, &mut state) {
                        WatchReport::Swapped {
                            epoch,
                            name,
                            version,
                        } => {
                            eprintln!(
                                "metric watcher: published `{name}` v{version} as epoch {epoch}"
                            );
                        }
                        WatchReport::Rejected(why) => {
                            // Transient read errors (a half-written file,
                            // a slow writer) self-heal on the next poll,
                            // so this is a warning, not a shutdown — but
                            // it must be *countable*, or a permanently
                            // broken feed looks identical to a quiet one.
                            service.stats().add_watch_errors(1);
                            eprintln!("metric watcher: warning: {why} (keeping current epoch)");
                        }
                        WatchReport::Unchanged => {}
                    }
                    // Sleep in small slices so shutdown is prompt even
                    // with a long poll interval.
                    let mut left = interval;
                    while !left.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                        let nap = left.min(Duration::from_millis(50));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn metric watcher");
        MetricWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the watcher and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use phast_ch::{contract_graph, ContractionConfig};
    use phast_core::HeteroQuery;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("phast-watch-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn poll_applies_new_metrics_and_skips_bad_or_stale_files() {
        let net = RoadNetworkConfig::new(8, 8, 4, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = MetricCustomizer::new(g.clone(), &h).unwrap();
        let svc = Service::for_graph(
            &g,
            ServeConfig {
                window: Duration::from_millis(0),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let path = temp_path("poll");
        let mut state = WatchState::default();
        // No file yet: nothing to do.
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &mut state),
            WatchReport::Unchanged
        );
        // A valid perturbed metric swaps to epoch 2 and changes answers.
        let before = match svc.call(HeteroQuery::Tree { source: 5 }, None).unwrap() {
            phast_core::HeteroAnswer::Tree(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        let metric = MetricWeights::perturbed(&g, "rush-hour", 1, 42);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &mut state) {
            WatchReport::Swapped { epoch: 2, .. } => {}
            other => panic!("expected swap to epoch 2, got {other:?}"),
        }
        let after = match svc.call(HeteroQuery::Tree { source: 5 }, None).unwrap() {
            phast_core::HeteroAnswer::Tree(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(before, after, "a perturbed metric must change some tree");
        // Rewriting the same (name, version) is a no-op.
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &mut state),
            WatchReport::Unchanged
        );
        // Garbage is rejected and the epoch stays put.
        std::fs::write(&path, "{not json").unwrap();
        match poll_metric_file(&svc, &customizer, &path, &mut state) {
            WatchReport::Rejected(_) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(svc.epoch_id(), 2);
        // A wrong-arity metric is rejected by validation, not applied.
        let bad = MetricWeights {
            name: "bad".into(),
            version: 9,
            weights: vec![1, 2, 3],
        };
        std::fs::write(&path, serde_json::to_string(&bad).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &mut state) {
            WatchReport::Rejected(why) => assert!(why.contains("customizing"), "{why}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(svc.epoch_id(), 2);
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }

    #[test]
    fn spawned_watcher_picks_up_a_dropped_file() {
        let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = Arc::new(MetricCustomizer::new(g.clone(), &h).unwrap());
        let svc = Service::for_graph(&g, ServeConfig::default());
        let path = temp_path("spawned");
        let _ = std::fs::remove_file(&path);
        let mut watcher = MetricWatcher::spawn(
            Arc::clone(&svc),
            customizer,
            path.clone(),
            Duration::from_millis(10),
        );
        let metric = MetricWeights::perturbed(&g, "live", 7, 9);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        let t0 = std::time::Instant::now();
        while svc.epoch_id() < 2 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.epoch_id(), 2, "watcher must publish the new metric");
        assert_eq!(svc.stats().metric_swaps(), 1);
        // A garbage rewrite is rejected but *counted*: transient weights-
        // file errors must be visible in stats, not only on stderr.
        assert_eq!(svc.stats().watch_errors(), 0);
        std::fs::write(&path, "{not json").unwrap();
        let t0 = std::time::Instant::now();
        while svc.stats().watch_errors() == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            svc.stats().watch_errors() >= 1,
            "rejected polls must bump watch_errors"
        );
        assert_eq!(svc.epoch_id(), 2, "rejected file must not change the epoch");
        watcher.shutdown();
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }
}
