//! Background metric customization: watch a weights file, customize,
//! canary, swap — and roll back — without ever taking the service down.
//!
//! The serving loop in [`crate::scheduler`] answers queries on immutable
//! [`MetricEpoch`](crate::MetricEpoch) snapshots. This module produces
//! those snapshots from the outside world: a [`MetricWatcher`] polls a
//! JSON weights file (the [`MetricWeights`] serde schema), and when the
//! file changes it runs the `phast-metrics` customization pass — seconds
//! of CPU, but all of it on the watcher thread — and publishes the result
//! through [`Service::swap_epoch`], a microsecond pointer store. Queries
//! admitted before the publication finish on the old metric; queries
//! admitted after it run on the new one; none are ever answered on a mix.
//!
//! Publication is *guarded* (DESIGN.md §16). A candidate metric walks a
//! state machine — candidate → canary → published → guarded →
//! settled / rolled-back — and can be stopped at two gates:
//!
//! * **Canary** ([`WatchConfig::canary_queries`]): before the swap, N
//!   deterministic sampled trees on the candidate `(Phast, Hierarchy)`
//!   are compared bit-exactly against reference Dijkstra on the same
//!   [`MetricWeights`] over the base graph. A mismatch means the
//!   customization pipeline lied — the candidate is rejected with
//!   [`WatchReport::CanaryFailed`], the `(name, version)` is quarantined
//!   (never retried), and no live query ever ran on it.
//! * **Guard window** ([`WatchConfig::guard_window`]): for a configurable
//!   window after each publish, [`check_guard`] watches service health
//!   deltas (worker restarts, quarantined requests, the service-time EWMA
//!   from the overload tracker). A trip rolls the service back to the
//!   predecessor epoch via [`Service::rollback_epoch`] and quarantines
//!   the metric.
//!
//! A malformed or half-written file is rejected by validation
//! (`MetricWeights::validate` checks arity and the weight cap) and simply
//! skipped — the previous epoch keeps serving, and the error is reported
//! through the [`WatchReport`] the poll returns (the spawned thread warns
//! on stderr *and* bumps the service's `watch_errors` counter, so a
//! persistently broken weights feed shows up in `--stats` output, not
//! just in a log nobody tails). Rejections are deduplicated by content
//! hash: a persistently-bad file costs one customization attempt and one
//! stderr line, not one per poll ([`WatchReport::StillRejected`] covers
//! the quiet repeats). Mid-write reads are tolerated by requiring
//! `(len, mtime)` stability across the read. Version deduplication is by
//! `(name, version)`: rewriting the file with the same metric identity
//! does not trigger a re-customize.

use crate::scheduler::Service;
use phast_dijkstra::dijkstra::shortest_paths;
use phast_graph::Graph;
use phast_metrics::{MetricCustomizer, MetricWeights};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the watcher guards each publication. The default canaries every
/// candidate with 8 sampled trees and keeps the post-swap guard window
/// off; both gates are per-deployment knobs (`serve --canary-queries /
/// --guard-window-ms`).
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Deterministic sampled tree queries compared bit-exactly against
    /// reference Dijkstra before a candidate is published. `0` disables
    /// the canary (publish on validation alone, the pre-guard behavior).
    pub canary_queries: usize,
    /// How long after each publish [`check_guard`] monitors service
    /// health before declaring the epoch settled. `Duration::ZERO`
    /// disables the guard window (and with it automatic rollback).
    pub guard_window: Duration,
    /// The service-time EWMA may grow to this multiple of its
    /// at-publish baseline before the latency signal trips.
    pub guard_latency_factor: f64,
    /// Latency floor below which the guard never trips: tiny absolute
    /// EWMAs (microseconds on a warm cache) can jump many x without
    /// meaning anything is wrong.
    pub guard_latency_floor: Duration,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            canary_queries: 8,
            guard_window: Duration::ZERO,
            guard_latency_factor: 8.0,
            guard_latency_floor: Duration::from_millis(50),
        }
    }
}

/// What one poll of the weights file concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchReport {
    /// The file is absent, mid-write, or unchanged since the last
    /// applied metric.
    Unchanged,
    /// A new metric passed the canary and was published as this epoch id.
    Swapped {
        /// Epoch id returned by [`Service::swap_epoch`].
        epoch: u64,
        /// `name` of the applied metric.
        name: String,
        /// `version` of the applied metric.
        version: u64,
    },
    /// The file exists but could not be applied; the message says why.
    /// The previously published epoch keeps serving.
    Rejected(String),
    /// The file still holds byte-identical content to an already-reported
    /// rejection: no re-customize, no counter, no log line.
    StillRejected,
    /// The candidate customized cleanly but its canary queries diverged
    /// from the reference Dijkstra. The metric is quarantined and was
    /// never published — no live query ran on it.
    CanaryFailed {
        /// `name` of the rejected metric.
        name: String,
        /// `version` of the rejected metric.
        version: u64,
        /// First divergence found, for the log line.
        detail: String,
    },
    /// The post-swap guard tripped: the service was rolled back to the
    /// predecessor epoch and the metric quarantined.
    RolledBack {
        /// The epoch the guarded metric had been published as.
        from_epoch: u64,
        /// The fresh epoch id the predecessor came back under.
        to_epoch: u64,
        /// `name` of the quarantined metric.
        name: String,
        /// `version` of the quarantined metric.
        version: u64,
        /// Which health signal tripped.
        why: String,
    },
}

/// An armed post-swap guard: the health baselines captured at publish
/// time, compared against live counters until the window elapses.
struct GuardWindow {
    name: String,
    version: u64,
    epoch: u64,
    deadline: Instant,
    base_restarts: u64,
    base_quarantined: u64,
    base_service_ewma: Duration,
}

/// Poll-once state: the identity of the last metric actually applied
/// (so rewrites of the same metric don't re-customize), the quarantine
/// set, the rejection dedupe hash, and the armed guard window if any.
#[derive(Default)]
pub struct WatchState {
    applied: Option<(String, u64)>,
    /// What `applied` held before the current publish — restored on a
    /// guard rollback so the watcher's idea of "current" follows the
    /// service's.
    prev_applied: Option<(String, u64)>,
    /// `(name, version)` pairs that failed the canary or tripped the
    /// guard. Quarantine is permanent for the watcher's lifetime: a
    /// metric that was proven wrong once is never retried.
    quarantined: HashSet<(String, u64)>,
    /// Content hash of the most recent rejected file bytes; a poll that
    /// reads the same bytes again reports [`WatchReport::StillRejected`]
    /// without spending a customization pass.
    last_rejected: Option<u64>,
    guard: Option<GuardWindow>,
}

impl WatchState {
    /// Whether this `(name, version)` has been quarantined.
    pub fn is_quarantined(&self, name: &str, version: u64) -> bool {
        self.quarantined
            .contains(&(name.to_string(), version))
    }

    /// Whether a post-swap guard window is currently armed.
    pub fn guard_active(&self) -> bool {
        self.guard.is_some()
    }
}

/// The base graph with the candidate metric's weights applied in
/// canonical arc order — what the reference Dijkstra runs on.
fn reweight(g: &Graph, m: &MetricWeights) -> Graph {
    let arcs = g
        .forward()
        .arcs()
        .iter()
        .zip(&m.weights)
        .map(|(a, &w)| phast_graph::Arc::new(a.head, w))
        .collect();
    Graph::from_csr(phast_graph::Csr::from_raw(g.forward().first().to_vec(), arcs))
}

/// Runs the canary: `n_queries` sources spread deterministically over the
/// vertex range, each answered as a full tree on the candidate instance
/// and compared bit-exactly against reference Dijkstra over the base
/// graph reweighted with the same metric. Returns the first divergence.
fn canary_check(
    candidate: &phast_core::Phast,
    customizer: &MetricCustomizer,
    metric: &MetricWeights,
    n_queries: usize,
) -> Result<(), String> {
    let reference = reweight(customizer.graph(), metric);
    let n = candidate.num_vertices();
    let mut engine = candidate.engine();
    for i in 0..n_queries {
        // Evenly spread, deterministic, and independent of n_queries
        // duplicates collapsing on tiny graphs (re-checking a source is
        // merely redundant, never wrong).
        let source = ((i * n) / n_queries.max(1)).min(n - 1) as u32;
        let got = engine.distances(source);
        let want = shortest_paths(reference.forward(), source).dist;
        if got != want {
            let v = (0..n).find(|&v| got[v] != want[v]).unwrap_or(0);
            return Err(format!(
                "canary query diverged from reference Dijkstra: \
                 source {source}, vertex {v}: candidate {} != reference {}",
                got[v], want[v]
            ));
        }
    }
    Ok(())
}

/// Stable identity of the file's content for rejection deduplication.
fn content_hash(bytes: &str) -> u64 {
    let mut h = DefaultHasher::new();
    bytes.hash(&mut h);
    h.finish()
}

/// The `(len, mtime)` signature used for the torn-read stability check.
fn file_signature(path: &Path) -> Option<(u64, Option<std::time::SystemTime>)> {
    std::fs::metadata(path)
        .ok()
        .map(|m| (m.len(), m.modified().ok()))
}

/// Reads, validates, customizes, canaries and publishes the metric in
/// `path` if it differs from the last applied one. This is the
/// synchronous core of the watcher — the spawned thread calls it in a
/// loop, tests and the CLI can call it directly for deterministic
/// behavior. Counter bumps for canary failures and quarantines happen
/// here (not in the thread), so direct callers register them too.
pub fn poll_metric_file(
    service: &Service,
    customizer: &MetricCustomizer,
    path: &Path,
    cfg: &WatchConfig,
    state: &mut WatchState,
) -> WatchReport {
    // Torn-read hardening: only trust bytes whose (len, mtime) signature
    // held still across the read. A writer caught mid-write makes this
    // poll a no-op; the next poll sees the settled file.
    let sig_before = file_signature(path);
    let bytes = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return WatchReport::Unchanged,
        Err(e) => return WatchReport::Rejected(format!("reading {}: {e}", path.display())),
    };
    if file_signature(path) != sig_before {
        return WatchReport::Unchanged;
    }
    let hash = content_hash(&bytes);
    if state.last_rejected == Some(hash) {
        return WatchReport::StillRejected;
    }
    let metric: MetricWeights = match serde_json::from_str(&bytes) {
        Ok(m) => m,
        Err(e) => {
            state.last_rejected = Some(hash);
            return WatchReport::Rejected(format!(
                "{} is not a metric-weights JSON document: {e:?}",
                path.display()
            ));
        }
    };
    let identity = (metric.name.clone(), metric.version);
    if state.applied.as_ref() == Some(&identity) {
        return WatchReport::Unchanged;
    }
    if state.quarantined.contains(&identity) {
        state.last_rejected = Some(hash);
        return WatchReport::Rejected(format!(
            "metric `{}` v{} is quarantined after an earlier canary failure \
             or guard rollback; refusing to retry it",
            identity.0, identity.1
        ));
    }
    // Customize off the serving path (this thread), then publish. Any
    // failure — wrong arity, weight over the cap, hierarchy validation —
    // leaves the current epoch serving.
    let (phast, hierarchy) = match customizer.build(&metric) {
        Ok(built) => built,
        Err(e) => {
            state.last_rejected = Some(hash);
            return WatchReport::Rejected(format!("customizing {}: {e}", path.display()));
        }
    };
    if cfg.canary_queries > 0 {
        if let Err(detail) = canary_check(&phast, customizer, &metric, cfg.canary_queries) {
            state.quarantined.insert(identity.clone());
            state.last_rejected = Some(hash);
            service.stats().add_canary_failures(1);
            service.stats().add_quarantined_metrics(1);
            return WatchReport::CanaryFailed {
                name: identity.0,
                version: identity.1,
                detail,
            };
        }
    }
    match service.swap_epoch(Arc::new(phast), Some(Arc::new(hierarchy))) {
        Ok(epoch) => {
            state.last_rejected = None;
            state.prev_applied = state.applied.take();
            state.applied = Some(identity.clone());
            state.guard = if cfg.guard_window.is_zero() {
                None
            } else {
                let stats = service.stats();
                Some(GuardWindow {
                    name: identity.0.clone(),
                    version: identity.1,
                    epoch,
                    deadline: Instant::now() + cfg.guard_window,
                    base_restarts: stats.worker_restarts(),
                    base_quarantined: stats.quarantined_requests(),
                    base_service_ewma: service.load().ewma_service(),
                })
            };
            WatchReport::Swapped {
                epoch,
                name: identity.0,
                version: identity.1,
            }
        }
        Err(e) => WatchReport::Rejected(format!("publishing epoch: {e}")),
    }
}

/// Evaluates the armed guard window, if any, against live service
/// health. Called by the watcher thread on every sleep slice (so a sick
/// swap is rolled back within ~50 ms, not one poll interval later);
/// tests and embedders can call it directly.
///
/// Trips on any of: a worker restart since publish, a quarantined
/// request since publish, or the service-time EWMA exceeding
/// `max(guard_latency_floor, baseline x guard_latency_factor)`. A trip
/// rolls back via [`Service::rollback_epoch`] and quarantines the
/// metric. An elapsed window settles the epoch; a newer epoch published
/// behind the watcher's back abandons the stale guard.
pub fn check_guard(service: &Service, cfg: &WatchConfig, state: &mut WatchState) -> WatchReport {
    let Some(guard) = state.guard.as_ref() else {
        return WatchReport::Unchanged;
    };
    if service.epoch_id() != guard.epoch {
        // Someone else (another watcher, an embedder) already moved the
        // service off the guarded epoch; this guard has nothing left to
        // protect.
        state.guard = None;
        return WatchReport::Unchanged;
    }
    let stats = service.stats();
    let restarts = stats.worker_restarts();
    let quarantined = stats.quarantined_requests();
    let ewma = service.load().ewma_service();
    let latency_limit = guard
        .base_service_ewma
        .mul_f64(cfg.guard_latency_factor)
        .max(cfg.guard_latency_floor);
    let tripped = if restarts > guard.base_restarts {
        Some(format!(
            "worker restarts rose {} -> {restarts} inside the guard window",
            guard.base_restarts
        ))
    } else if quarantined > guard.base_quarantined {
        Some(format!(
            "quarantined requests rose {} -> {quarantined} inside the guard window",
            guard.base_quarantined
        ))
    } else if ewma > latency_limit {
        Some(format!(
            "service-time EWMA {:?} exceeded the guard limit {:?} (baseline {:?})",
            ewma, latency_limit, guard.base_service_ewma
        ))
    } else {
        None
    };
    let Some(why) = tripped else {
        if Instant::now() >= guard.deadline {
            // Window elapsed with healthy signals: the epoch settles.
            state.guard = None;
        }
        return WatchReport::Unchanged;
    };
    let guard = state.guard.take().expect("guard checked above");
    state
        .quarantined
        .insert((guard.name.clone(), guard.version));
    stats.add_guard_trips(1);
    stats.add_quarantined_metrics(1);
    match service.rollback_epoch() {
        Ok(to_epoch) => {
            state.applied = state.prev_applied.take();
            WatchReport::RolledBack {
                from_epoch: guard.epoch,
                to_epoch,
                name: guard.name,
                version: guard.version,
                why,
            }
        }
        Err(e) => WatchReport::Rejected(format!(
            "guard tripped ({why}) but rollback failed: {e}; \
             metric `{}` v{} stays quarantined",
            guard.name, guard.version
        )),
    }
}

/// A background thread polling one weights file and hot-swapping the
/// service's metric — through the canary and guard gates — whenever the
/// file holds a new `(name, version)`.
pub struct MetricWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricWatcher {
    /// Starts watching `path` with the default [`WatchConfig`] (canary
    /// on, guard window off), polling every `interval`. The customizer
    /// must have been frozen from the same topology the service answers
    /// on (a mismatched swap is rejected per poll, not fatal).
    pub fn spawn(
        service: Arc<Service>,
        customizer: Arc<MetricCustomizer>,
        path: PathBuf,
        interval: Duration,
    ) -> MetricWatcher {
        MetricWatcher::spawn_with(service, customizer, path, interval, WatchConfig::default())
    }

    /// [`MetricWatcher::spawn`] with an explicit guard configuration.
    pub fn spawn_with(
        service: Arc<Service>,
        customizer: Arc<MetricCustomizer>,
        path: PathBuf,
        interval: Duration,
        cfg: WatchConfig,
    ) -> MetricWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("phast-metric-watcher".into())
            .spawn(move || {
                let mut state = WatchState::default();
                while !stop_flag.load(Ordering::Relaxed) {
                    let report = poll_metric_file(&service, &customizer, &path, &cfg, &mut state);
                    log_report(&service, &report);
                    // Sleep in small slices so shutdown is prompt even
                    // with a long poll interval — and so the guard
                    // window is evaluated promptly, not once per poll.
                    let mut left = interval;
                    loop {
                        let report = check_guard(&service, &cfg, &mut state);
                        log_report(&service, &report);
                        if left.is_zero() || stop_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        let nap = left.min(Duration::from_millis(50));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn metric watcher");
        MetricWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the watcher and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The watcher thread's stderr + counter policy for one report.
/// Rejections are counted and warned once per distinct content (the
/// dedupe happens in [`poll_metric_file`], which returns the quiet
/// [`WatchReport::StillRejected`] for repeats); canary failures and
/// rollbacks had their counters bumped at the decision site.
fn log_report(service: &Service, report: &WatchReport) {
    match report {
        WatchReport::Swapped {
            epoch,
            name,
            version,
        } => {
            eprintln!("metric watcher: published `{name}` v{version} as epoch {epoch}");
        }
        WatchReport::Rejected(why) => {
            // Transient read errors (a half-written file, a slow
            // writer) self-heal on the next poll, so this is a warning,
            // not a shutdown — but it must be *countable*, or a
            // permanently broken feed looks identical to a quiet one.
            service.stats().add_watch_errors(1);
            eprintln!("metric watcher: warning: {why} (keeping current epoch)");
        }
        WatchReport::CanaryFailed {
            name,
            version,
            detail,
        } => {
            service.stats().add_watch_errors(1);
            eprintln!(
                "metric watcher: canary rejected `{name}` v{version}: {detail} \
                 (metric quarantined, current epoch keeps serving)"
            );
        }
        WatchReport::RolledBack {
            from_epoch,
            to_epoch,
            name,
            version,
            why,
        } => {
            eprintln!(
                "metric watcher: guard tripped on `{name}` v{version} ({why}); \
                 rolled back epoch {from_epoch} -> {to_epoch} and quarantined the metric"
            );
        }
        WatchReport::Unchanged | WatchReport::StillRejected => {}
    }
}

impl Drop for MetricWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use phast_ch::{contract_graph, ContractionConfig};
    use phast_core::HeteroQuery;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("phast-watch-{}-{name}.json", std::process::id()));
        p
    }

    fn tree(svc: &Service, source: u32) -> Vec<phast_graph::Weight> {
        match svc.call(HeteroQuery::Tree { source }, None).unwrap() {
            phast_core::HeteroAnswer::Tree(d) => d,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poll_applies_new_metrics_and_skips_bad_or_stale_files() {
        let net = RoadNetworkConfig::new(8, 8, 4, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = MetricCustomizer::new(g.clone(), &h).unwrap();
        let svc = Service::for_graph(
            &g,
            ServeConfig {
                window: Duration::from_millis(0),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let cfg = WatchConfig::default();
        let path = temp_path("poll");
        let mut state = WatchState::default();
        // No file yet: nothing to do.
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::Unchanged
        );
        // A valid perturbed metric swaps to epoch 2 and changes answers.
        let before = tree(&svc, 5);
        let metric = MetricWeights::perturbed(&g, "rush-hour", 1, 42);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Swapped { epoch: 2, .. } => {}
            other => panic!("expected swap to epoch 2, got {other:?}"),
        }
        let after = tree(&svc, 5);
        assert_ne!(before, after, "a perturbed metric must change some tree");
        // Rewriting the same (name, version) is a no-op.
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::Unchanged
        );
        // Garbage is rejected once, then deduped by content hash: the
        // retry-storm of one customization attempt per poll is gone.
        std::fs::write(&path, "{not json").unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Rejected(_) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::StillRejected
        );
        assert_eq!(svc.epoch_id(), 2);
        // A wrong-arity metric is rejected by validation, not applied —
        // and the dedupe resets because the content changed.
        let bad = MetricWeights {
            name: "bad".into(),
            version: 9,
            weights: vec![1, 2, 3],
        };
        std::fs::write(&path, serde_json::to_string(&bad).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Rejected(why) => assert!(why.contains("customizing"), "{why}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::StillRejected
        );
        assert_eq!(svc.epoch_id(), 2);
        // A good metric after the bad spell publishes and clears the
        // rejection dedupe.
        let metric2 = MetricWeights::perturbed(&g, "rush-hour", 2, 43);
        std::fs::write(&path, serde_json::to_string(&metric2).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Swapped { epoch: 3, .. } => {}
            other => panic!("expected swap to epoch 3, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }

    #[test]
    fn canary_rejects_a_corrupted_customization_before_publish() {
        let net = RoadNetworkConfig::new(8, 8, 4, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = MetricCustomizer::new(g.clone(), &h).unwrap();
        let svc = Service::for_graph(
            &g,
            ServeConfig {
                window: Duration::from_millis(0),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let cfg = WatchConfig::default();
        let path = temp_path("canary");
        let mut state = WatchState::default();
        let baseline = tree(&svc, 3);

        // Arm the metrics-crate fault seam for this metric name only:
        // customization silently builds engines for corrupted weights.
        std::env::set_var(phast_metrics::CANARY_FAULT_ENV, "canary-poison");
        let poisoned = MetricWeights::perturbed(&g, "canary-poison", 1, 7);
        std::fs::write(&path, serde_json::to_string(&poisoned).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::CanaryFailed { name, version: 1, detail } => {
                assert_eq!(name, "canary-poison");
                assert!(detail.contains("diverged"), "{detail}");
            }
            other => panic!("expected canary failure, got {other:?}"),
        }
        // Never published: the epoch and every answer are untouched.
        assert_eq!(svc.epoch_id(), 1);
        assert_eq!(tree(&svc, 3), baseline);
        assert_eq!(svc.stats().canary_failures(), 1);
        assert_eq!(svc.stats().quarantined_metrics(), 1);
        assert!(state.is_quarantined("canary-poison", 1));

        // The unchanged file goes quiet (content dedupe), and even a
        // *rewritten* file with the same identity is refused without
        // another customization pass: quarantine is permanent.
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::StillRejected
        );
        let mut doc = serde_json::to_value(&poisoned).unwrap();
        doc["weights"][0] = serde_json::json!(17);
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Rejected(why) => assert!(why.contains("quarantined"), "{why}"),
            other => panic!("expected quarantine rejection, got {other:?}"),
        }
        assert_eq!(svc.stats().canary_failures(), 1, "one attempt, not one per poll");

        // A clean metric under a different name sails through the canary.
        std::env::remove_var(phast_metrics::CANARY_FAULT_ENV);
        let honest = MetricWeights::perturbed(&g, "honest", 1, 42);
        std::fs::write(&path, serde_json::to_string(&honest).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Swapped { epoch: 2, .. } => {}
            other => panic!("expected swap to epoch 2, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }

    #[test]
    fn guard_trip_rolls_back_and_quarantines_deterministically() {
        let net = RoadNetworkConfig::new(8, 8, 4, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = MetricCustomizer::new(g.clone(), &h).unwrap();
        let svc = Service::for_graph(
            &g,
            ServeConfig {
                window: Duration::from_millis(0),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let cfg = WatchConfig {
            guard_window: Duration::from_secs(3600),
            ..WatchConfig::default()
        };
        let path = temp_path("guard");
        let mut state = WatchState::default();
        let baseline = tree(&svc, 5);

        // Swapped: the publish arms a guard window.
        let metric = MetricWeights::perturbed(&g, "guarded", 1, 99);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Swapped { epoch: 2, .. } => {}
            other => panic!("expected swap to epoch 2, got {other:?}"),
        }
        assert!(state.guard_active());
        assert_ne!(tree(&svc, 5), baseline);

        // Healthy signals: the guard holds but does not trip.
        assert_eq!(check_guard(&svc, &cfg, &mut state), WatchReport::Unchanged);
        assert!(state.guard_active());

        // Guard-trip: a worker restart lands inside the window. The
        // service rolls back to the predecessor epoch and the metric is
        // quarantined.
        svc.stats().add_worker_restarts(1);
        match check_guard(&svc, &cfg, &mut state) {
            WatchReport::RolledBack {
                from_epoch: 2,
                to_epoch: 3,
                name,
                version: 1,
                why,
            } => {
                assert_eq!(name, "guarded");
                assert!(why.contains("worker restarts"), "{why}");
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert!(!state.guard_active());
        assert_eq!(svc.epoch_id(), 3);
        assert_eq!(svc.current_epoch().rolled_back_from, Some(2));
        assert_eq!(
            tree(&svc, 5),
            baseline,
            "rolled-back service answers on the predecessor metric"
        );
        assert_eq!(svc.stats().guard_trips(), 1);
        assert_eq!(svc.stats().epoch_rollbacks(), 1);
        assert_eq!(svc.stats().quarantined_metrics(), 1);

        // The quarantined metric still sits in the watched file; it is
        // refused without a re-customize and never re-published.
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Rejected(why) => assert!(why.contains("quarantined"), "{why}"),
            other => panic!("expected quarantine rejection, got {other:?}"),
        }
        assert_eq!(
            poll_metric_file(&svc, &customizer, &path, &cfg, &mut state),
            WatchReport::StillRejected
        );
        assert_eq!(svc.epoch_id(), 3);

        // With no guard armed, check_guard is a no-op.
        assert_eq!(check_guard(&svc, &cfg, &mut state), WatchReport::Unchanged);
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }

    #[test]
    fn an_elapsed_window_settles_and_an_external_swap_abandons_the_guard() {
        let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = MetricCustomizer::new(g.clone(), &h).unwrap();
        let svc = Service::for_graph(
            &g,
            ServeConfig {
                window: Duration::from_millis(0),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let cfg = WatchConfig {
            guard_window: Duration::from_millis(1),
            ..WatchConfig::default()
        };
        let path = temp_path("settle");
        let mut state = WatchState::default();
        let metric = MetricWeights::perturbed(&g, "settler", 1, 5);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        match poll_metric_file(&svc, &customizer, &path, &cfg, &mut state) {
            WatchReport::Swapped { .. } => {}
            other => panic!("expected swap, got {other:?}"),
        }
        assert!(state.guard_active());
        std::thread::sleep(Duration::from_millis(5));
        // Window elapsed with healthy signals: settled, no rollback.
        assert_eq!(check_guard(&svc, &cfg, &mut state), WatchReport::Unchanged);
        assert!(!state.guard_active());
        assert_eq!(svc.stats().guard_trips(), 0);
        assert_eq!(svc.epoch_id(), 2);

        // Re-arm by swapping again, then move the epoch externally: the
        // stale guard is abandoned, not tripped.
        let metric2 = MetricWeights::perturbed(&g, "settler", 2, 6);
        std::fs::write(&path, serde_json::to_string(&metric2).unwrap()).unwrap();
        let cfg_long = WatchConfig {
            guard_window: Duration::from_secs(3600),
            ..WatchConfig::default()
        };
        match poll_metric_file(&svc, &customizer, &path, &cfg_long, &mut state) {
            WatchReport::Swapped { epoch: 3, .. } => {}
            other => panic!("expected swap to epoch 3, got {other:?}"),
        }
        assert!(state.guard_active());
        let (p2, h2) = customizer
            .build(&MetricWeights::perturbed(&g, "external", 1, 8))
            .unwrap();
        svc.swap_epoch(Arc::new(p2), Some(Arc::new(h2))).unwrap();
        svc.stats().add_worker_restarts(1); // would trip, were the guard live
        assert_eq!(check_guard(&svc, &cfg_long, &mut state), WatchReport::Unchanged);
        assert!(!state.guard_active());
        assert_eq!(svc.stats().guard_trips(), 0);
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }

    #[test]
    fn spawned_watcher_picks_up_a_dropped_file() {
        let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
        let g = net.graph;
        let h = contract_graph(&g, &ContractionConfig::default());
        let customizer = Arc::new(MetricCustomizer::new(g.clone(), &h).unwrap());
        let svc = Service::for_graph(&g, ServeConfig::default());
        let path = temp_path("spawned");
        let _ = std::fs::remove_file(&path);
        let mut watcher = MetricWatcher::spawn(
            Arc::clone(&svc),
            customizer,
            path.clone(),
            Duration::from_millis(10),
        );
        let metric = MetricWeights::perturbed(&g, "live", 7, 9);
        std::fs::write(&path, serde_json::to_string(&metric).unwrap()).unwrap();
        let t0 = std::time::Instant::now();
        while svc.epoch_id() < 2 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.epoch_id(), 2, "watcher must publish the new metric");
        assert_eq!(svc.stats().metric_swaps(), 1);
        // A garbage rewrite is rejected but *counted*: transient weights-
        // file errors must be visible in stats, not only on stderr.
        assert_eq!(svc.stats().watch_errors(), 0);
        std::fs::write(&path, "{not json").unwrap();
        let t0 = std::time::Instant::now();
        while svc.stats().watch_errors() == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            svc.stats().watch_errors() >= 1,
            "rejected polls must bump watch_errors"
        );
        assert_eq!(svc.epoch_id(), 2, "rejected file must not change the epoch");
        // The content dedupe rate-limits the storm: the bad file keeps
        // sitting there through many poll intervals, yet the error count
        // stays at one.
        let errors = svc.stats().watch_errors();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            svc.stats().watch_errors(),
            errors,
            "an unchanged bad file must not re-count on every poll"
        );
        watcher.shutdown();
        let _ = std::fs::remove_file(&path);
        svc.shutdown();
    }
}
