//! Pre-admission load shedding: when the service is falling behind,
//! refuse work *early* with a typed `overloaded` reply and a
//! `retry_after_ms` hint instead of queuing until deadlines blow.
//!
//! Two signals feed the decision, both cheap enough to consult on every
//! submission:
//!
//! * **Queue depth.** Submissions beyond
//!   [`ServeConfig::shed_queue_depth`](crate::ServeConfig) are shed. The
//!   threshold sits *below* the hard queue capacity, so the ladder of
//!   degradation under rising load is: normal admission → `overloaded`
//!   (with a retry hint) → `queue_full` (the queue itself is the
//!   backstop, e.g. when shedding is disabled).
//! * **Queue latency.** An exponentially weighted moving average of how
//!   long jobs actually waited between admission and batch formation.
//!   When [`ServeConfig::shed_wait`](crate::ServeConfig) is set and the
//!   EWMA exceeds it, the service sheds even at shallow depths — the
//!   signal that each queued request is *expensive*, not merely that
//!   there are many of them.
//!
//! The `retry_after_ms` hint is latency-derived: estimated drain time of
//! the current queue at the observed per-request service rate, clamped to
//! a sane range. Workers feed the tracker; [`Service::submit`]
//! (`crate::Service::submit`) consults it before touching the queue.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// EWMA smoothing factor: each new observation contributes 1/8. Small
/// enough to ride out one odd batch, large enough to track a load shift
/// within a few batches.
const EWMA_SHIFT: u32 = 3;

/// Fixed-point fraction bits of the stored EWMA. Without them the
/// integer update `old - (old >> 3) + (sample >> 3)` truncates both
/// shifts: samples under 8 ns contribute nothing and a value under 8 ns
/// never decays, so the average can neither reach nor leave the
/// small-load regime. 16 fraction bits keep the truncation error below
/// 2⁻¹³ ns per step while still fitting ~9 years of nanoseconds.
const EWMA_FRAC_BITS: u32 = 16;

/// Floor of the `retry_after_ms` hint — retrying sooner than this is
/// never useful (a batch window is milliseconds).
const MIN_RETRY_AFTER_MS: u64 = 5;

/// Ceiling of the `retry_after_ms` hint — past this the client should
/// rather give up on its deadline than keep waiting.
const MAX_RETRY_AFTER_MS: u64 = 5_000;

/// One exponentially weighted moving average, safe for genuinely zero
/// samples: an explicit init flag seeds the first observation (`0` is a
/// legitimate value, not the "uninitialized" sentinel it used to be) and
/// the value is stored in fixed point (see [`EWMA_FRAC_BITS`]) so tiny
/// samples still pull the average and a loaded average decays all the way
/// back to zero under zero-duration samples.
#[derive(Debug, Default)]
struct EwmaCell {
    /// The EWMA in nanoseconds, left-shifted by [`EWMA_FRAC_BITS`].
    scaled: AtomicU64,
    /// Whether any sample has been folded in yet.
    init: AtomicBool,
}

impl EwmaCell {
    fn update(&self, sample_ns: u64) {
        let scaled_sample = sample_ns.saturating_mul(1 << EWMA_FRAC_BITS);
        // Relaxed RMW: the EWMA is an advisory smoothing, not a
        // correctness invariant — a lost update under contention only
        // delays the smoothing by one batch. A racing reader between the
        // flag swap and the seed store sees a zero-initialized average,
        // which is the pre-seed state anyway.
        if !self.init.swap(true, Ordering::Relaxed) {
            self.scaled.store(scaled_sample, Ordering::Relaxed);
            return;
        }
        let old = self.scaled.load(Ordering::Relaxed);
        let new = old - (old >> EWMA_SHIFT) + (scaled_sample >> EWMA_SHIFT);
        self.scaled.store(new, Ordering::Relaxed);
    }

    /// The smoothed value, truncated back to whole nanoseconds.
    fn get_ns(&self) -> u64 {
        self.scaled.load(Ordering::Relaxed) >> EWMA_FRAC_BITS
    }
}

/// Lock-free tracker of queue-wait and per-request service latency.
/// Written by workers (once per batch), read by every submission.
#[derive(Debug, Default)]
pub struct LoadTracker {
    /// EWMA of job wait time between admission and batch formation, ns.
    ewma_wait_ns: EwmaCell,
    /// EWMA of per-request service time inside a batch, ns.
    ewma_service_ns: EwmaCell,
}

impl LoadTracker {
    /// Folds one job's admission-to-batch wait into the wait EWMA.
    pub fn observe_wait(&self, wait: Duration) {
        self.ewma_wait_ns
            .update(wait.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Folds one batch's per-request service time into the service EWMA.
    pub fn observe_batch(&self, elapsed: Duration, requests: usize) {
        if requests == 0 {
            return;
        }
        let per_request = elapsed.as_nanos() / requests as u128;
        self.ewma_service_ns
            .update(per_request.min(u128::from(u64::MAX)) as u64);
    }

    /// The smoothed admission-to-batch wait.
    pub fn ewma_wait(&self) -> Duration {
        Duration::from_nanos(self.ewma_wait_ns.get_ns())
    }

    /// The smoothed per-request service time.
    pub fn ewma_service(&self) -> Duration {
        Duration::from_nanos(self.ewma_service_ns.get_ns())
    }

    /// Estimated time to drain `depth` queued requests, as a clamped
    /// `retry_after_ms` hint. With no service history yet the floor
    /// applies — an honest "soon, but not now".
    pub fn retry_after_ms(&self, depth: usize) -> u64 {
        let per_request = self.ewma_service_ns.get_ns();
        let drain_ms = (u128::from(per_request) * depth as u128) / 1_000_000;
        (drain_ms.min(u128::from(u64::MAX)) as u64).clamp(MIN_RETRY_AFTER_MS, MAX_RETRY_AFTER_MS)
    }

    /// Shed decision for a submission that would see `depth` requests
    /// already queued. `Some(retry_after_ms)` means shed.
    pub fn should_shed(
        &self,
        depth: usize,
        shed_queue_depth: usize,
        shed_wait: Option<Duration>,
    ) -> Option<u64> {
        let deep = depth >= shed_queue_depth;
        let slow = depth > 0 && shed_wait.is_some_and(|limit| self.ewma_wait() > limit);
        if deep || slow {
            Some(self.retry_after_ms(depth.max(1)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_sheds_on_depth_with_floor_hint() {
        let t = LoadTracker::default();
        assert_eq!(t.should_shed(3, 4, None), None);
        let hint = t.should_shed(4, 4, None).expect("at threshold -> shed");
        assert_eq!(hint, MIN_RETRY_AFTER_MS);
    }

    #[test]
    fn retry_hint_tracks_observed_service_rate() {
        let t = LoadTracker::default();
        // Saturate the EWMA at ~2ms per request.
        for _ in 0..64 {
            t.observe_batch(Duration::from_millis(16), 8);
        }
        let per_req = t.ewma_service();
        assert!(
            per_req > Duration::from_micros(1500) && per_req < Duration::from_micros(2500),
            "{per_req:?}"
        );
        // Draining 100 queued requests at ~2ms each is ~200ms.
        let hint = t.retry_after_ms(100);
        assert!((100..=400).contains(&hint), "{hint}");
        // And the hint is clamped at both ends.
        assert_eq!(t.retry_after_ms(0), MIN_RETRY_AFTER_MS);
        for _ in 0..64 {
            t.observe_batch(Duration::from_secs(1000), 1);
        }
        assert_eq!(t.retry_after_ms(1000), MAX_RETRY_AFTER_MS);
    }

    #[test]
    fn ewma_decays_to_zero_under_zero_load_samples() {
        // Regression: `0` doubled as the uninitialized sentinel, so a
        // loaded EWMA re-seeded itself from the next observation instead
        // of decaying, and values under 2^EWMA_SHIFT ns could never decay
        // at all. After a busy spell, sustained zero-duration waits must
        // bring the average all the way back to zero.
        let t = LoadTracker::default();
        for _ in 0..16 {
            t.observe_wait(Duration::from_millis(1));
        }
        assert!(t.ewma_wait() >= Duration::from_micros(500));
        for _ in 0..400 {
            t.observe_wait(Duration::ZERO);
        }
        assert_eq!(t.ewma_wait(), Duration::ZERO, "EWMA stuck above zero");
        // And a zero sample mid-stream is folded in, not treated as
        // "uninitialized": the next large sample must NOT re-seed the
        // average wholesale.
        let t = LoadTracker::default();
        t.observe_wait(Duration::ZERO); // seeds a genuine zero
        t.observe_wait(Duration::from_millis(8));
        assert!(
            t.ewma_wait() <= Duration::from_millis(2),
            "zero sample re-seeded the EWMA: {:?}",
            t.ewma_wait()
        );
    }

    #[test]
    fn ewma_converges_onto_tiny_samples() {
        // Regression: samples under 2^EWMA_SHIFT = 8 ns truncated to a
        // zero contribution, so the EWMA could never track a tiny true
        // load. With fixed-point storage it converges to within 1 ns.
        let t = LoadTracker::default();
        for _ in 0..8 {
            t.observe_wait(Duration::from_millis(1));
        }
        for _ in 0..2000 {
            t.observe_wait(Duration::from_nanos(5));
        }
        let got = t.ewma_wait();
        assert!(
            (Duration::from_nanos(4)..=Duration::from_nanos(5)).contains(&got),
            "EWMA did not converge onto the 5 ns load: {got:?}"
        );
    }

    #[test]
    fn latency_signal_sheds_even_at_shallow_depth() {
        let t = LoadTracker::default();
        for _ in 0..64 {
            t.observe_wait(Duration::from_millis(80));
        }
        let limit = Some(Duration::from_millis(20));
        assert!(t.should_shed(1, 1024, limit).is_some(), "slow queue -> shed");
        // An empty queue never sheds: there is nothing to wait behind.
        assert_eq!(t.should_shed(0, 1024, limit), None);
        // A healthy wait EWMA does not shed below the depth threshold.
        let healthy = LoadTracker::default();
        healthy.observe_wait(Duration::from_millis(1));
        assert_eq!(healthy.should_shed(1, 1024, limit), None);
    }
}
