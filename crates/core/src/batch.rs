//! Heterogeneous source batches: one sweep, many request shapes.
//!
//! The service layer (crate `phast-serve`) collects concurrent requests —
//! full shortest path trees, one-to-many rows, point-to-point distances —
//! and wants to answer all of them with **one** `k`-trees-per-sweep pass
//! (Section IV-B): every request contributes its source as one interleaved
//! lane, the sweep amortizes the `G↓` scan over all of them, and each
//! answer is then extracted from its lane. This module is that entry
//! point, kept in `phast-core` so the batching logic stays next to (and is
//! tested against) the engines it drives.
//!
//! Batches shorter than the engine's `k` are padded by repeating the first
//! source; padded lanes compute a real (duplicate) tree that is simply
//! never read back, which the correctness tests for duplicate sources
//! already cover.

use crate::multi_tree::MultiTreeEngine;
use phast_graph::{Vertex, Weight};

/// One request riding a heterogeneous batch (original vertex IDs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeteroQuery {
    /// A full shortest path tree: all `n` distances from `source`.
    Tree {
        /// Tree root.
        source: Vertex,
    },
    /// A one-to-many row: distances from `source` to each target, in
    /// target order.
    Many {
        /// Row source.
        source: Vertex,
        /// Targets, any order, duplicates allowed.
        targets: Vec<Vertex>,
    },
    /// A single point-to-point distance.
    Point {
        /// Path source.
        source: Vertex,
        /// Path target.
        target: Vertex,
    },
}

impl HeteroQuery {
    /// The source vertex this query contributes as a batch lane.
    pub fn source(&self) -> Vertex {
        match *self {
            HeteroQuery::Tree { source }
            | HeteroQuery::Many { source, .. }
            | HeteroQuery::Point { source, .. } => source,
        }
    }
}

/// The answer to one [`HeteroQuery`], in the same position.
///
/// Distances use the crate's `INF` sentinel for unreachable vertices
/// (including the `Point` shape — callers that want an option can compare
/// against [`phast_graph::INF`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeteroAnswer {
    /// All distances, in original vertex order.
    Tree(Vec<Weight>),
    /// One distance per requested target, in target order.
    Many(Vec<Weight>),
    /// The point-to-point distance (`INF` if unreachable).
    Point(Weight),
    /// A many-to-many matrix: one row per source, one column per target
    /// (the reply to the service layer's `matrix` request, which runs on
    /// the restricted-sweep rung rather than as a batch lane).
    Matrix(Vec<Vec<Weight>>),
}

/// Runs up to `engine.k()` heterogeneous queries as **one** batched sweep
/// and extracts each answer from its lane.
///
/// Short batches are padded with copies of the first source, so the sweep
/// cost is always that of a full `k`-batch; the caller (the service
/// scheduler) picks an engine width matching its admission window. Returns
/// one answer per query, in order.
///
/// # Panics
///
/// Panics if `queries` is empty, holds more than `engine.k()` entries, or
/// names a vertex outside the instance.
pub fn run_hetero_batch(
    engine: &mut MultiTreeEngine<'_>,
    queries: &[HeteroQuery],
) -> Vec<HeteroAnswer> {
    let k = engine.k();
    assert!(!queries.is_empty(), "empty heterogeneous batch");
    assert!(
        queries.len() <= k,
        "batch of {} exceeds engine width {k}",
        queries.len()
    );
    let n = engine.phast().num_vertices() as Vertex;
    for q in queries {
        assert!(q.source() < n, "source {} out of range", q.source());
        if let HeteroQuery::Many { targets, .. } = q {
            for &t in targets {
                assert!(t < n, "target {t} out of range");
            }
        }
        if let HeteroQuery::Point { target, .. } = q {
            assert!(*target < n, "target {target} out of range");
        }
    }
    let mut sources: Vec<Vertex> = queries.iter().map(HeteroQuery::source).collect();
    sources.resize(k, sources[0]);
    engine.run(&sources);
    queries
        .iter()
        .enumerate()
        .map(|(lane, q)| match q {
            HeteroQuery::Tree { .. } => HeteroAnswer::Tree(engine.tree_distances(lane)),
            HeteroQuery::Many { targets, .. } => HeteroAnswer::Many(
                targets.iter().map(|&t| engine.dist_of(lane, t)).collect(),
            ),
            HeteroQuery::Point { target, .. } => {
                HeteroAnswer::Point(engine.dist_of(lane, *target))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phast;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn mixed_batch_matches_dijkstra() {
        let net = RoadNetworkConfig::new(12, 12, 17, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let last = net.graph.num_vertices() as Vertex - 1;
        let mut e = p.multi_engine(4);
        let queries = vec![
            HeteroQuery::Tree { source: 3 },
            HeteroQuery::Many {
                source: 50,
                targets: vec![0, 7, 7, last],
            },
            HeteroQuery::Point {
                source: 99,
                target: 12,
            },
        ];
        let answers = run_hetero_batch(&mut e, &queries);
        let want3 = shortest_paths(net.graph.forward(), 3).dist;
        let want50 = shortest_paths(net.graph.forward(), 50).dist;
        let want99 = shortest_paths(net.graph.forward(), 99).dist;
        assert_eq!(answers[0], HeteroAnswer::Tree(want3));
        assert_eq!(
            answers[1],
            HeteroAnswer::Many(vec![want50[0], want50[7], want50[7], want50[last as usize]])
        );
        assert_eq!(answers[2], HeteroAnswer::Point(want99[12]));
    }

    #[test]
    fn single_query_is_padded_to_full_width() {
        let net = RoadNetworkConfig::new(8, 8, 18, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(8);
        let answers = run_hetero_batch(&mut e, &[HeteroQuery::Tree { source: 5 }]);
        let want = shortest_paths(net.graph.forward(), 5).dist;
        assert_eq!(answers, vec![HeteroAnswer::Tree(want)]);
        // All 8 lanes ran (padding repeats the source).
        assert_eq!(e.sources(), &[5; 8]);
    }

    #[test]
    fn engine_is_reusable_across_hetero_batches() {
        let net = RoadNetworkConfig::new(9, 9, 19, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let mut e = p.multi_engine(4);
        for round in 0..5u32 {
            let s = (round * 13) % n;
            let t = (s + 1) % n;
            let answers = run_hetero_batch(
                &mut e,
                &[
                    HeteroQuery::Point { source: s, target: t },
                    HeteroQuery::Tree { source: s },
                ],
            );
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(answers[0], HeteroAnswer::Point(want[t as usize]));
            assert_eq!(answers[1], HeteroAnswer::Tree(want));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds engine width")]
    fn oversized_batch_is_rejected() {
        let net = RoadNetworkConfig::new(4, 4, 20, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(1);
        let qs = vec![HeteroQuery::Tree { source: 0 }, HeteroQuery::Tree { source: 1 }];
        run_hetero_batch(&mut e, &qs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_is_rejected() {
        let net = RoadNetworkConfig::new(4, 4, 21, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(1);
        let qs = vec![HeteroQuery::Point {
            source: 0,
            target: 1_000_000,
        }];
        run_hetero_batch(&mut e, &qs);
    }
}
