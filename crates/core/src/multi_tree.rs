//! Computing `k` shortest path trees per sweep (Section IV-B).
//!
//! The `k` distance labels of a vertex are interleaved (consecutive in
//! memory), so the sweep relaxes one arc for all `k` trees with sequential
//! loads — and, on x86-64, with packed SSE/AVX `add`/`min`.

use crate::simd::{best_simd_for, sweep_range, SimdLevel, SweepParams, MAX_K};
use crate::Phast;
use phast_graph::{Vertex, Weight, INF};
use phast_obs::{PhaseTimer, QueryStats};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// Per-query state for `k`-trees-per-sweep PHAST computations.
pub struct MultiTreeEngine<'p> {
    p: &'p Phast,
    k: usize,
    /// `n * k` labels; the labels of sweep vertex `v` occupy
    /// `dist[v*k .. (v+1)*k]`.
    dist: Vec<Weight>,
    marked: Vec<u8>,
    queue: IndexedBinaryHeap,
    simd: SimdLevel,
    /// Original IDs of the sources of the last batch.
    sources: Vec<Vertex>,
    /// Statistics of the most recent batch (reset by `upward_batch`);
    /// upward counters are summed over the `k` searches.
    stats: QueryStats,
}

impl<'p> MultiTreeEngine<'p> {
    /// Creates an engine computing `k` trees per sweep (`1 <= k <= 64`).
    pub fn new(p: &'p Phast, k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        let n = p.num_vertices();
        Self {
            p,
            k,
            dist: vec![INF; n * k],
            marked: vec![0; n],
            queue: IndexedBinaryHeap::new(n),
            simd: best_simd_for(k),
            sources: Vec::new(),
            stats: QueryStats::default(),
        }
    }

    /// Statistics of the most recent batch: phase times, the always-on
    /// settled count (summed over the `k` upward searches), and — when
    /// built with the `obs-counters` feature — the arc/mark/level
    /// counters (see [`phast_obs`]).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Mutable statistics access for the sibling sweep implementations.
    pub(crate) fn stats_mut(&mut self) -> &mut QueryStats {
        &mut self.stats
    }

    /// Batch width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel currently selected.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Forces a kernel (ablation: measure SSE off, as Table II does).
    /// Ignored (falls back to scalar) if the CPU lacks the feature or `k`
    /// violates the lane constraint.
    pub fn force_simd(&mut self, level: SimdLevel) {
        self.simd = match level {
            SimdLevel::Scalar => SimdLevel::Scalar,
            other if best_simd_for(self.k) != SimdLevel::Scalar => other,
            _ => SimdLevel::Scalar,
        };
    }

    /// Phase 1 for tree `i`: forward CH search from sweep vertex `s`,
    /// writing interleaved labels. On the first touch of a vertex in this
    /// batch its whole row is initialized to `∞`.
    fn upward(&mut self, s: Vertex, i: usize) {
        let k = self.k;
        self.queue.clear();
        let row = s as usize * k;
        if self.marked[s as usize] == 0 {
            self.dist[row..row + k].fill(INF);
            self.marked[s as usize] = 1;
        }
        self.dist[row + i] = 0;
        self.queue.insert(s, 0);
        let mut settled: u64 = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            settled += 1;
            let out = self.p.up().out(v);
            self.stats.counters.add_upward_relaxed(out.len() as u64);
            for a in out {
                let w = a.head as usize;
                let cand = dv + a.weight;
                let slot = w * k + i;
                if self.marked[w] == 0 {
                    self.dist[w * k..(w + 1) * k].fill(INF);
                    self.marked[w] = 1;
                }
                if cand < self.dist[slot] {
                    let fresh = self.dist[slot] == INF;
                    self.dist[slot] = cand;
                    if fresh && !self.queue.contains(a.head) {
                        self.queue.insert(a.head, cand);
                    } else if self.queue.contains(a.head) {
                        self.queue.decrease_key(a.head, cand);
                    } else {
                        // Already settled with a larger bound; re-insert.
                        self.queue.insert(a.head, cand);
                    }
                }
            }
        }
        self.stats.counters.add_upward_settled(settled);
    }

    /// Phase 1 for a whole batch (shared by [`Self::run`] and the parallel
    /// sweep in `parallel.rs`).
    pub(crate) fn upward_batch(&mut self, sources: &[Vertex]) {
        assert_eq!(
            sources.len(),
            self.k,
            "batch must contain exactly k sources"
        );
        self.sources = sources.to_vec();
        self.stats.reset();
        let timer = PhaseTimer::start();
        for (i, &s) in sources.iter().enumerate() {
            let sw = self.p.to_sweep(s);
            self.upward(sw, i);
        }
        self.stats.upward_time = timer.elapsed();
    }

    /// Splits the engine into the pieces the sweep kernels need.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&'p Phast, usize, SimdLevel, &mut [Weight], &mut [u8]) {
        (self.p, self.k, self.simd, &mut self.dist, &mut self.marked)
    }

    /// Runs one batch: exactly `k` sources (original IDs). Results stay in
    /// the engine until the next batch.
    pub fn run(&mut self, sources: &[Vertex]) {
        self.upward_batch(sources);
        let timer = PhaseTimer::start();
        // Counted up front; the kernel clears marks while sweeping.
        #[cfg(feature = "obs-counters")]
        let cleared = self.marked.iter().filter(|&&m| m != 0).count() as u64;
        let params = SweepParams {
            first: self.p.down().first(),
            arcs: self.p.down().arcs(),
            k: self.k,
            dist: self.dist.as_mut_ptr(),
            marked: self.marked.as_mut_ptr(),
        };
        // SAFETY: single-threaded call over the whole range; the arrays are
        // exactly n*k / n long and the sweep order is topological
        // (Phast::validate checked tails precede heads).
        unsafe { sweep_range(self.simd, &params, 0..self.p.num_vertices()) };
        #[cfg(feature = "obs-counters")]
        self.stats.counters.add_marks_cleared(cleared);
        // The batched sweep is oblivious: every downward arc is relaxed
        // once per tree, one block per level.
        let levels = self.p.num_levels() as u64;
        self.stats
            .counters
            .add_sweep_arcs(self.p.down().arcs().len() as u64 * self.k as u64);
        self.stats.counters.add_levels_swept(levels);
        self.stats.counters.add_blocks_executed(levels);
        self.stats.sweep_time = timer.elapsed();
    }

    /// Label of tree `i` at original vertex `v` (after [`Self::run`]).
    pub fn dist_of(&self, i: usize, v: Vertex) -> Weight {
        assert!(i < self.k);
        self.dist[self.p.to_sweep(v) as usize * self.k + i]
    }

    /// All labels of tree `i` in original vertex order.
    pub fn tree_distances(&self, i: usize) -> Vec<Weight> {
        assert!(i < self.k);
        let n = self.p.num_vertices();
        let mut out = vec![INF; n];
        for sweep in 0..n {
            out[self.p.to_original(sweep as Vertex) as usize] = self.dist[sweep * self.k + i];
        }
        out
    }

    /// The interleaved sweep-order label matrix.
    pub fn labels(&self) -> &[Weight] {
        &self.dist
    }

    /// Sources of the last batch.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// The instance this engine runs on.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use proptest::prelude::*;

    fn check_batch(g: &phast_graph::Graph, k: usize, simd: Option<SimdLevel>) {
        let p = Phast::preprocess(g);
        let mut e = p.multi_engine(k);
        if let Some(level) = simd {
            e.force_simd(level);
        }
        let n = g.num_vertices() as Vertex;
        let sources: Vec<Vertex> = (0..k as Vertex).map(|i| (i * 7 + 1) % n).collect();
        e.run(&sources);
        for (i, &s) in sources.iter().enumerate() {
            let want = shortest_paths(g.forward(), s).dist;
            assert_eq!(e.tree_distances(i), want, "tree {i} from {s}");
        }
    }

    #[test]
    fn sixteen_trees_match_dijkstra() {
        let net = RoadNetworkConfig::new(14, 14, 1, Metric::TravelTime).build();
        check_batch(&net.graph, 16, None);
    }

    #[test]
    fn odd_k_uses_scalar_and_matches() {
        let net = RoadNetworkConfig::new(10, 10, 2, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let e = p.multi_engine(5);
        assert_eq!(e.simd_level(), SimdLevel::Scalar);
        check_batch(&net.graph, 5, None);
    }

    #[test]
    fn duplicate_sources_in_one_batch() {
        let net = RoadNetworkConfig::new(8, 8, 3, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(4);
        e.run(&[9, 9, 9, 9]);
        let want = shortest_paths(net.graph.forward(), 9).dist;
        for i in 0..4 {
            assert_eq!(e.tree_distances(i), want);
        }
    }

    #[test]
    fn engine_reusable_across_batches() {
        let net = RoadNetworkConfig::new(9, 9, 4, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(4);
        for round in 0..6u32 {
            let sources: Vec<Vertex> = (0..4).map(|i| (round * 4 + i) % 81).collect();
            e.run(&sources);
            for (i, &s) in sources.iter().enumerate() {
                let want = shortest_paths(net.graph.forward(), s).dist;
                assert_eq!(e.tree_distances(i), want, "round {round} tree {i}");
            }
        }
    }

    #[test]
    fn all_kernels_agree() {
        let net = RoadNetworkConfig::new(12, 12, 5, Metric::TravelTime).build();
        check_batch(&net.graph, 8, Some(SimdLevel::Scalar));
        if is_x86_feature_detected!("sse4.1") {
            check_batch(&net.graph, 8, Some(SimdLevel::Sse41));
        }
        if is_x86_feature_detected!("avx2") {
            check_batch(&net.graph, 8, Some(SimdLevel::Avx2));
            check_batch(&net.graph, 12, Some(SimdLevel::Avx2)); // odd half-chunk
        }
    }

    #[test]
    fn maximum_batch_width() {
        use crate::simd::MAX_K;
        let net = RoadNetworkConfig::new(8, 8, 31, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.multi_engine(MAX_K);
        let n = net.graph.num_vertices() as Vertex;
        let sources: Vec<Vertex> = (0..MAX_K as Vertex).map(|i| i % n).collect();
        e.run(&sources);
        for probe in [0usize, MAX_K / 2, MAX_K - 1] {
            let want = shortest_paths(net.graph.forward(), sources[probe]).dist;
            assert_eq!(e.tree_distances(probe), want, "lane {probe}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=")]
    fn oversized_k_is_rejected() {
        let net = RoadNetworkConfig::new(4, 4, 32, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let _ = p.multi_engine(crate::simd::MAX_K + 1);
    }

    #[test]
    fn degree_sorted_order_is_still_correct() {
        use crate::{PhastBuilder, SweepOrder};
        let net = RoadNetworkConfig::new(10, 10, 33, Metric::TravelTime).build();
        let p = PhastBuilder::new()
            .order(SweepOrder::ByLevelThenDegree)
            .build(&net.graph);
        let mut e = p.multi_engine(4);
        e.run(&[0, 9, 40, 77]);
        for (i, s) in [0u32, 9, 40, 77].into_iter().enumerate() {
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(e.tree_distances(i), want);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn random_graph_batches(
            n in 2usize..25,
            extra in 0usize..50,
            seed in 0u64..200,
            k in 1usize..10,
        ) {
            let g = strongly_connected_gnm(n, extra, 25, seed);
            let p = Phast::preprocess(&g);
            let mut e = p.multi_engine(k);
            let sources: Vec<Vertex> =
                (0..k as u64).map(|i| ((seed + i * 3) % n as u64) as Vertex).collect();
            e.run(&sources);
            for (i, &s) in sources.iter().enumerate() {
                let want = shortest_paths(g.forward(), s).dist;
                prop_assert_eq!(e.tree_distances(i), want);
            }
        }
    }
}
