//! PHAST: single-source shortest path trees by linear sweep.
//!
//! After contraction-hierarchy preprocessing, one NSSP computation is
//! (Section III):
//!
//! 1. a forward CH search from the source `s` in the upward graph `G↑`
//!    (a few hundred vertices), then
//! 2. a *linear sweep* over all vertices in descending level order,
//!    relaxing each vertex's incoming downward arcs.
//!
//! Because the sweep order is independent of `s`, this crate renumbers
//! vertices once — higher levels first, input order kept within a level
//! (Section IV-A) — so the sweep reads `first`, `arclist` and the distance
//! array almost purely sequentially. On top of the reordered sweep it
//! implements every acceleration of Sections IV–V:
//!
//! * implicit initialization with per-vertex visited marks (IV-C);
//! * `k` trees per sweep with interleaved distance labels (IV-B);
//! * explicit SSE4.1 and AVX2 kernels for the batched sweep;
//! * per-source multi-core parallelism and intra-level parallel sweeps (V);
//! * parent-pointer trees in `G+` and their reconstruction in the original
//!   graph (VII-A).
//!
//! Entry point: [`Phast::preprocess`] (or [`PhastBuilder`]), then
//! [`Phast::engine`] for repeated tree computations.

pub mod batch;
pub mod multi_tree;
pub mod one_to_many;
pub mod parallel;
pub mod rphast;
pub mod simd;
pub mod sweep;
pub mod tree;

use phast_ch::hierarchy::NO_MIDDLE;
use phast_ch::{contract_graph, ContractionConfig, Hierarchy};
use phast_graph::csr::ReverseCsr;
use phast_graph::{Arc, Csr, Graph, Permutation, Vertex, Weight, INF};

pub use batch::{run_hetero_batch, HeteroAnswer, HeteroQuery};
pub use multi_tree::MultiTreeEngine;
pub use one_to_many::{OneToManyEngine, TargetRestriction};
pub use rphast::{RestrictedEngine, RestrictedMultiEngine, SelectionBuilder, TargetSelection};
pub use parallel::{par_multi_trees, par_multi_trees_with, par_trees, SweepPlan};
pub use sweep::PhastEngine;
pub use tree::TreeEngine;

/// Which direction the solver computes trees for.
///
/// A *reverse* solver computes distances **to** the source from every
/// vertex — what arc flags and reach need. It reuses the same hierarchy:
/// the upward graph of the reversed input is the stored backward graph and
/// vice versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Distances from the source (ordinary shortest path trees).
    Forward,
    /// Distances from every vertex *to* the source.
    Reverse,
}

/// How the second phase orders its scan — the Table I ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOrder {
    /// Scan in descending rank order through the original IDs (the basic
    /// algorithm of Section III; "original ordering" in Table I).
    ByRank,
    /// Renumber vertices by descending level and sweep linearly
    /// (Section IV-A; "reordered by level" in Table I).
    ByLevel,
    /// Like [`Self::ByLevel`] but sorted by in-degree within each level —
    /// the ordering Section VI *tested and rejected* for GPHAST ("this has
    /// a strong negative effect on the locality of the distance labels");
    /// provided for the ablation that reproduces the negative result.
    ByLevelThenDegree,
}

/// Configures PHAST preprocessing.
#[derive(Clone, Debug)]
pub struct PhastBuilder {
    ch: ContractionConfig,
    direction: Direction,
    order: SweepOrder,
}

impl Default for PhastBuilder {
    fn default() -> Self {
        Self {
            ch: ContractionConfig::default(),
            direction: Direction::Forward,
            order: SweepOrder::ByLevel,
        }
    }
}

impl PhastBuilder {
    /// Starts from defaults (forward direction, by-level reordering).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the contraction configuration.
    pub fn ch_config(mut self, cfg: ContractionConfig) -> Self {
        self.ch = cfg;
        self
    }

    /// Builds a reverse-direction solver.
    pub fn direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }

    /// Selects the sweep order (ablation; [`SweepOrder::ByLevel`] is the
    /// paper's fast configuration).
    pub fn order(mut self, o: SweepOrder) -> Self {
        self.order = o;
        self
    }

    /// Runs CH preprocessing and assembles the solver.
    pub fn build(self, g: &Graph) -> Phast {
        let h = contract_graph(g, &self.ch);
        self.build_with_hierarchy(g, &h)
    }

    /// Assembles the solver from an existing hierarchy (lets one hierarchy
    /// serve a forward and a reverse solver).
    pub fn build_with_hierarchy(self, g: &Graph, h: &Hierarchy) -> Phast {
        Phast::assemble(g, h, self.direction, self.order)
    }
}

/// The preprocessed PHAST instance: renumbered search graphs plus the level
/// metadata the sweeps need. Immutable and shareable across threads; per
/// -query state lives in the engines.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Phast {
    /// `old -> sweep` vertex renumbering.
    perm: Permutation,
    /// `sweep -> old` (inverse of `perm`).
    old_of_sweep: Vec<Vertex>,
    /// Level of each sweep vertex; non-increasing in sweep order.
    level_of_sweep: Vec<u32>,
    /// Sweep-ID ranges per level, highest level first; concatenation covers
    /// `0..n` exactly.
    level_ranges: Vec<std::ops::Range<u32>>,
    /// Upward out-arcs in sweep IDs (arc heads have *smaller* sweep IDs).
    up: Csr,
    /// Middle vertex per `up` arc ([`NO_MIDDLE`] for original arcs).
    up_middle: Vec<Vertex>,
    /// Downward incoming arcs per sweep vertex (tails have smaller IDs).
    down: ReverseCsr,
    /// Middle vertex per `down` arc.
    down_middle: Vec<Vertex>,
    /// The input graph's incoming arcs in sweep IDs (direction-adjusted),
    /// used to rebuild original-graph parent pointers.
    orig_incoming: ReverseCsr,
    direction: Direction,
    num_shortcuts: usize,
}

impl Phast {
    /// Full preprocessing with defaults: CH, then by-level reordering.
    ///
    /// ```
    /// use phast_core::Phast;
    /// use phast_graph::GraphBuilder;
    ///
    /// let mut b = GraphBuilder::new(4);
    /// b.add_edge(0, 1, 10).add_edge(1, 2, 20).add_edge(2, 3, 5);
    /// let g = b.build();
    ///
    /// let solver = Phast::preprocess(&g);
    /// let mut engine = solver.engine();
    /// assert_eq!(engine.distances(0), vec![0, 10, 30, 35]);
    /// assert_eq!(engine.distances(3), vec![35, 25, 5, 0]);
    /// ```
    pub fn preprocess(g: &Graph) -> Phast {
        PhastBuilder::default().build(g)
    }

    /// Assembles a solver from graph + hierarchy.
    fn assemble(g: &Graph, h: &Hierarchy, direction: Direction, order: SweepOrder) -> Phast {
        let n = g.num_vertices();
        assert_eq!(h.num_vertices(), n, "hierarchy built for a different graph");

        // Sweep order: descending level; ties broken by input ID to keep
        // the input (typically DFS) locality within a level. The ByRank
        // ablation orders by descending rank instead, which is the basic
        // algorithm's reverse topological order.
        let mut order_vec: Vec<Vertex> = (0..n as Vertex).collect();
        match order {
            SweepOrder::ByLevel => {
                order_vec.sort_by_key(|&v| (std::cmp::Reverse(h.level[v as usize]), v));
            }
            SweepOrder::ByLevelThenDegree => {
                // In-degree in the downward graph = arcs the sweep relaxes.
                order_vec.sort_by_key(|&v| {
                    (
                        std::cmp::Reverse(h.level[v as usize]),
                        h.backward_up.degree(v),
                        v,
                    )
                });
            }
            SweepOrder::ByRank => {
                order_vec.sort_by_key(|&v| std::cmp::Reverse(h.rank[v as usize]));
            }
        }
        let perm = Permutation::from_order(&order_vec);

        let level_of_sweep: Vec<u32> = order_vec
            .iter()
            .map(|&old| h.level[old as usize])
            .collect();
        // Contiguous ranges of equal level (works for both orders; ByRank
        // produces singleton "levels" degenerating to a sequential sweep,
        // so only ByLevel exposes real ranges).
        let mut level_ranges = Vec::new();
        let mut start = 0usize;
        while start < n {
            let mut end = start + 1;
            while end < n && level_of_sweep[end] == level_of_sweep[start] {
                end += 1;
            }
            level_ranges.push(start as u32..end as u32);
            start = end;
        }

        // Select the search graphs by direction, then relabel. For the
        // reverse solver the roles swap and every arc flips. Shortcut
        // middle vertices ride along so paths can be expanded (§VII-A).
        let (up_src, up_mid_src, down_src, down_mid_src) = match direction {
            Direction::Forward => (
                &h.forward_up,
                &h.forward_middle,
                &h.backward_up,
                &h.backward_middle,
            ),
            Direction::Reverse => (
                &h.backward_up,
                &h.backward_middle,
                &h.forward_up,
                &h.forward_middle,
            ),
        };
        let map_mid = |m: Vertex| if m == NO_MIDDLE { NO_MIDDLE } else { perm.map(m) };
        let up_list: Vec<(Vertex, phast_graph::Arc, Vertex)> = up_src
            .iter_arcs()
            .zip(up_mid_src)
            .map(|((v, w_head, w), &m)| {
                (
                    perm.map(v),
                    phast_graph::Arc::new(perm.map(w_head), w),
                    map_mid(m),
                )
            })
            .collect();
        let up = Csr::from_arc_list(n, up_list.iter().map(|&(t, a, _)| (t, a)).collect());
        let up_middle = replay_middles(up.first(), &up_list);
        // `down_src.out(v)` lists (v, u) with u above v; as *incoming* arcs
        // of v they are (tail u, weight). Relabel and key by head v.
        let down_list: Vec<(Vertex, phast_graph::Arc, Vertex)> = down_src
            .iter_arcs()
            .zip(down_mid_src)
            .map(|((v, u, w), &m)| {
                (perm.map(v), phast_graph::Arc::new(perm.map(u), w), map_mid(m))
            })
            .collect();
        let down = ReverseCsr::from_arc_list(
            n,
            down_list
                .iter()
                .map(|&(t, a, _)| (t, phast_graph::csr::ReverseArc::new(a.head, a.weight)))
                .collect(),
        );
        let down_middle = replay_middles(down.first(), &down_list);

        // Original-graph incoming arcs (flipped for the reverse solver),
        // relabeled to sweep IDs.
        let orig_list: Vec<(Vertex, phast_graph::csr::ReverseArc)> = g
            .forward()
            .iter_arcs()
            .map(|(u, v, w)| match direction {
                Direction::Forward => (
                    perm.map(v),
                    phast_graph::csr::ReverseArc::new(perm.map(u), w),
                ),
                Direction::Reverse => (
                    perm.map(u),
                    phast_graph::csr::ReverseArc::new(perm.map(v), w),
                ),
            })
            .collect();
        let orig_incoming = ReverseCsr::from_arc_list(n, orig_list);

        let p = Phast {
            perm,
            old_of_sweep: order_vec,
            level_of_sweep,
            level_ranges,
            up,
            up_middle,
            down,
            down_middle,
            orig_incoming,
            direction,
            num_shortcuts: h.num_shortcuts,
        };
        debug_assert_eq!(p.validate(), Ok(()));
        p
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.old_of_sweep.len()
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.level_ranges.len()
    }

    /// Solver direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of shortcut arcs the hierarchy added.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Sweep ID of an original vertex.
    #[inline]
    pub fn to_sweep(&self, old: Vertex) -> Vertex {
        self.perm.map(old)
    }

    /// Original ID of a sweep vertex.
    #[inline]
    pub fn to_original(&self, sweep: Vertex) -> Vertex {
        self.old_of_sweep[sweep as usize]
    }

    /// The `old -> sweep` permutation.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Upward search graph (sweep IDs).
    pub fn up(&self) -> &Csr {
        &self.up
    }

    /// Downward incoming-arc graph (sweep IDs); the sweep's `G↓`.
    pub fn down(&self) -> &ReverseCsr {
        &self.down
    }

    /// The input graph's incoming arcs in sweep IDs.
    pub fn orig_incoming(&self) -> &ReverseCsr {
        &self.orig_incoming
    }

    /// Sweep-ID ranges per level, highest level first.
    pub fn level_ranges(&self) -> &[std::ops::Range<u32>] {
        &self.level_ranges
    }

    /// Level of a sweep vertex.
    #[inline]
    pub fn level_of_sweep(&self, sweep: Vertex) -> u32 {
        self.level_of_sweep[sweep as usize]
    }

    /// Vertices per level, level 0 first (Figure 1).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist: Vec<usize> = self
            .level_ranges
            .iter()
            .map(|r| (r.end - r.start) as usize)
            .collect();
        hist.reverse();
        hist
    }

    /// A single-tree engine borrowing this instance.
    pub fn engine(&self) -> PhastEngine<'_> {
        PhastEngine::new(self)
    }

    /// A `k`-trees-per-sweep engine.
    pub fn multi_engine(&self, k: usize) -> MultiTreeEngine<'_> {
        MultiTreeEngine::new(self, k)
    }

    /// A tree-building engine (parent pointers).
    pub fn tree_engine(&self) -> TreeEngine<'_> {
        TreeEngine::new(self)
    }

    /// Maps a sweep-indexed label array back to original vertex order.
    pub fn labels_to_original(&self, sweep_labels: &[Weight]) -> Vec<Weight> {
        assert_eq!(sweep_labels.len(), self.num_vertices());
        let mut out = vec![INF; sweep_labels.len()];
        for (sweep, &old) in self.old_of_sweep.iter().enumerate() {
            out[old as usize] = sweep_labels[sweep];
        }
        out
    }

    /// Structural invariants: the sweep order is topological for `G↓`
    /// (every downward arc's tail precedes its head) and for `G↑` every
    /// arc's head precedes its tail; level ranges tile `0..n`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let mut covered = 0u32;
        for r in &self.level_ranges {
            if r.start != covered {
                return Err("level ranges do not tile 0..n".into());
            }
            covered = r.end;
        }
        if covered as usize != n {
            return Err("level ranges do not cover all vertices".into());
        }
        for v in 0..n as Vertex {
            for a in self.down.incoming(v) {
                if a.tail >= v {
                    return Err(format!(
                        "downward arc tail {} does not precede head {v}",
                        a.tail
                    ));
                }
            }
            for a in self.up.out(v) {
                if a.head >= v {
                    return Err(format!(
                        "upward arc head {} does not precede tail {v}",
                        a.head
                    ));
                }
            }
        }
        Ok(())
    }

    /// Expands one `G+` arc `(from, to)` of the given weight into the
    /// underlying original-arc path in **sweep IDs** (exclusive of `from`,
    /// inclusive of `to`), recursively unpacking shortcut middles —
    /// Section VII-A's "a path in `G+` can be expanded into the
    /// corresponding path in `G` in time proportional to the number of
    /// arcs on it".
    ///
    /// # Panics
    ///
    /// Panics if `(from, to, weight)` is not an arc of the search graphs.
    pub fn unpack_arc_sweep(&self, from: Vertex, to: Vertex, weight: Weight, out: &mut Vec<Vertex>) {
        match self.find_middle_sweep(from, to, weight) {
            None => out.push(to),
            Some(m) => {
                // First half (from, m): m sits below both endpoints, so the
                // arc is downward and stored at m's incoming list.
                let w1 = self
                    .down
                    .incoming(m)
                    .iter()
                    .filter(|a| a.tail == from && a.weight <= weight)
                    .map(|a| a.weight)
                    .min()
                    .expect("shortcut half (from, middle) must exist");
                self.unpack_arc_sweep(from, m, w1, out);
                self.unpack_arc_sweep(m, to, weight - w1, out);
            }
        }
    }

    /// Finds the middle vertex of `G+` arc `(from, to, weight)` in sweep
    /// IDs; `None` means the arc is original.
    fn find_middle_sweep(&self, from: Vertex, to: Vertex, weight: Weight) -> Option<Vertex> {
        if to < from {
            // Upward arc (head earlier in sweep order): stored at `from`.
            let range = self.up.arc_range(from);
            for (i, a) in self.up.out(from).iter().enumerate() {
                if a.head == to && a.weight == weight {
                    let m = self.up_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        } else {
            // Downward arc: stored at `to` as an incoming arc.
            let range = self.down.arc_range(to);
            for (i, a) in self.down.incoming(to).iter().enumerate() {
                if a.tail == from && a.weight == weight {
                    let m = self.down_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        }
        panic!("arc ({from},{to},{weight}) not found in the search graphs");
    }

    /// Bytes of the sweep data structures (Table VI memory column).
    pub fn memory_bytes(&self) -> usize {
        self.up.memory_bytes()
            + self.down.memory_bytes()
            + self.orig_incoming.memory_bytes()
            + self.old_of_sweep.len() * 8
            + self.level_of_sweep.len() * 4
    }

    /// Middle vertex per `up` arc, in [`Self::up`]'s CSR arc order
    /// (`NO_MIDDLE` marks original arcs).
    pub fn up_middles(&self) -> &[Vertex] {
        &self.up_middle
    }

    /// Middle vertex per `down` arc, in [`Self::down`]'s CSR arc order.
    pub fn down_middles(&self) -> &[Vertex] {
        &self.down_middle
    }

    /// Level of every sweep vertex (non-increasing in sweep order).
    pub fn levels(&self) -> &[u32] {
        &self.level_of_sweep
    }

    /// Reassembles an instance from raw arrays (e.g. read back from a
    /// binary artifact). Every structural invariant is re-checked —
    /// bijective permutation, consistent lengths, well-formed CSRs,
    /// non-increasing levels, topological arc orientation — so corrupted
    /// input yields an error, never a panic or a silently-wrong solver.
    pub fn from_parts(parts: PhastParts) -> Result<Phast, String> {
        let perm = Permutation::try_new_segment(parts.new_of_old)?;
        let n = perm.len();
        let old_of_sweep = perm.inverse().as_slice().to_vec();

        if parts.level_of_sweep.len() != n {
            return Err("level array length does not match vertex count".into());
        }
        if parts.level_of_sweep.windows(2).any(|w| w[0] < w[1]) {
            return Err("levels are not non-increasing in sweep order".into());
        }
        let mut level_ranges = Vec::new();
        let mut start = 0usize;
        while start < n {
            let mut end = start + 1;
            while end < n && parts.level_of_sweep[end] == parts.level_of_sweep[start] {
                end += 1;
            }
            level_ranges.push(start as u32..end as u32);
            start = end;
        }

        let up = Csr::try_from_segments(parts.up_first, parts.up_arcs)?;
        let down = ReverseCsr::try_from_segments(parts.down_first, parts.down_arcs)?;
        let orig_incoming = ReverseCsr::try_from_segments(parts.orig_first, parts.orig_arcs)?;
        for (name, nv) in [
            ("upward graph", up.num_vertices()),
            ("downward graph", down.num_vertices()),
            ("original incoming graph", orig_incoming.num_vertices()),
        ] {
            if nv != n {
                return Err(format!("{name} vertex count {nv} does not match {n}"));
            }
        }
        if parts.up_middle.len() != up.num_arcs() {
            return Err("upward middle array length does not match arc count".into());
        }
        if parts.down_middle.len() != down.num_arcs() {
            return Err("downward middle array length does not match arc count".into());
        }
        for &m in parts.up_middle.iter().chain(&parts.down_middle) {
            if m != NO_MIDDLE && (m as usize) >= n {
                return Err("shortcut middle vertex out of range".into());
            }
        }

        let p = Phast {
            perm,
            old_of_sweep,
            level_of_sweep: parts.level_of_sweep,
            level_ranges,
            up,
            up_middle: parts.up_middle,
            down,
            down_middle: parts.down_middle,
            orig_incoming,
            direction: parts.direction,
            num_shortcuts: parts.num_shortcuts,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Raw arrays sufficient to reassemble a [`Phast`] via
/// [`Phast::from_parts`]. This is the exchange type for external
/// persistence layers: the large immutable arrays are
/// [`Segment`](phast_graph::Segment)s, so a binary store can hand over
/// either freshly decoded heap arrays (`Vec::into`) or slices borrowed
/// straight out of a read-only file mapping — reassembly re-validates all
/// invariants either way.
pub struct PhastParts {
    /// `old -> sweep` mapping (must be a bijection over `0..n`).
    pub new_of_old: phast_graph::Segment<Vertex>,
    /// Level per sweep vertex, non-increasing.
    pub level_of_sweep: Vec<u32>,
    /// Upward CSR index array (with sentinel).
    pub up_first: phast_graph::Segment<u32>,
    /// Upward CSR arcs.
    pub up_arcs: phast_graph::Segment<Arc>,
    /// Middle vertex per upward arc.
    pub up_middle: Vec<Vertex>,
    /// Downward CSR index array (with sentinel).
    pub down_first: phast_graph::Segment<u32>,
    /// Downward CSR incoming arcs.
    pub down_arcs: phast_graph::Segment<phast_graph::csr::ReverseArc>,
    /// Middle vertex per downward arc.
    pub down_middle: Vec<Vertex>,
    /// Original-graph incoming CSR index array (with sentinel).
    pub orig_first: phast_graph::Segment<u32>,
    /// Original-graph incoming arcs in sweep IDs.
    pub orig_arcs: phast_graph::Segment<phast_graph::csr::ReverseArc>,
    /// Solver direction.
    pub direction: Direction,
    /// Shortcut count carried from the hierarchy.
    pub num_shortcuts: usize,
}

/// Rebuilds a per-arc side array in CSR order by replaying the stable
/// counting sort `Csr::from_arc_list` performs over `list`'s order.
fn replay_middles(first: &[u32], list: &[(Vertex, Arc, Vertex)]) -> Vec<Vertex> {
    let n = first.len() - 1;
    let mut cursor: Vec<u32> = first[..n].to_vec();
    let mut middles = vec![NO_MIDDLE; list.len()];
    for &(tail, _, m) in list {
        let slot = cursor[tail as usize] as usize;
        cursor[tail as usize] += 1;
        middles[slot] = m;
    }
    middles
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn builder_produces_valid_instance() {
        let net = RoadNetworkConfig::new(16, 16, 1, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        p.validate().unwrap();
        assert_eq!(p.num_vertices(), net.graph.num_vertices());
        assert!(p.num_levels() > 1);
        assert_eq!(
            p.level_histogram().iter().sum::<usize>(),
            p.num_vertices()
        );
    }

    #[test]
    fn sweep_ids_roundtrip() {
        let net = RoadNetworkConfig::new(8, 8, 2, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        for v in 0..p.num_vertices() as Vertex {
            assert_eq!(p.to_sweep(p.to_original(v)), v);
        }
    }

    #[test]
    fn levels_non_increasing_in_sweep_order() {
        let net = RoadNetworkConfig::new(12, 12, 3, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        for v in 1..p.num_vertices() as Vertex {
            assert!(p.level_of_sweep(v - 1) >= p.level_of_sweep(v));
        }
    }

    #[test]
    fn reverse_direction_also_validates() {
        let net = RoadNetworkConfig::new(10, 10, 4, Metric::TravelTime).build();
        let p = PhastBuilder::new()
            .direction(Direction::Reverse)
            .build(&net.graph);
        p.validate().unwrap();
    }

    #[test]
    fn by_rank_order_validates() {
        let net = RoadNetworkConfig::new(10, 10, 5, Metric::TravelTime).build();
        let p = PhastBuilder::new().order(SweepOrder::ByRank).build(&net.graph);
        p.validate().unwrap();
    }
}
