//! RPHAST: sweeps restricted to the downward closure of a target set.
//!
//! PHAST's sweep is oblivious — it scans all of `G↓` no matter where the
//! caller actually needs distances. When the workload is many-to-few (a
//! logistics matrix, nearest-POI queries), almost all of that work is
//! wasted: only vertices lying on some downward path into the target set
//! `T` can influence a target's label. RPHAST (the restriction the PHAST
//! authors developed for exactly this shape) precomputes, once per target
//! set, the *selection* — the downward closure of `T` in `G↓`, renumbered
//! into a compact restricted CSR — and then runs every sweep over those
//! few vertices only.
//!
//! The construction uses the selection-stack + id-remapping technique:
//!
//! * A DFS from the targets over incoming downward arcs, driven by an
//!   explicit stack, assigns restricted ids in **postorder**: a vertex is
//!   numbered only after every tail of its incoming arcs. Ascending
//!   restricted id is therefore a topological order of the restricted
//!   subgraph — exactly the contract [`crate::simd::sweep_range`] needs.
//! * Arcs are emitted during the same pass with their tails remapped to
//!   restricted ids, so the restricted CSR ([`TargetSelection::first`] /
//!   arcs of [`ReverseArc`]) has the same shape as the full `G↓` CSR and
//!   the existing scalar/SSE4.1/AVX2 kernels run over it unchanged.
//! * The sweep-id → restricted-id scratch lives in a reusable
//!   [`SelectionBuilder`] and is reset through the selection's own vertex
//!   list, so building a selection costs `O(|closure| + |restricted
//!   arcs|)` after the first build, not `O(n)`.
//!
//! Queries then run the ordinary upward CH search (over the full `n`
//! vertices — the upward cone is tiny), inject the upward labels into the
//! restricted rows, and sweep the restricted CSR: single-tree through
//! [`RestrictedEngine`], `k` interleaved lanes through
//! [`RestrictedMultiEngine`], whose [`RestrictedMultiEngine::matrix`]
//! amortizes one selection across any number of sources.

use crate::simd::{best_simd_for, sweep_range, SimdLevel, SweepParams, MAX_K};
use crate::Phast;
use phast_graph::csr::ReverseArc;
use phast_graph::{Vertex, Weight, INF};
use phast_obs::{PhaseTimer, QueryStats};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// Sentinel in the builder's sweep-id → restricted-id scratch.
const UNSELECTED: u32 = u32::MAX;

/// Reusable scratch for building [`TargetSelection`]s over one instance.
///
/// The builder owns the `n`-sized id-remapping array; after each build it
/// is reset through the selection's vertex list, so amortized build cost
/// is proportional to the selection, not the graph. Keep one builder per
/// worker and feed it every target set that worker sees.
pub struct SelectionBuilder<'p> {
    p: &'p Phast,
    /// Sweep id → restricted id; [`UNSELECTED`] outside the selection.
    restricted_id: Vec<u32>,
    /// The DFS selection stack (may hold a vertex more than once; the
    /// assigned-check on pop deduplicates).
    stack: Vec<Vertex>,
}

impl<'p> SelectionBuilder<'p> {
    /// Creates a builder for `p` (one `O(n)` allocation, reused across
    /// every subsequent [`Self::build`]).
    pub fn new(p: &'p Phast) -> Self {
        Self {
            p,
            restricted_id: vec![UNSELECTED; p.num_vertices()],
            stack: Vec::new(),
        }
    }

    /// The instance this builder selects over.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }

    /// Builds the selection for `targets` (original ids; duplicates are
    /// allowed and resolve to the same restricted vertex).
    pub fn build(&mut self, targets: &[Vertex]) -> TargetSelection<'p> {
        let p = self.p;
        let mut order: Vec<Vertex> = Vec::new();
        let mut first: Vec<u32> = vec![0];
        let mut arcs: Vec<ReverseArc> = Vec::new();
        debug_assert!(self.stack.is_empty());
        for &t in targets {
            let sw = p.to_sweep(t);
            if self.restricted_id[sw as usize] == UNSELECTED {
                self.stack.push(sw);
            }
        }
        // Postorder DFS: a vertex is popped and numbered only once every
        // tail of its incoming downward arcs is numbered. Tails have
        // strictly smaller sweep ids, so the recursion always bottoms out;
        // duplicate stack entries fall through the assigned-check.
        while let Some(&v) = self.stack.last() {
            if self.restricted_id[v as usize] != UNSELECTED {
                self.stack.pop();
                continue;
            }
            let mut ready = true;
            for a in p.down().incoming(v) {
                if self.restricted_id[a.tail as usize] == UNSELECTED {
                    self.stack.push(a.tail);
                    ready = false;
                }
            }
            if ready {
                // Every tail is numbered: emit v's arcs remapped to
                // restricted ids, then number v itself. Arc tails are
                // therefore always `<` their head's restricted id.
                for a in p.down().incoming(v) {
                    arcs.push(ReverseArc::new(
                        self.restricted_id[a.tail as usize],
                        a.weight,
                    ));
                }
                first.push(arcs.len() as u32);
                self.restricted_id[v as usize] = order.len() as u32;
                order.push(v);
                self.stack.pop();
            }
        }
        let target_pos = targets
            .iter()
            .map(|&t| self.restricted_id[p.to_sweep(t) as usize])
            .collect();
        // Reset the scratch through the selection itself — O(|selection|).
        for &v in &order {
            self.restricted_id[v as usize] = UNSELECTED;
        }
        TargetSelection {
            p,
            targets: targets.to_vec(),
            order,
            first,
            arcs,
            target_pos,
        }
    }
}

/// A target set's precomputed restriction: the downward closure of the
/// targets as a compact restricted CSR, plus the maps back to the
/// caller's world.
///
/// Invariants (checked by the differential battery, relied on by the
/// sweep kernels):
///
/// * ascending restricted id is a topological order — every restricted
///   arc's tail id is strictly smaller than its head's;
/// * every tail of a selected vertex's incoming downward arcs is itself
///   selected (closure property);
/// * `target_pos[i]` is the restricted id of `targets[i]` (duplicates in
///   `targets` share one restricted vertex).
pub struct TargetSelection<'p> {
    p: &'p Phast,
    /// Original ids of the targets, in the caller's order.
    targets: Vec<Vertex>,
    /// Sweep id of each restricted vertex, indexed by restricted id.
    order: Vec<Vertex>,
    /// Restricted CSR offsets (`len() + 1` entries).
    first: Vec<u32>,
    /// Restricted arcs; `tail` is a restricted id.
    arcs: Vec<ReverseArc>,
    /// Restricted id of each target, in the caller's order.
    target_pos: Vec<u32>,
}

impl<'p> TargetSelection<'p> {
    /// Builds the selection for `targets` with a throwaway builder. For
    /// repeated builds over the same instance keep a [`SelectionBuilder`].
    pub fn new(p: &'p Phast, targets: &[Vertex]) -> Self {
        SelectionBuilder::new(p).build(targets)
    }

    /// The instance this selection restricts.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }

    /// The targets, in the order given at construction.
    pub fn targets(&self) -> &[Vertex] {
        &self.targets
    }

    /// Number of selected (restricted) vertices — the sweep work per
    /// query, for deciding whether the restriction beats a full sweep.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no vertex is selected (empty target set).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of restricted arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Sweep ids of the selected vertices, indexed by restricted id.
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }
}

/// Per-query state for restricted sweeps of `k` interleaved lanes.
///
/// Independent of any one selection: the upward scratch is `n`-sized and
/// reused, the restricted label matrix is re-sized to whatever selection
/// each [`Self::run`] receives. Read results back with the *same*
/// selection that ran.
pub struct RestrictedMultiEngine<'p> {
    p: &'p Phast,
    k: usize,
    simd: SimdLevel,
    /// Upward labels in sweep ids (implicit init via `marked_up`).
    dist_up: Vec<Weight>,
    marked_up: Vec<u8>,
    queue: IndexedBinaryHeap,
    /// `len * k` restricted labels; row `j` holds restricted vertex `j`.
    dist: Vec<Weight>,
    /// One mark per restricted vertex; all-zero between runs (the sweep
    /// kernels clear marks as they finalize rows).
    marked: Vec<u8>,
    stats: QueryStats,
}

impl<'p> RestrictedMultiEngine<'p> {
    /// Creates an engine sweeping `k` restricted lanes (`1..=64`).
    pub fn new(p: &'p Phast, k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        let n = p.num_vertices();
        Self {
            p,
            k,
            simd: best_simd_for(k),
            dist_up: vec![INF; n],
            marked_up: vec![0; n],
            queue: IndexedBinaryHeap::new(n),
            dist: Vec::new(),
            marked: Vec::new(),
            stats: QueryStats::default(),
        }
    }

    /// Batch width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel currently selected.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Forces a kernel; falls back to scalar when the CPU or `k` cannot
    /// honor it (same policy as [`crate::MultiTreeEngine::force_simd`]).
    pub fn force_simd(&mut self, level: SimdLevel) {
        self.simd = match level {
            SimdLevel::Scalar => SimdLevel::Scalar,
            other if best_simd_for(self.k) != SimdLevel::Scalar => other,
            _ => SimdLevel::Scalar,
        };
    }

    /// Statistics of the most recent [`Self::run`] (or the sum over every
    /// chunk of the most recent [`Self::matrix`]). The restricted sweep
    /// scans the selection as one flat block, so `levels_swept` stays 0
    /// and `blocks_executed` counts sweeps.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Phase 1 for lane `i`: ordinary upward CH search from `s` (sweep
    /// id), recording the touched trail for the reset.
    fn upward(&mut self, s: Vertex, touched: &mut Vec<Vertex>) {
        self.queue.clear();
        self.dist_up[s as usize] = 0;
        self.marked_up[s as usize] = 1;
        touched.push(s);
        self.queue.insert(s, 0);
        let mut settled: u64 = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            settled += 1;
            let out = self.p.up().out(v);
            self.stats.counters.add_upward_relaxed(out.len() as u64);
            for a in out {
                let w = a.head as usize;
                // Saturate at INF: labels stay <= INF, so no u32 wrap.
                let cand = (dv + a.weight).min(INF);
                if self.marked_up[w] == 0 {
                    self.dist_up[w] = cand;
                    self.marked_up[w] = 1;
                    touched.push(a.head);
                    self.queue.insert(a.head, cand);
                } else if cand < self.dist_up[w] {
                    self.dist_up[w] = cand;
                    self.queue.decrease_key(a.head, cand);
                }
            }
        }
        self.stats.counters.add_upward_settled(settled);
    }

    /// Runs one batch of exactly `k` sources (original ids) restricted to
    /// `sel`. Results stay in the engine until the next run; read them
    /// back with the same selection.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != k` or `sel` was built on a different
    /// instance.
    pub fn run(&mut self, sel: &TargetSelection<'p>, sources: &[Vertex]) {
        assert_eq!(sources.len(), self.k, "batch must contain exactly k sources");
        assert!(
            std::ptr::eq(self.p, sel.phast()),
            "selection was built on a different instance"
        );
        self.stats.reset();
        self.run_accumulate(sel, sources);
    }

    /// [`Self::run`] without the stats reset, so matrix chunks sum.
    fn run_accumulate(&mut self, sel: &TargetSelection<'p>, sources: &[Vertex]) {
        let k = self.k;
        let c = sel.len();
        if self.dist.len() != c * k {
            self.dist.clear();
            self.dist.resize(c * k, INF);
            self.marked.clear();
            self.marked.resize(c, 0);
        }
        let timer = PhaseTimer::start();
        let mut touched: Vec<Vertex> = Vec::new();
        let mut cleared: u64 = 0;
        for (i, &s) in sources.iter().enumerate() {
            touched.clear();
            self.upward(self.p.to_sweep(s), &mut touched);
            // Inject upward labels into the restricted rows. Scanning the
            // selection (not the trail) needs no n-sized map here; it is
            // O(|selection|) per lane, dominated by the sweep below.
            for (j, &v) in sel.order.iter().enumerate() {
                if self.marked_up[v as usize] != 0 {
                    if self.marked[j] == 0 {
                        self.dist[j * k..(j + 1) * k].fill(INF);
                        self.marked[j] = 1;
                    }
                    self.dist[j * k + i] = self.dist_up[v as usize];
                }
            }
            cleared += touched.len() as u64;
            for &v in &touched {
                self.marked_up[v as usize] = 0;
            }
        }
        self.stats.counters.add_marks_cleared(cleared);
        self.stats.upward_time += timer.elapsed();
        let timer = PhaseTimer::start();
        let params = SweepParams {
            first: &sel.first,
            arcs: &sel.arcs,
            k,
            dist: self.dist.as_mut_ptr(),
            marked: self.marked.as_mut_ptr(),
        };
        // SAFETY: single-threaded call over the whole restricted range;
        // `dist`/`marked` are exactly `c*k` / `c` long and ascending
        // restricted id is topological (postorder construction).
        unsafe { sweep_range(self.simd, &params, 0..c) };
        self.stats
            .counters
            .add_sweep_arcs(sel.arcs.len() as u64 * k as u64);
        self.stats.counters.add_restricted_scans(c as u64);
        self.stats.counters.add_blocks_executed(1);
        self.stats.sweep_time += timer.elapsed();
    }

    /// Distance of lane `i` to `sel.targets()[t]` (after [`Self::run`]
    /// with the same selection).
    pub fn dist_of(&self, sel: &TargetSelection<'p>, i: usize, t: usize) -> Weight {
        assert!(i < self.k);
        self.dist[sel.target_pos[t] as usize * self.k + i]
    }

    /// All target distances of lane `i`, in target order.
    pub fn lane_distances(&self, sel: &TargetSelection<'p>, i: usize) -> Vec<Weight> {
        assert!(i < self.k);
        assert_eq!(
            self.dist.len(),
            sel.len() * self.k,
            "read back with the selection that ran"
        );
        sel.target_pos
            .iter()
            .map(|&pos| self.dist[pos as usize * self.k + i])
            .collect()
    }

    /// The full many-to-many matrix: one row per source (in source
    /// order), one column per target (in target order). Sources are
    /// chunked into `k`-wide restricted sweeps — the selection is built
    /// once and amortized over every chunk; short tails are padded with
    /// the chunk's first source. [`Self::stats`] afterwards holds the sum
    /// over all chunks.
    pub fn matrix(
        &mut self,
        sel: &TargetSelection<'p>,
        sources: &[Vertex],
    ) -> Vec<Vec<Weight>> {
        self.stats.reset();
        let mut rows = Vec::with_capacity(sources.len());
        let mut padded: Vec<Vertex> = Vec::with_capacity(self.k);
        for chunk in sources.chunks(self.k) {
            padded.clear();
            padded.extend_from_slice(chunk);
            padded.resize(self.k, chunk[0]);
            self.run_accumulate(sel, &padded);
            for i in 0..chunk.len() {
                rows.push(self.lane_distances(sel, i));
            }
        }
        rows
    }

    /// Number of `k`-wide sweeps [`Self::matrix`] runs for `m` sources.
    pub fn chunks_for(&self, m: usize) -> usize {
        m.div_ceil(self.k)
    }
}

/// Single-tree restricted queries: one upward search plus one sweep over
/// the selection. A thin `k = 1` wrapper over [`RestrictedMultiEngine`],
/// so the scalar and the SIMD paths share one implementation.
pub struct RestrictedEngine<'p> {
    inner: RestrictedMultiEngine<'p>,
}

impl<'p> RestrictedEngine<'p> {
    /// Creates a single-tree restricted engine over `p`.
    pub fn new(p: &'p Phast) -> Self {
        Self {
            inner: RestrictedMultiEngine::new(p, 1),
        }
    }

    /// Distances from `source` (original id) to every target of `sel`, in
    /// target order; `INF` for unreachable targets.
    pub fn distances(&mut self, sel: &TargetSelection<'p>, source: Vertex) -> Vec<Weight> {
        self.inner.run(sel, &[source]);
        self.inner.lane_distances(sel, 0)
    }

    /// Statistics of the most recent query.
    pub fn stats(&self) -> &QueryStats {
        &self.inner.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::GraphBuilder;
    use proptest::prelude::*;

    #[test]
    fn selection_ids_are_topological_and_closed() {
        let net = RoadNetworkConfig::new(16, 16, 41, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let sel = TargetSelection::new(&p, &[0, 7, n / 2, n - 1]);
        assert_eq!(sel.first.len(), sel.len() + 1);
        for j in 0..sel.len() {
            for a in &sel.arcs[sel.first[j] as usize..sel.first[j + 1] as usize] {
                assert!((a.tail as usize) < j, "tail {} !< head {j}", a.tail);
            }
        }
        // The restricted arc multiset of each selected vertex equals its
        // full G-down arc list (closure: no arc is dropped).
        for (j, &v) in sel.order().iter().enumerate() {
            let full: Vec<(Vertex, Weight)> = p
                .down()
                .incoming(v)
                .iter()
                .map(|a| (a.tail, a.weight))
                .collect();
            let restricted: Vec<(Vertex, Weight)> = sel.arcs
                [sel.first[j] as usize..sel.first[j + 1] as usize]
                .iter()
                .map(|a| (sel.order()[a.tail as usize], a.weight))
                .collect();
            assert_eq!(full, restricted, "restricted vertex {j}");
        }
    }

    #[test]
    fn builder_is_reusable_across_target_sets() {
        let net = RoadNetworkConfig::new(12, 12, 42, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut b = SelectionBuilder::new(&p);
        let mut e = RestrictedEngine::new(&p);
        let n = net.graph.num_vertices() as Vertex;
        for round in 0..5u32 {
            let targets: Vec<Vertex> = (0..3).map(|i| (round * 17 + i * 31) % n).collect();
            let sel = b.build(&targets);
            let fresh = TargetSelection::new(&p, &targets);
            assert_eq!(sel.order(), fresh.order(), "round {round}");
            let want = shortest_paths(net.graph.forward(), round % n).dist;
            let got = e.distances(&sel, round % n);
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(got[i], want[t as usize], "round {round}, target {t}");
            }
        }
    }

    #[test]
    fn empty_target_set_yields_empty_rows() {
        let net = RoadNetworkConfig::new(6, 6, 43, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sel = TargetSelection::new(&p, &[]);
        assert!(sel.is_empty());
        let mut e = RestrictedEngine::new(&p);
        assert_eq!(e.distances(&sel, 0), Vec::<Weight>::new());
        let mut m = RestrictedMultiEngine::new(&p, 4);
        let rows = m.matrix(&sel, &[0, 1, 2]);
        assert_eq!(rows, vec![Vec::<Weight>::new(); 3]);
    }

    #[test]
    fn matrix_chunks_and_pads_to_every_source() {
        let net = RoadNetworkConfig::new(10, 10, 44, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let targets: Vec<Vertex> = vec![1, n / 3, n - 2];
        let sel = TargetSelection::new(&p, &targets);
        let mut m = RestrictedMultiEngine::new(&p, 4);
        // 7 sources over k=4: one full chunk + one padded chunk.
        let sources: Vec<Vertex> = (0..7).map(|i| (i * 13 + 2) % n).collect();
        assert_eq!(m.chunks_for(sources.len()), 2);
        let rows = m.matrix(&sel, &sources);
        assert_eq!(rows.len(), sources.len());
        for (r, &s) in sources.iter().enumerate() {
            let want = shortest_paths(net.graph.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(rows[r][i], want[t as usize], "{s} -> {t}");
            }
        }
    }

    #[test]
    fn all_kernels_agree_on_restricted_sweeps() {
        let net = RoadNetworkConfig::new(12, 12, 45, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let targets: Vec<Vertex> = (0..9).map(|i| (i * 29 + 5) % n).collect();
        let sel = TargetSelection::new(&p, &targets);
        let sources: Vec<Vertex> = (0..8).map(|i| (i * 7 + 3) % n).collect();
        let run = |level: SimdLevel| {
            let mut m = RestrictedMultiEngine::new(&p, 8);
            m.force_simd(level);
            m.matrix(&sel, &sources)
        };
        let scalar = run(SimdLevel::Scalar);
        for (r, &s) in sources.iter().enumerate() {
            let want = shortest_paths(net.graph.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(scalar[r][i], want[t as usize], "{s} -> {t}");
            }
        }
        if is_x86_feature_detected!("sse4.1") {
            assert_eq!(run(SimdLevel::Sse41), scalar);
        }
        if is_x86_feature_detected!("avx2") {
            assert_eq!(run(SimdLevel::Avx2), scalar);
        }
    }

    #[test]
    fn unreachable_targets_and_reused_engine_across_selections() {
        // 0 -> 1 is the only arc; 2 is isolated.
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1, 5);
        let g = b.build();
        let p = Phast::preprocess(&g);
        let mut e = RestrictedMultiEngine::new(&p, 4);
        let sel = TargetSelection::new(&p, &[1, 2]);
        let rows = e.matrix(&sel, &[0, 2]);
        assert_eq!(rows, vec![vec![5, INF], vec![INF, 0]]);
        // Same engine, different (smaller) selection: label matrix
        // re-sizes and stays correct.
        let sel2 = TargetSelection::new(&p, &[0]);
        let rows = e.matrix(&sel2, &[0, 1]);
        assert_eq!(rows, vec![vec![0], vec![INF]]);
    }

    #[test]
    fn stats_accumulate_over_matrix_chunks() {
        let net = RoadNetworkConfig::new(8, 8, 46, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sel = TargetSelection::new(&p, &[3, 9]);
        let mut m = RestrictedMultiEngine::new(&p, 2);
        let _ = m.matrix(&sel, &[0, 1, 2, 3]);
        // Two chunks ran: settled counts from all four upward searches.
        assert!(m.stats().counters.upward_settled >= 4);
        if phast_obs::COUNTERS_ENABLED {
            assert_eq!(m.stats().counters.blocks_executed, 2);
            assert_eq!(m.stats().counters.restricted_scans, 2 * sel.len() as u64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The selection engines agree with Dijkstra on arbitrary random
        /// strongly-connected instances and arbitrary target sets.
        #[test]
        fn restricted_matches_dijkstra(
            n in 2usize..28,
            extra in 0usize..56,
            seed in 0u64..400,
            t_count in 1usize..8,
            k in 1usize..6,
        ) {
            let g = strongly_connected_gnm(n, extra, 25, seed);
            let p = Phast::preprocess(&g);
            let targets: Vec<Vertex> =
                (0..t_count as u64).map(|i| ((seed + i * 7) % n as u64) as Vertex).collect();
            let sel = TargetSelection::new(&p, &targets);
            let mut m = RestrictedMultiEngine::new(&p, k);
            let sources: Vec<Vertex> =
                (0..(k as u64 + 1)).map(|i| ((seed + i * 3) % n as u64) as Vertex).collect();
            let rows = m.matrix(&sel, &sources);
            for (r, &s) in sources.iter().enumerate() {
                let want = shortest_paths(g.forward(), s).dist;
                for (i, &t) in targets.iter().enumerate() {
                    prop_assert_eq!(rows[r][i], want[t as usize], "{} -> {}", s, t);
                }
            }
        }
    }
}
