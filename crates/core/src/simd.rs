//! Sweep kernels: scalar, SSE4.1 and AVX2.
//!
//! The paper's Section IV-B: distance labels are 32-bit, so a 128-bit SSE
//! register holds four of them and one packed `add` + packed `min` relaxes
//! one arc for four trees at once (packed *unsigned* min needs SSE 4.1 —
//! the paper makes the same observation). The AVX2 kernel is the natural
//! 8-lane extension on newer cores.
//!
//! All kernels share one contract, [`SweepParams`]: process vertices of a
//! range in increasing sweep-ID order; for each vertex either take its `k`
//! marked labels or `∞`, relax every incoming downward arc for all `k`
//! trees, clamp to `INF`, store, and clear the mark.

use phast_graph::csr::ReverseArc;
use phast_graph::INF;
use std::ops::Range;

/// Kernel selection for the batched sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loop (any `k`).
    Scalar,
    /// SSE4.1 packed 4-lane kernel (`k` must be a multiple of 4).
    Sse41,
    /// AVX2 packed 8-lane kernel (`k` must be a multiple of 4; odd
    /// half-chunks fall back to one SSE chunk).
    Avx2,
}

/// Largest `k` the register-resident SIMD kernels support.
pub const MAX_K: usize = 64;

/// Detects the best kernel the CPU supports for batch width `k`.
pub fn best_simd_for(k: usize) -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if k.is_multiple_of(4) && k <= MAX_K {
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if is_x86_feature_detected!("sse4.1") {
                return SimdLevel::Sse41;
            }
        }
    }
    let _ = k;
    SimdLevel::Scalar
}

/// Borrowed inputs of one sweep-range invocation.
///
/// `dist` points at `n * k` labels laid out row-major (the `k` labels of a
/// vertex are consecutive); `marked` at `n` bytes.
pub(crate) struct SweepParams<'a> {
    pub first: &'a [u32],
    pub arcs: &'a [ReverseArc],
    pub k: usize,
    pub dist: *mut u32,
    pub marked: *mut u8,
}

/// Runs the selected kernel over `range`.
///
/// # Safety
///
/// * `dist` must be valid for `n * k` elements, `marked` for `n`, where
///   `n = first.len() - 1`;
/// * every arc tail in the range's arc slices must be `< range.start` or
///   already finalized (the caller guarantees the topological property);
/// * the caller must have exclusive access to the label rows and marks of
///   `range` and shared access to all earlier rows (no other thread may
///   write them concurrently).
pub(crate) unsafe fn sweep_range(level: SimdLevel, p: &SweepParams<'_>, range: Range<usize>) {
    // The caller upholds this function's own contract, which is exactly
    // each kernel's contract; the SIMD arms are only selected when
    // `best_simd_for`/`force_simd` verified the CPU feature.
    match level {
        // SAFETY: see above.
        SimdLevel::Scalar => unsafe { sweep_range_scalar(p, range) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Sse41 => unsafe { sweep_range_sse41(p, range) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above.
        SimdLevel::Avx2 => unsafe { sweep_range_avx2(p, range) },
        #[cfg(not(target_arch = "x86_64"))]
        // SAFETY: see above.
        _ => unsafe { sweep_range_scalar(p, range) },
    }
}

/// Portable kernel; the structure mirrors the SIMD versions so the compiler
/// can auto-vectorize the inner lane loop.
///
/// # Safety
///
/// See [`sweep_range`].
pub(crate) unsafe fn sweep_range_scalar(p: &SweepParams<'_>, range: Range<usize>) {
    let k = p.k;
    for v in range {
        // SAFETY: caller guarantees exclusive access to row v and mark v.
        let row = unsafe { std::slice::from_raw_parts_mut(p.dist.add(v * k), k) };
        // SAFETY: as above — mark v belongs to this range.
        let marked = unsafe { &mut *p.marked.add(v) };
        if *marked == 0 {
            row.fill(INF);
        }
        let lo = p.first[v] as usize;
        let hi = p.first[v + 1] as usize;
        for a in &p.arcs[lo..hi] {
            // SAFETY: tails precede v in sweep order, so their rows are
            // final and no thread is writing them.
            let base = unsafe { std::slice::from_raw_parts(p.dist.add(a.tail as usize * k), k) };
            let w = a.weight;
            for i in 0..k {
                let cand = base[i] + w;
                if cand < row[i] {
                    row[i] = cand;
                }
            }
        }
        for x in row.iter_mut() {
            if *x > INF {
                *x = INF;
            }
        }
        *marked = 0;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// SSE4.1 kernel: the whole `k`-wide accumulator row lives in XMM
    /// registers across the arc loop (`k <= 64` means at most 16 chunks).
    ///
    /// # Safety
    ///
    /// See [`sweep_range`]; additionally requires SSE4.1 and `k % 4 == 0`.
    #[target_feature(enable = "sse4.1")]
    pub(crate) unsafe fn sweep_range_sse41(p: &SweepParams<'_>, range: Range<usize>) {
        debug_assert_eq!(p.k % 4, 0);
        debug_assert!(p.k <= MAX_K);
        let chunks = p.k / 4;
        // SAFETY: intrinsics below stay within the bounds the caller
        // guarantees (rows v and tail rows of length k).
        unsafe {
            let inf = _mm_set1_epi32(INF as i32);
            let mut acc = [_mm_setzero_si128(); MAX_K / 4];
            for v in range {
                let row = p.dist.add(v * p.k);
                if *p.marked.add(v) == 0 {
                    acc[..chunks].fill(inf);
                } else {
                    for (c, a) in acc[..chunks].iter_mut().enumerate() {
                        *a = _mm_loadu_si128(row.add(4 * c).cast());
                    }
                }
                let lo = p.first[v] as usize;
                let hi = p.first[v + 1] as usize;
                for a in &p.arcs[lo..hi] {
                    let w4 = _mm_set1_epi32(a.weight as i32);
                    let base = p.dist.add(a.tail as usize * p.k);
                    for (c, av) in acc[..chunks].iter_mut().enumerate() {
                        let t = _mm_add_epi32(_mm_loadu_si128(base.add(4 * c).cast()), w4);
                        *av = _mm_min_epu32(*av, t);
                    }
                }
                for (c, av) in acc[..chunks].iter_mut().enumerate() {
                    *av = _mm_min_epu32(*av, inf);
                    _mm_storeu_si128(row.add(4 * c).cast(), *av);
                }
                *p.marked.add(v) = 0;
            }
        }
    }

    /// AVX2 kernel: 8 lanes per chunk; a trailing 4-lane chunk (when
    /// `k % 8 == 4`) is handled with SSE operations.
    ///
    /// # Safety
    ///
    /// See [`sweep_range`]; additionally requires AVX2 and `k % 4 == 0`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sweep_range_avx2(p: &SweepParams<'_>, range: Range<usize>) {
        debug_assert_eq!(p.k % 4, 0);
        debug_assert!(p.k <= MAX_K);
        let wide = p.k / 8;
        let has_tail = p.k % 8 == 4;
        let tail_off = wide * 8;
        // SAFETY: as in the SSE kernel.
        unsafe {
            let inf8 = _mm256_set1_epi32(INF as i32);
            let inf4 = _mm_set1_epi32(INF as i32);
            let mut acc = [_mm256_setzero_si256(); MAX_K / 8];
            let mut tacc = _mm_setzero_si128();
            for v in range {
                let row = p.dist.add(v * p.k);
                if *p.marked.add(v) == 0 {
                    acc[..wide].fill(inf8);
                    if has_tail {
                        tacc = inf4;
                    }
                } else {
                    for (c, a) in acc[..wide].iter_mut().enumerate() {
                        *a = _mm256_loadu_si256(row.add(8 * c).cast());
                    }
                    if has_tail {
                        tacc = _mm_loadu_si128(row.add(tail_off).cast());
                    }
                }
                let lo = p.first[v] as usize;
                let hi = p.first[v + 1] as usize;
                for a in &p.arcs[lo..hi] {
                    let w8 = _mm256_set1_epi32(a.weight as i32);
                    let base = p.dist.add(a.tail as usize * p.k);
                    for (c, av) in acc[..wide].iter_mut().enumerate() {
                        let t = _mm256_add_epi32(_mm256_loadu_si256(base.add(8 * c).cast()), w8);
                        *av = _mm256_min_epu32(*av, t);
                    }
                    if has_tail {
                        let w4 = _mm_set1_epi32(a.weight as i32);
                        let t = _mm_add_epi32(_mm_loadu_si128(base.add(tail_off).cast()), w4);
                        tacc = _mm_min_epu32(tacc, t);
                    }
                }
                for (c, av) in acc[..wide].iter_mut().enumerate() {
                    *av = _mm256_min_epu32(*av, inf8);
                    _mm256_storeu_si256(row.add(8 * c).cast(), *av);
                }
                if has_tail {
                    tacc = _mm_min_epu32(tacc, inf4);
                    _mm_storeu_si128(row.add(tail_off).cast(), tacc);
                }
                *p.marked.add(v) = 0;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{sweep_range_avx2, sweep_range_sse41};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_respects_lane_constraints() {
        // k not a multiple of 4 must always select scalar.
        assert_eq!(best_simd_for(3), SimdLevel::Scalar);
        assert_eq!(best_simd_for(7), SimdLevel::Scalar);
        // Oversized k falls back to scalar.
        assert_eq!(best_simd_for(MAX_K + 4), SimdLevel::Scalar);
    }

    #[test]
    fn kernels_agree_on_a_tiny_sweep() {
        // Hand-built G↓: 3 vertices; vertex 2 has arcs from 0 and 1.
        let first = vec![0u32, 0, 1, 3];
        let arcs = vec![
            ReverseArc::new(0, 5),
            ReverseArc::new(0, 7),
            ReverseArc::new(1, 1),
        ];
        let k = 8;
        let run = |level: SimdLevel| {
            let mut dist = vec![0u32; 3 * k];
            let mut marked = vec![0u8; 3];
            // Seed tree labels at vertex 0 and 1 as if a CH search ran.
            for i in 0..k {
                dist[i] = 10 + i as u32; // vertex 0
                dist[k + i] = 100 + i as u32; // vertex 1
            }
            marked[0] = 1;
            marked[1] = 1;
            let p = SweepParams {
                first: &first,
                arcs: &arcs,
                k,
                dist: dist.as_mut_ptr(),
                marked: marked.as_mut_ptr(),
            };
            // SAFETY: single-threaded full-range call over valid arrays.
            unsafe { sweep_range(level, &p, 0..3) };
            assert!(marked.iter().all(|&m| m == 0));
            dist
        };
        let scalar = run(SimdLevel::Scalar);
        // Vertex 1 improves to 10+i+5 = 15+i via its arc from vertex 0;
        // vertex 2 then sees min(10+i+7, 15+i+1) = 16+i.
        for i in 0..k {
            assert_eq!(scalar[k + i], 15 + i as u32);
            assert_eq!(scalar[2 * k + i], 16 + i as u32);
        }
        if is_x86_feature_detected!("sse4.1") {
            assert_eq!(run(SimdLevel::Sse41), scalar);
        }
        if is_x86_feature_detected!("avx2") {
            assert_eq!(run(SimdLevel::Avx2), scalar);
        }
    }

    #[test]
    fn kernels_clamp_unreached_chains_to_inf() {
        // Vertex 1 unreached (mark clear, stale garbage label), vertex 2
        // hangs off it: the result must clamp to INF, not overflow.
        let first = vec![0u32, 0, 0, 1];
        let arcs = vec![ReverseArc::new(1, 1000)];
        for k in [4usize, 12] {
            for level in [SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2] {
                if level == SimdLevel::Sse41 && !is_x86_feature_detected!("sse4.1") {
                    continue;
                }
                if level == SimdLevel::Avx2 && !is_x86_feature_detected!("avx2") {
                    continue;
                }
                let mut dist = vec![0xDEAD_BEEFu32; 3 * k];
                let mut marked = vec![0u8; 3];
                let p = SweepParams {
                    first: &first,
                    arcs: &arcs,
                    k,
                    dist: dist.as_mut_ptr(),
                    marked: marked.as_mut_ptr(),
                };
                // SAFETY: single-threaded full-range call over valid arrays.
                unsafe { sweep_range(level, &p, 0..3) };
                assert!(dist[k..].iter().all(|&d| d == INF), "{level:?} k={k}");
            }
        }
    }
}
