//! One-to-many queries: the scalar convenience face of RPHAST.
//!
//! Many workloads (logistics matrices, nearest-neighbour queries) need the
//! distances from a source to a *fixed set of targets* `T`, not to every
//! vertex. Because PHAST's sweep order is source-independent, the sweep
//! can be restricted once per target set: only vertices that lie on some
//! downward path into `T` — the *downward closure* of `T` in `G↓` — can
//! influence a target's label, so all others are skipped. For small `|T|`
//! the closure is a tiny fraction of the graph and each query costs one
//! upward search plus a sweep over the closure only.
//!
//! The selection construction and the restricted sweeps live in
//! [`crate::rphast`]; this module keeps the original single-source API —
//! [`TargetRestriction`] bundling a [`TargetSelection`] with borrowing
//! [`OneToManyEngine`]s — as a thin wrapper over that machinery, so the
//! scalar and the k-lane SIMD paths share one selection builder and one
//! sweep implementation.

use crate::rphast::{RestrictedEngine, TargetSelection};
use crate::Phast;
use phast_graph::{Vertex, Weight};
use phast_obs::QueryStats;

/// A target set's precomputed restriction: the downward closure of the
/// targets as a restricted CSR (see [`TargetSelection`] for the
/// invariants).
pub struct TargetRestriction<'p> {
    sel: TargetSelection<'p>,
}

impl<'p> TargetRestriction<'p> {
    /// Builds the restriction for `targets` (original IDs).
    pub fn new(p: &'p Phast, targets: &[Vertex]) -> Self {
        Self {
            sel: TargetSelection::new(p, targets),
        }
    }

    /// The targets, in the order given at construction.
    pub fn targets(&self) -> &[Vertex] {
        self.sel.targets()
    }

    /// Closure size (sweep work per query), for deciding whether the
    /// restriction pays off versus a full sweep.
    pub fn closure_size(&self) -> usize {
        self.sel.len()
    }

    /// The underlying selection, for the k-lane engines of
    /// [`crate::rphast`].
    pub fn selection(&self) -> &TargetSelection<'p> {
        &self.sel
    }

    /// A query engine over this restriction.
    pub fn engine(&self) -> OneToManyEngine<'_, 'p> {
        OneToManyEngine {
            sel: &self.sel,
            inner: RestrictedEngine::new(self.sel.phast()),
        }
    }
}

/// Per-query state for one-to-many computations: a single-tree restricted
/// engine pinned to one restriction.
pub struct OneToManyEngine<'r, 'p> {
    sel: &'r TargetSelection<'p>,
    inner: RestrictedEngine<'p>,
}

impl OneToManyEngine<'_, '_> {
    /// Statistics of the most recent query. `levels_swept` stays zero —
    /// the restricted sweep scans the closure as one flat block, so only
    /// `blocks_executed` (always 1) is meaningful there.
    pub fn stats(&self) -> &QueryStats {
        self.inner.stats()
    }

    /// Distances from `source` (original ID) to every target, in target
    /// order.
    pub fn distances(&mut self, source: Vertex) -> Vec<Weight> {
        self.inner.distances(self.sel, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use proptest::prelude::*;

    #[test]
    fn restricted_matches_full_sweep_on_road_network() {
        let net = RoadNetworkConfig::new(20, 20, 91, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let targets: Vec<Vertex> = vec![3, 77, 200, n - 1];
        let r = TargetRestriction::new(&p, &targets);
        assert!(
            r.closure_size() < p.num_vertices(),
            "closure should not be the whole graph"
        );
        let mut engine = r.engine();
        for s in [0u32, 50, 333] {
            let got = engine.distances(s);
            let want = shortest_paths(net.graph.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(got[i], want[t as usize], "{s} -> {t}");
            }
        }
    }

    #[test]
    fn engine_is_reusable() {
        let net = RoadNetworkConfig::new(10, 10, 92, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let targets = vec![5u32, 60];
        let r = TargetRestriction::new(&p, &targets);
        let mut e = r.engine();
        for s in 0..20u32 {
            let got = e.distances(s);
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(got, vec![want[5], want[60]], "source {s}");
        }
    }

    #[test]
    fn single_target_closure_is_small() {
        let net = RoadNetworkConfig::new(30, 30, 93, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let r = TargetRestriction::new(&p, &[17]);
        // One target's closure is its up-reachable cone — far below n.
        assert!(
            r.closure_size() * 2 < p.num_vertices(),
            "closure {} of {}",
            r.closure_size(),
            p.num_vertices()
        );
    }

    #[test]
    fn duplicate_and_source_targets() {
        let net = RoadNetworkConfig::new(8, 8, 94, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let targets = vec![9u32, 9, 0];
        let r = TargetRestriction::new(&p, &targets);
        let mut e = r.engine();
        let got = e.distances(0);
        let want = shortest_paths(net.graph.forward(), 0).dist;
        assert_eq!(got, vec![want[9], want[9], 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matches_dijkstra_on_random_graphs(
            n in 2usize..30,
            extra in 0usize..60,
            seed in 0u64..300,
            t_count in 1usize..6,
        ) {
            let g = strongly_connected_gnm(n, extra, 25, seed);
            let p = Phast::preprocess(&g);
            let targets: Vec<Vertex> =
                (0..t_count as u64).map(|i| ((seed + i * 11) % n as u64) as Vertex).collect();
            let r = TargetRestriction::new(&p, &targets);
            let mut e = r.engine();
            let s = (seed % n as u64) as Vertex;
            let got = e.distances(s);
            let want = shortest_paths(g.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                prop_assert_eq!(got[i], want[t as usize]);
            }
        }
    }
}
