//! One-to-many queries: restricted sweeps.
//!
//! Many workloads (logistics matrices, nearest-neighbour queries) need the
//! distances from a source to a *fixed set of targets* `T`, not to every
//! vertex. Because PHAST's sweep order is source-independent, the sweep
//! can be restricted once per target set: only vertices that lie on some
//! downward path into `T` — the *downward closure* of `T` in `G↓` — can
//! influence a target's label, so all others are skipped. For small `|T|`
//! the closure is a tiny fraction of the graph and each query costs one
//! upward search plus a sweep over the closure only.
//!
//! (This is the restriction idea the PHAST authors developed into RPHAST;
//! here it is provided as the natural one-to-many API of the sweep.)

use crate::Phast;
use phast_graph::{Vertex, Weight, INF};
use phast_obs::{PhaseTimer, QueryStats};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// A target set's precomputed restriction: the downward closure of the
/// targets, in sweep order, with a remapped arc list.
pub struct TargetRestriction<'p> {
    p: &'p Phast,
    /// Original IDs of the targets, in the caller's order.
    targets: Vec<Vertex>,
    /// Sweep IDs of the closure, ascending (a valid sub-sweep order).
    closure: Vec<Vertex>,
    /// For each closure vertex, its incoming arcs re-indexed into closure
    /// positions (tail position in `closure`, weight).
    first: Vec<u32>,
    arcs: Vec<(u32, Weight)>,
    /// Position of each target within `closure`.
    target_pos: Vec<u32>,
}

impl<'p> TargetRestriction<'p> {
    /// Builds the restriction for `targets` (original IDs).
    pub fn new(p: &'p Phast, targets: &[Vertex]) -> Self {
        let n = p.num_vertices();
        // Downward closure: walk tails from the targets. A vertex's label
        // can reach a target through a chain of downward arcs, and tails
        // always have smaller sweep IDs, so a reverse scan terminates.
        let mut in_closure = vec![false; n];
        let mut stack: Vec<Vertex> = Vec::new();
        for &t in targets {
            let sweep = p.to_sweep(t);
            if !in_closure[sweep as usize] {
                in_closure[sweep as usize] = true;
                stack.push(sweep);
            }
        }
        while let Some(v) = stack.pop() {
            for a in p.down().incoming(v) {
                if !in_closure[a.tail as usize] {
                    in_closure[a.tail as usize] = true;
                    stack.push(a.tail);
                }
            }
        }
        let closure: Vec<Vertex> = (0..n as Vertex)
            .filter(|&v| in_closure[v as usize])
            .collect();
        // Map sweep ID -> closure position.
        let mut pos_of_sweep = vec![u32::MAX; n];
        for (i, &v) in closure.iter().enumerate() {
            pos_of_sweep[v as usize] = i as u32;
        }
        // Re-indexed arc lists (every tail of a closure vertex is itself in
        // the closure, by construction).
        let mut first = Vec::with_capacity(closure.len() + 1);
        let mut arcs = Vec::new();
        first.push(0u32);
        for &v in &closure {
            for a in p.down().incoming(v) {
                arcs.push((pos_of_sweep[a.tail as usize], a.weight));
            }
            first.push(arcs.len() as u32);
        }
        let target_pos = targets
            .iter()
            .map(|&t| pos_of_sweep[p.to_sweep(t) as usize])
            .collect();
        Self {
            p,
            targets: targets.to_vec(),
            closure,
            first,
            arcs,
            target_pos,
        }
    }

    /// The targets, in the order given at construction.
    pub fn targets(&self) -> &[Vertex] {
        &self.targets
    }

    /// Closure size (sweep work per query), for deciding whether the
    /// restriction pays off versus a full sweep.
    pub fn closure_size(&self) -> usize {
        self.closure.len()
    }

    /// A query engine over this restriction.
    pub fn engine(&self) -> OneToManyEngine<'_, 'p> {
        OneToManyEngine {
            r: self,
            dist_up: vec![INF; self.p.num_vertices()],
            marked: vec![0; self.p.num_vertices()],
            queue: IndexedBinaryHeap::new(self.p.num_vertices()),
            dist: vec![INF; self.closure.len()],
            stats: QueryStats::default(),
        }
    }
}

/// Per-query state for one-to-many computations.
pub struct OneToManyEngine<'r, 'p> {
    r: &'r TargetRestriction<'p>,
    /// Upward labels in sweep IDs (implicit init via marks).
    dist_up: Vec<Weight>,
    marked: Vec<u8>,
    queue: IndexedBinaryHeap,
    /// Labels over the closure (positions).
    dist: Vec<Weight>,
    /// Statistics of the most recent query.
    stats: QueryStats,
}

impl OneToManyEngine<'_, '_> {
    /// Statistics of the most recent query. `levels_swept` stays zero —
    /// the restricted sweep scans the closure as one flat block, so only
    /// `blocks_executed` (always 1) is meaningful there.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Distances from `source` (original ID) to every target, in target
    /// order.
    pub fn distances(&mut self, source: Vertex) -> Vec<Weight> {
        let p = self.r.p;
        let s = p.to_sweep(source);
        self.stats.reset();
        let timer = PhaseTimer::start();
        // Phase 1: ordinary upward search (marks + labels).
        self.queue.clear();
        self.dist_up[s as usize] = 0;
        self.marked[s as usize] = 1;
        self.queue.insert(s, 0);
        let mut touched: Vec<Vertex> = vec![s];
        let mut settled: u64 = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            settled += 1;
            let out = p.up().out(v);
            self.stats.counters.add_upward_relaxed(out.len() as u64);
            for a in out {
                let w = a.head as usize;
                // Saturate at INF: labels stay <= INF, so with arc weights
                // <= INF no `u32` addition here can ever wrap.
                let cand = (dv + a.weight).min(INF);
                if self.marked[w] == 0 {
                    self.dist_up[w] = cand;
                    self.marked[w] = 1;
                    touched.push(a.head);
                    self.queue.insert(a.head, cand);
                } else if cand < self.dist_up[w] {
                    self.dist_up[w] = cand;
                    self.queue.decrease_key(a.head, cand);
                }
            }
        }
        self.stats.counters.add_upward_settled(settled);
        self.stats.upward_time = timer.elapsed();
        let timer = PhaseTimer::start();
        // Phase 2: sweep over the closure only.
        for (i, &v) in self.r.closure.iter().enumerate() {
            let mut dv = if self.marked[v as usize] != 0 {
                self.dist_up[v as usize]
            } else {
                INF
            };
            for &(tail_pos, w) in
                &self.r.arcs[self.r.first[i] as usize..self.r.first[i + 1] as usize]
            {
                let cand = self.dist[tail_pos as usize] + w;
                if cand < dv {
                    dv = cand;
                }
            }
            self.dist[i] = dv.min(INF);
        }
        // Reset marks (the restricted sweep does not visit every marked
        // vertex, so clear the upward search's trail explicitly).
        self.stats.counters.add_marks_cleared(touched.len() as u64);
        for v in touched {
            self.marked[v as usize] = 0;
        }
        // The restricted sweep relaxes every closure arc once, as one
        // flat block; it has no level structure of its own.
        self.stats.counters.add_sweep_arcs(self.r.arcs.len() as u64);
        self.stats.counters.add_blocks_executed(1);
        self.stats.sweep_time = timer.elapsed();
        self.r
            .target_pos
            .iter()
            .map(|&pos| self.dist[pos as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use proptest::prelude::*;

    #[test]
    fn restricted_matches_full_sweep_on_road_network() {
        let net = RoadNetworkConfig::new(20, 20, 91, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let n = net.graph.num_vertices() as Vertex;
        let targets: Vec<Vertex> = vec![3, 77, 200, n - 1];
        let r = TargetRestriction::new(&p, &targets);
        assert!(
            r.closure_size() < p.num_vertices(),
            "closure should not be the whole graph"
        );
        let mut engine = r.engine();
        for s in [0u32, 50, 333] {
            let got = engine.distances(s);
            let want = shortest_paths(net.graph.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(got[i], want[t as usize], "{s} -> {t}");
            }
        }
    }

    #[test]
    fn engine_is_reusable() {
        let net = RoadNetworkConfig::new(10, 10, 92, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let targets = vec![5u32, 60];
        let r = TargetRestriction::new(&p, &targets);
        let mut e = r.engine();
        for s in 0..20u32 {
            let got = e.distances(s);
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(got, vec![want[5], want[60]], "source {s}");
        }
    }

    #[test]
    fn single_target_closure_is_small() {
        let net = RoadNetworkConfig::new(30, 30, 93, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let r = TargetRestriction::new(&p, &[17]);
        // One target's closure is its up-reachable cone — far below n.
        assert!(
            r.closure_size() * 2 < p.num_vertices(),
            "closure {} of {}",
            r.closure_size(),
            p.num_vertices()
        );
    }

    #[test]
    fn duplicate_and_source_targets() {
        let net = RoadNetworkConfig::new(8, 8, 94, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let targets = vec![9u32, 9, 0];
        let r = TargetRestriction::new(&p, &targets);
        let mut e = r.engine();
        let got = e.distances(0);
        let want = shortest_paths(net.graph.forward(), 0).dist;
        assert_eq!(got, vec![want[9], want[9], 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matches_dijkstra_on_random_graphs(
            n in 2usize..30,
            extra in 0usize..60,
            seed in 0u64..300,
            t_count in 1usize..6,
        ) {
            let g = strongly_connected_gnm(n, extra, 25, seed);
            let p = Phast::preprocess(&g);
            let targets: Vec<Vertex> =
                (0..t_count as u64).map(|i| ((seed + i * 11) % n as u64) as Vertex).collect();
            let r = TargetRestriction::new(&p, &targets);
            let mut e = r.engine();
            let s = (seed % n as u64) as Vertex;
            let got = e.distances(s);
            let want = shortest_paths(g.forward(), s).dist;
            for (i, &t) in targets.iter().enumerate() {
                prop_assert_eq!(got[i], want[t as usize]);
            }
        }
    }
}
