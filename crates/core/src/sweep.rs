//! The single-tree PHAST engine: forward CH search + linear sweep.

use crate::Phast;
use phast_graph::{Vertex, Weight, INF};
use phast_obs::{PhaseTimer, QueryStats};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// Per-query state for single-tree PHAST computations.
///
/// The engine owns the distance array and the per-vertex visited marks that
/// implement the paper's *implicit initialization* (Section IV-C): instead
/// of refilling `n` labels with `∞` before every query, a vertex whose mark
/// is clear is treated as unreached (its stale label is ignored), and the
/// sweep clears every mark as it scans, leaving the array ready for the
/// next query.
pub struct PhastEngine<'p> {
    p: &'p Phast,
    /// Distance labels in sweep IDs. Stale outside a query.
    dist: Vec<Weight>,
    /// `1` if the vertex has a valid label from the current query's CH
    /// search phase.
    marked: Vec<u8>,
    queue: IndexedBinaryHeap,
    /// Statistics of the most recent query (reset by `upward`).
    stats: QueryStats,
}

impl<'p> PhastEngine<'p> {
    /// Creates an engine (allocates the `n`-sized label arrays once).
    pub fn new(p: &'p Phast) -> Self {
        let n = p.num_vertices();
        Self {
            p,
            dist: vec![INF; n],
            marked: vec![0; n],
            queue: IndexedBinaryHeap::new(n),
            stats: QueryStats::default(),
        }
    }

    /// The underlying instance.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }

    /// Statistics of the most recent query: phase times, the always-on
    /// settled count, and — when built with the `obs-counters` feature —
    /// the arc/mark/level counters (see [`phast_obs`]).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Mutable statistics access for the sibling sweep implementations.
    pub(crate) fn stats_mut(&mut self) -> &mut QueryStats {
        &mut self.stats
    }

    /// Phase 1: the forward CH search from `s` (sweep IDs), run until the
    /// queue is empty. Labels of visited vertices become upper bounds; all
    /// visited vertices are marked.
    pub(crate) fn upward(&mut self, s: Vertex) {
        debug_assert!(self.marked.iter().all(|&m| m == 0), "marks left dirty");
        self.stats.reset();
        let timer = PhaseTimer::start();
        self.queue.clear();
        self.dist[s as usize] = 0;
        self.marked[s as usize] = 1;
        self.queue.insert(s, 0);
        let mut settled: u64 = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            settled += 1;
            let out = self.p.up().out(v);
            self.stats.counters.add_upward_relaxed(out.len() as u64);
            for a in out {
                let w = a.head as usize;
                // Saturate at INF: labels stay <= INF, so with arc weights
                // <= INF no `u32` addition here can ever wrap.
                let cand = (dv + a.weight).min(INF);
                if self.marked[w] == 0 {
                    self.dist[w] = cand;
                    self.marked[w] = 1;
                    self.queue.insert(a.head, cand);
                } else if cand < self.dist[w] {
                    self.dist[w] = cand;
                    self.queue.decrease_key(a.head, cand);
                }
            }
        }
        self.stats.counters.add_upward_settled(settled);
        self.stats.upward_time = timer.elapsed();
    }

    /// Phase 1 alone, returning the search space as `(sweep ID, label)`
    /// pairs — the payload GPHAST ships to the device. Marks are cleared
    /// before returning, so the engine is immediately reusable.
    pub fn upward_search(&mut self, source: Vertex) -> Vec<(Vertex, Weight)> {
        let s = self.p.to_sweep(source);
        self.upward(s);
        let mut space = Vec::new();
        for v in 0..self.p.num_vertices() {
            if self.marked[v] != 0 {
                space.push((v as Vertex, self.dist[v]));
                self.marked[v] = 0;
            }
        }
        space
    }

    /// Phase 2: the linear sweep over `G↓` in increasing sweep-ID order.
    pub(crate) fn sweep(&mut self) {
        let timer = PhaseTimer::start();
        let first = self.p.down().first();
        let arcs = self.p.down().arcs();
        let levels = self.p.num_levels();
        let dist = &mut self.dist[..];
        let marked = &mut self.marked[..];
        #[cfg(feature = "obs-counters")]
        let mut cleared: u64 = 0;
        for v in 0..dist.len() {
            let mut dv = if marked[v] != 0 {
                #[cfg(feature = "obs-counters")]
                {
                    cleared += 1;
                }
                dist[v]
            } else {
                INF
            };
            // The arc slice of v; tails are strictly smaller sweep IDs, so
            // dist[tail] is final.
            for a in &arcs[first[v] as usize..first[v + 1] as usize] {
                let cand = dist[a.tail as usize] + a.weight;
                if cand < dv {
                    dv = cand;
                }
            }
            // Clamp so labels never exceed INF even on unreachable chains.
            dist[v] = dv.min(INF);
            marked[v] = 0;
        }
        #[cfg(feature = "obs-counters")]
        self.stats.counters.add_marks_cleared(cleared);
        // The sequential sweep is oblivious: every downward arc is relaxed
        // exactly once, each level in one block.
        self.stats.counters.add_sweep_arcs(arcs.len() as u64);
        self.stats.counters.add_levels_swept(levels as u64);
        self.stats.counters.add_blocks_executed(levels as u64);
        self.stats.sweep_time = timer.elapsed();
    }

    /// One full NSSP computation from original vertex `source`. Returns the
    /// labels in **sweep order**; use [`Phast::to_sweep`] to index them or
    /// [`Self::distances`] for original order.
    pub fn distances_sweep(&mut self, source: Vertex) -> &[Weight] {
        let s = self.p.to_sweep(source);
        self.upward(s);
        self.sweep();
        &self.dist
    }

    /// One full NSSP computation; labels in original vertex order.
    pub fn distances(&mut self, source: Vertex) -> Vec<Weight> {
        self.distances_sweep(source);
        self.p.labels_to_original(&self.dist)
    }

    /// Distance of one original vertex after the last query.
    pub fn dist_of(&self, original: Vertex) -> Weight {
        self.dist[self.p.to_sweep(original) as usize]
    }

    /// The raw sweep-order labels of the last query.
    pub fn labels(&self) -> &[Weight] {
        &self.dist
    }

    /// Mutable access for the parallel sweep implementation.
    pub(crate) fn state_mut(&mut self) -> (&Phast, &mut [Weight], &mut [u8]) {
        (self.p, &mut self.dist, &mut self.marked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, PhastBuilder, SweepOrder};
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::{Graph, GraphBuilder};
    use proptest::prelude::*;

    fn check_sources(g: &Graph, sources: &[Vertex]) {
        let p = Phast::preprocess(g);
        let mut e = p.engine();
        for &s in sources {
            let want = shortest_paths(g.forward(), s).dist;
            let got = e.distances(s);
            assert_eq!(got, want, "source {s}");
        }
    }

    #[test]
    fn matches_dijkstra_on_road_network() {
        let net = RoadNetworkConfig::new(20, 20, 7, Metric::TravelTime).build();
        check_sources(&net.graph, &[0, 5, 100, 350]);
    }

    #[test]
    fn matches_dijkstra_on_distance_metric() {
        let net = RoadNetworkConfig::new(15, 15, 8, Metric::TravelDistance).build();
        check_sources(&net.graph, &[0, 17, 203]);
    }

    #[test]
    fn engine_is_reusable_via_implicit_init() {
        let net = RoadNetworkConfig::new(12, 12, 9, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.engine();
        // Run many queries back to back; stale labels must never leak.
        for s in 0..30u32 {
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(e.distances(s), want, "query {s}");
        }
    }

    #[test]
    fn disconnected_targets_are_inf() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 3).add_edge(1, 2, 4); // 3, 4 isolated
        let g = b.build();
        let p = Phast::preprocess(&g);
        let mut e = p.engine();
        let d = e.distances(0);
        assert_eq!(d, vec![0, 3, 7, INF, INF]);
        // And from an isolated vertex everything else is INF.
        let d = e.distances(4);
        assert_eq!(d[0], INF);
        assert_eq!(d[4], 0);
    }

    #[test]
    fn reverse_engine_computes_distances_to_source() {
        let net = RoadNetworkConfig::new(10, 10, 3, Metric::TravelTime).build();
        let g = &net.graph;
        let p = PhastBuilder::new().direction(Direction::Reverse).build(g);
        let mut e = p.engine();
        let t = 42 % g.num_vertices() as Vertex;
        let got = e.distances(t);
        // Reference: Dijkstra on the transposed graph.
        let want = shortest_paths(g.transposed().forward(), t).dist;
        assert_eq!(got, want);
    }

    #[test]
    fn by_rank_sweep_is_also_correct() {
        let net = RoadNetworkConfig::new(10, 10, 6, Metric::TravelTime).build();
        let p = PhastBuilder::new().order(SweepOrder::ByRank).build(&net.graph);
        let mut e = p.engine();
        let want = shortest_paths(net.graph.forward(), 3).dist;
        assert_eq!(e.distances(3), want);
    }

    #[test]
    fn upward_search_is_reusable_and_small() {
        let net = RoadNetworkConfig::new(20, 20, 2, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.engine();
        let a = e.upward_search(0);
        let b = e.upward_search(0);
        assert_eq!(a, b, "upward search must be repeatable");
        assert!(a.len() < net.graph.num_vertices() / 2);
        // A subsequent full query still works.
        let want = shortest_paths(net.graph.forward(), 0).dist;
        assert_eq!(e.distances(0), want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn matches_dijkstra_on_arbitrary_digraphs(
            n in 2usize..30,
            extra in 0usize..70,
            seed in 0u64..400,
            max_w in 1u32..50,
        ) {
            let g = strongly_connected_gnm(n, extra, max_w, seed);
            let p = Phast::preprocess(&g);
            let mut e = p.engine();
            for s in 0..n.min(4) as Vertex {
                let want = shortest_paths(g.forward(), s).dist;
                prop_assert_eq!(e.distances(s), want);
            }
        }

        #[test]
        fn sparse_possibly_disconnected_digraphs(
            n in 1usize..25,
            m in 0usize..40,
            seed in 0u64..300,
        ) {
            let g = phast_graph::gen::random::gnm(n, m, 30, seed);
            let p = Phast::preprocess(&g);
            let mut e = p.engine();
            let s = (seed % n as u64) as Vertex;
            let want = shortest_paths(g.forward(), s).dist;
            prop_assert_eq!(e.distances(s), want);
        }
    }
}
