//! Multi-core PHAST (Section V).
//!
//! Two orthogonal parallelizations:
//!
//! * **per-source**: different cores build different trees — embarrassingly
//!   parallel, the paper's 3.7× on four cores ([`par_trees`],
//!   [`par_multi_trees`]);
//! * **intra-level**: one tree, but the vertices of each level are split
//!   into blocks processed by different cores — the paper's 3.5× on four
//!   cores, and the scheme GPHAST inherits
//!   ([`PhastEngine::distances_par`]).

use crate::simd::{sweep_range_scalar, SweepParams};
use crate::sweep::PhastEngine;
use crate::{MultiTreeEngine, Phast};
use phast_graph::{Vertex, Weight};
use phast_obs::PhaseTimer;
use rayon::prelude::*;

/// Minimum vertices a parallel block is worth; smaller levels are swept
/// sequentially (the top of the hierarchy is tiny).
const MIN_BLOCK: usize = 4096;

/// A precomputed intra-level block decomposition — Section V: "Blocks and
/// their assignment to threads can be computed during preprocessing."
///
/// One plan per thread count; levels too small to parallelize hold a
/// single block.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// Per level (in sweep order), the vertex ranges assigned to workers.
    blocks_per_level: Vec<Vec<(u32, u32)>>,
    threads: usize,
}

impl SweepPlan {
    /// Builds the plan for `threads` workers over `p`'s levels.
    pub fn new(p: &Phast, threads: usize) -> Self {
        let threads = threads.max(1);
        let blocks_per_level = p
            .level_ranges()
            .iter()
            .map(|range| {
                let (start, end) = (range.start as usize, range.end as usize);
                let len = end - start;
                if len < MIN_BLOCK || threads == 1 {
                    vec![(range.start, range.end)]
                } else {
                    let block = len.div_ceil(threads).max(MIN_BLOCK / 2);
                    (start..end)
                        .step_by(block)
                        .map(|b| (b as u32, ((b + block).min(end)) as u32))
                        .collect()
                }
            })
            .collect();
        Self {
            blocks_per_level,
            threads,
        }
    }

    /// Worker count the plan was built for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total blocks across all levels.
    pub fn num_blocks(&self) -> usize {
        self.blocks_per_level.iter().map(Vec::len).sum()
    }
}

/// A raw-pointer wrapper that lets sweep blocks of one level run on
/// different threads.
///
/// Safety argument (why sharing `*mut` here is sound): within a level no
/// arcs connect two vertices (Lemma 4.1 makes levels independent sets of
/// `G↓`), so each block writes only its own label rows and marks, and reads
/// only rows of *earlier* levels, which were finalized before this level
/// started — reads and writes never overlap.
struct SyncSweep<'a>(SweepParams<'a>);

// SAFETY: see the struct documentation; disjointness of writes is
// guaranteed by the level structure, established by `Phast::validate`.
unsafe impl Send for SyncSweep<'_> {}
// SAFETY: as above.
unsafe impl Sync for SyncSweep<'_> {}

impl PhastEngine<'_> {
    /// One NSSP computation with the intra-level parallel sweep; labels in
    /// original vertex order. Equivalent to [`Self::distances`] but splits
    /// each level across the rayon pool.
    pub fn distances_par(&mut self, source: Vertex) -> Vec<Weight> {
        self.distances_par_sweep(source);
        let (p, dist, _) = self.state_mut();
        p.labels_to_original(dist)
    }

    /// Parallel-sweep variant of [`Self::distances_sweep`], planning blocks
    /// for the current rayon pool on the fly.
    pub fn distances_par_sweep(&mut self, source: Vertex) -> &[Weight] {
        let plan = SweepPlan::new(self.phast(), rayon::current_num_threads());
        self.distances_par_planned(source, &plan)
    }

    /// Parallel sweep with a precomputed [`SweepPlan`] (Section V's
    /// "blocks computed during preprocessing"): the per-query block
    /// bookkeeping disappears.
    pub fn distances_par_planned(&mut self, source: Vertex, plan: &SweepPlan) -> &[Weight] {
        let s = self.phast().to_sweep(source);
        self.upward(s);
        let timer = PhaseTimer::start();
        let (p, dist, marked) = self.state_mut();
        assert_eq!(
            plan.blocks_per_level.len(),
            p.level_ranges().len(),
            "plan built for a different instance"
        );
        // The parallel kernel clears marks as it sweeps, so count them
        // up front (only when counters are compiled in — it is an O(n)
        // scan).
        #[cfg(feature = "obs-counters")]
        let cleared = marked.iter().filter(|&&m| m != 0).count() as u64;
        let arcs_total = p.down().arcs().len() as u64;
        let shared = SyncSweep(SweepParams {
            first: p.down().first(),
            arcs: p.down().arcs(),
            k: 1,
            dist: dist.as_mut_ptr(),
            marked: marked.as_mut_ptr(),
        });
        let mut blocks_executed: u64 = 0;
        for blocks in &plan.blocks_per_level {
            blocks_executed += blocks.len() as u64;
            match blocks.as_slice() {
                [(lo, hi)] => {
                    // SAFETY: sequential call, exclusive access.
                    unsafe { sweep_range_scalar(&shared.0, *lo as usize..*hi as usize) };
                }
                many => {
                    many.par_iter().for_each(|&(lo, hi)| {
                        let shared = &shared;
                        // SAFETY: blocks of one level are disjoint vertex
                        // ranges; see SyncSweep. Earlier levels are complete
                        // because the level loop is sequential with a
                        // barrier (par_iter joins) between levels.
                        unsafe { sweep_range_scalar(&shared.0, lo as usize..hi as usize) };
                    });
                }
            }
        }
        let levels = plan.blocks_per_level.len() as u64;
        let stats = self.stats_mut();
        #[cfg(feature = "obs-counters")]
        stats.counters.add_marks_cleared(cleared);
        stats.counters.add_sweep_arcs(arcs_total);
        stats.counters.add_levels_swept(levels);
        stats.counters.add_blocks_executed(blocks_executed);
        stats.sweep_time = timer.elapsed();
        let (_, dist, _) = self.state_mut();
        &*dist
    }
}

impl MultiTreeEngine<'_> {
    /// One batch with the intra-level **parallel** sweep — levels are split
    /// into blocks across the rayon pool and each block runs the SIMD
    /// kernel. This combines all three accelerations of Sections IV–V
    /// (batching + SIMD + intra-level cores), the CPU analogue of GPHAST's
    /// execution model.
    pub fn run_par(&mut self, sources: &[Vertex]) {
        self.upward_batch(sources);
        let timer = PhaseTimer::start();
        let (p, k, simd, dist, marked) = self.parts_mut();
        // Counted up front; the kernels clear marks while sweeping.
        #[cfg(feature = "obs-counters")]
        let cleared = marked.iter().filter(|&&m| m != 0).count() as u64;
        let shared = SyncSweep(SweepParams {
            first: p.down().first(),
            arcs: p.down().arcs(),
            k,
            dist: dist.as_mut_ptr(),
            marked: marked.as_mut_ptr(),
        });
        let threads = rayon::current_num_threads().max(1);
        let mut blocks_executed: u64 = 0;
        for range in p.level_ranges() {
            let (start, end) = (range.start as usize, range.end as usize);
            let len = end - start;
            if len * k < MIN_BLOCK || threads == 1 {
                blocks_executed += 1;
                // SAFETY: sequential call, exclusive access to everything.
                unsafe { crate::simd::sweep_range(simd, &shared.0, start..end) };
                continue;
            }
            let block = len.div_ceil(threads).max(MIN_BLOCK / (2 * k));
            let blocks: Vec<(usize, usize)> = (start..end)
                .step_by(block)
                .map(|b| (b, (b + block).min(end)))
                .collect();
            blocks_executed += blocks.len() as u64;
            blocks.par_iter().for_each(|&(lo, hi)| {
                let shared = &shared;
                // SAFETY: disjoint vertex blocks within one level; earlier
                // levels complete (sequential level loop with a barrier).
                unsafe { crate::simd::sweep_range(simd, &shared.0, lo..hi) };
            });
        }
        // The batched sweep is oblivious: every downward arc is relaxed
        // once per tree.
        let arcs_total = p.down().arcs().len() as u64 * k as u64;
        let levels = p.num_levels() as u64;
        let stats = self.stats_mut();
        #[cfg(feature = "obs-counters")]
        stats.counters.add_marks_cleared(cleared);
        stats.counters.add_sweep_arcs(arcs_total);
        stats.counters.add_levels_swept(levels);
        stats.counters.add_blocks_executed(blocks_executed);
        stats.sweep_time = timer.elapsed();
    }
}

/// Builds one tree per source across the rayon pool (one engine per worker)
/// and reduces each tree to a summary with `f`, which receives the source
/// and the engine state after its query.
pub fn par_trees<T, F>(p: &Phast, sources: &[Vertex], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Vertex, &mut PhastEngine<'_>) -> T + Sync,
{
    sources
        .par_iter()
        .map_init(
            || p.engine(),
            |engine, &s| {
                engine.distances_sweep(s);
                f(s, engine)
            },
        )
        .collect()
}

/// Like [`par_trees`] but each worker sweeps `k` sources at once
/// (Table II's "16 trees per core per sweep" configuration). `sources` is
/// processed in chunks of `k`; a final short chunk is padded by repeating
/// its last source. `f` sees the engine after each batch together with the
/// *unpadded* sources of the batch.
pub fn par_multi_trees<T, F>(p: &Phast, k: usize, sources: &[Vertex], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[Vertex], &MultiTreeEngine<'_>) -> T + Sync,
{
    par_multi_trees_with(p, k, None, sources, f)
}

/// [`par_multi_trees`] with an explicit kernel override (ablation: Table II
/// measures SSE on and off).
pub fn par_multi_trees_with<T, F>(
    p: &Phast,
    k: usize,
    simd: Option<crate::simd::SimdLevel>,
    sources: &[Vertex],
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&[Vertex], &MultiTreeEngine<'_>) -> T + Sync,
{
    let chunks: Vec<&[Vertex]> = sources.chunks(k).collect();
    chunks
        .par_iter()
        .map_init(
            || {
                let mut e = p.multi_engine(k);
                if let Some(level) = simd {
                    e.force_simd(level);
                }
                e
            },
            |engine, chunk| {
                if chunk.len() == k {
                    engine.run(chunk);
                } else {
                    let mut padded = chunk.to_vec();
                    let last = *padded.last().expect("chunks are non-empty");
                    padded.resize(k, last);
                    engine.run(&padded);
                }
                f(chunk, engine)
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::INF;

    #[test]
    fn parallel_sweep_matches_sequential() {
        let net = RoadNetworkConfig::new(25, 25, 11, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.engine();
        for s in [0u32, 77, 300] {
            let seq = e.distances(s);
            let par = e.distances_par(s);
            assert_eq!(seq, par, "source {s}");
            assert_eq!(par, shortest_paths(net.graph.forward(), s).dist);
        }
    }

    #[test]
    fn par_trees_summaries() {
        let net = RoadNetworkConfig::new(10, 10, 12, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sources: Vec<Vertex> = (0..20).collect();
        let eccs = par_trees(&p, &sources, |_, e| {
            e.labels().iter().copied().filter(|&d| d < INF).max().unwrap()
        });
        for (i, &s) in sources.iter().enumerate() {
            let want = shortest_paths(net.graph.forward(), s)
                .dist
                .into_iter()
                .filter(|&d| d < INF)
                .max()
                .unwrap();
            assert_eq!(eccs[i], want);
        }
    }

    #[test]
    fn planned_sweep_matches_on_the_fly() {
        let net = RoadNetworkConfig::new(18, 18, 15, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let plan = SweepPlan::new(&p, 4);
        assert!(plan.num_blocks() >= p.num_levels());
        assert_eq!(plan.threads(), 4);
        let mut e = p.engine();
        for s in [0u32, 99, 200] {
            let planned = e.distances_par_planned(s, &plan).to_vec();
            let adhoc = e.distances_par_sweep(s).to_vec();
            assert_eq!(planned, adhoc, "source {s}");
            assert_eq!(
                p.labels_to_original(&planned),
                shortest_paths(net.graph.forward(), s).dist
            );
        }
    }

    #[test]
    fn parallel_multi_tree_sweep_matches_sequential() {
        let net = RoadNetworkConfig::new(20, 20, 14, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sources: Vec<Vertex> = (0..8).map(|i| i * 41 % 390).collect();
        let mut seq = p.multi_engine(8);
        let mut par = p.multi_engine(8);
        seq.run(&sources);
        par.run_par(&sources);
        assert_eq!(seq.labels(), par.labels());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                par.tree_distances(i),
                shortest_paths(net.graph.forward(), s).dist
            );
        }
    }

    #[test]
    fn par_multi_trees_with_ragged_tail() {
        let net = RoadNetworkConfig::new(10, 10, 13, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let sources: Vec<Vertex> = (0..10).collect(); // 10 = 4 + 4 + 2
        let batches = par_multi_trees(&p, 4, &sources, |chunk, e| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, e.dist_of(i, s)))
                .collect::<Vec<_>>()
        });
        let seen: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(seen, 10);
        for batch in batches {
            for (s, d_self) in batch {
                assert_eq!(d_self, 0, "distance from {s} to itself");
            }
        }
    }
}
