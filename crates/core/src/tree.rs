//! Building actual shortest path trees (Section VII-A).
//!
//! The sweep can remember, for every vertex, the arc responsible for its
//! label — a parent pointer in `G+` (possibly a shortcut). For parents in
//! the *original* graph the paper's one-extra-pass trick applies: for every
//! original arc `(u, v)`, if `d(v) = d(u) + l(u, v)` then `u` can be `v`'s
//! parent. With strictly positive arc lengths the result is a valid
//! shortest path tree of `G`.

use crate::Phast;
use phast_dijkstra::ShortestPathTree;
use phast_graph::{Vertex, Weight, INF};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// Sentinel for "no parent".
const NO_PARENT: Vertex = Vertex::MAX;

/// Per-query state for tree-building PHAST computations: like
/// [`crate::PhastEngine`] but also records parent pointers.
pub struct TreeEngine<'p> {
    p: &'p Phast,
    dist: Vec<Weight>,
    /// Parent in `G+` (sweep IDs) chosen by the sweep.
    parent_gplus: Vec<Vertex>,
    marked: Vec<u8>,
    queue: IndexedBinaryHeap,
}

impl<'p> TreeEngine<'p> {
    /// Creates a tree engine.
    pub fn new(p: &'p Phast) -> Self {
        let n = p.num_vertices();
        Self {
            p,
            dist: vec![INF; n],
            parent_gplus: vec![NO_PARENT; n],
            marked: vec![0; n],
            queue: IndexedBinaryHeap::new(n),
        }
    }

    /// The instance.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }

    fn upward(&mut self, s: Vertex) {
        self.queue.clear();
        self.dist[s as usize] = 0;
        self.parent_gplus[s as usize] = NO_PARENT;
        self.marked[s as usize] = 1;
        self.queue.insert(s, 0);
        while let Some((v, dv)) = self.queue.pop_min() {
            for a in self.p.up().out(v) {
                let w = a.head as usize;
                // Saturate at INF: labels stay <= INF, so with arc weights
                // <= INF no `u32` addition here can ever wrap.
                let cand = (dv + a.weight).min(INF);
                if self.marked[w] == 0 {
                    self.dist[w] = cand;
                    self.parent_gplus[w] = v;
                    self.marked[w] = 1;
                    self.queue.insert(a.head, cand);
                } else if cand < self.dist[w] {
                    self.dist[w] = cand;
                    self.parent_gplus[w] = v;
                    self.queue.decrease_key(a.head, cand);
                }
            }
        }
    }

    fn sweep_with_parents(&mut self) {
        let first = self.p.down().first();
        let arcs = self.p.down().arcs();
        for v in 0..self.dist.len() {
            let (mut dv, mut par) = if self.marked[v] != 0 {
                (self.dist[v], self.parent_gplus[v])
            } else {
                (INF, NO_PARENT)
            };
            for a in &arcs[first[v] as usize..first[v + 1] as usize] {
                let cand = self.dist[a.tail as usize] + a.weight;
                if cand < dv {
                    dv = cand;
                    par = a.tail;
                }
            }
            if dv > INF {
                dv = INF;
                par = NO_PARENT;
            }
            self.dist[v] = dv;
            self.parent_gplus[v] = par;
            self.marked[v] = 0;
        }
    }

    /// Computes the tree from `source` (original ID). Labels and `G+`
    /// parents stay in the engine (sweep IDs) until the next query.
    pub fn run(&mut self, source: Vertex) {
        let s = self.p.to_sweep(source);
        self.upward(s);
        self.sweep_with_parents();
    }

    /// Sweep-order labels of the last query.
    pub fn labels(&self) -> &[Weight] {
        &self.dist
    }

    /// `G+` parent (sweep IDs) of a sweep vertex; parents may be shortcut
    /// tails. "For many applications, paths in `G+` are sufficient and even
    /// desirable."
    pub fn parent_gplus(&self, sweep: Vertex) -> Option<Vertex> {
        let p = self.parent_gplus[sweep as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// The full shortest path to one `target` (original IDs, inclusive of
    /// both endpoints), produced by expanding the `G+` parent chain's
    /// shortcuts — the paper's Section VII-A: "In some applications, one
    /// might need to compute all distance labels, but the full description
    /// of a single s-t path. In such cases, a path in `G+` can be expanded
    /// into the corresponding path in `G` in time proportional to the
    /// number of arcs on it."
    ///
    /// For a forward solver the path runs source → target; for a reverse
    /// solver it is the original-graph path target → source. Returns
    /// `None` if `target` is unreachable.
    pub fn path_to(&self, target: Vertex) -> Option<Vec<Vertex>> {
        let p = self.p;
        let t_sweep = p.to_sweep(target);
        if self.dist[t_sweep as usize] >= INF {
            return None;
        }
        // Parent chain in G+ from the target back to the source.
        let mut chain = vec![t_sweep];
        let mut x = t_sweep;
        while let Some(par) = self.parent_gplus(x) {
            x = par;
            chain.push(par);
            assert!(chain.len() <= p.num_vertices(), "parent cycle");
        }
        chain.reverse(); // source ... target, in solver orientation
        let mut path_sweep = vec![chain[0]];
        for w in chain.windows(2) {
            let weight = self.dist[w[1] as usize] - self.dist[w[0] as usize];
            p.unpack_arc_sweep(w[0], w[1], weight, &mut path_sweep);
        }
        let mut out: Vec<Vertex> = path_sweep.iter().map(|&v| p.to_original(v)).collect();
        // A reverse solver's arcs are flipped: the expanded sequence walks
        // the original arcs backwards.
        if p.direction() == crate::Direction::Reverse {
            out.reverse();
        }
        Some(out)
    }

    /// Reconstructs the shortest path tree **in the original graph** with
    /// the extra pass over the original arc list, returning labels and
    /// parents in original vertex order.
    ///
    /// For the reverse direction the tree is the *in*-tree of the source:
    /// `parent[v]` is the next hop on a shortest path from `v` to the
    /// source.
    pub fn original_tree(&self, source: Vertex) -> ShortestPathTree {
        let n = self.p.num_vertices();
        let s_sweep = self.p.to_sweep(source) as usize;
        let mut parent_sweep = vec![NO_PARENT; n];
        let orig = self.p.orig_incoming();
        let attached = |parent_sweep: &[Vertex], x: usize| -> bool {
            x == s_sweep || parent_sweep[x] != NO_PARENT
        };
        // Pass 1 (the paper's single pass): adopt any *strictly* tight arc
        // (`d(u) < d(v)`), which is every tight arc when arc lengths are
        // strictly positive and can never form a cycle.
        for (v, slot) in parent_sweep.iter_mut().enumerate() {
            if v == s_sweep || self.dist[v] >= INF {
                continue;
            }
            let dv = self.dist[v];
            for a in orig.incoming(v as Vertex) {
                let du = self.dist[a.tail as usize];
                if du < dv && du + a.weight == dv {
                    *slot = a.tail;
                    break;
                }
            }
        }
        // Zero-weight arcs leave equal-label plateaus unresolved. Attach
        // them to the growing tree with a fixpoint: a plateau vertex may
        // adopt an equal-label parent only once that parent is itself
        // attached, so parents always precede children and no cycle forms.
        let mut unresolved: Vec<usize> = (0..n)
            .filter(|&v| v != s_sweep && self.dist[v] < INF && parent_sweep[v] == NO_PARENT)
            .collect();
        while !unresolved.is_empty() {
            let before = unresolved.len();
            unresolved.retain(|&v| {
                let dv = self.dist[v];
                for a in orig.incoming(v as Vertex) {
                    let du = self.dist[a.tail as usize];
                    if du + a.weight == dv
                        && du < INF
                        && attached(&parent_sweep, a.tail as usize)
                    {
                        parent_sweep[v] = a.tail;
                        return false;
                    }
                }
                true
            });
            assert!(
                unresolved.len() < before,
                "tight-arc attachment stalled; labels inconsistent"
            );
        }

        // Translate to original IDs.
        let mut dist = vec![INF; n];
        let mut parent = vec![NO_PARENT; n];
        for (sweep, &ps) in parent_sweep.iter().enumerate() {
            let old = self.p.to_original(sweep as Vertex) as usize;
            dist[old] = self.dist[sweep];
            if ps != NO_PARENT {
                parent[old] = self.p.to_original(ps);
            }
        }
        ShortestPathTree::new(source, dist, parent)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use proptest::prelude::*;

    #[test]
    fn original_tree_validates_on_road_network() {
        let net = RoadNetworkConfig::new(15, 15, 21, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.tree_engine();
        for s in [0u32, 50, 150] {
            e.run(s);
            let tree = e.original_tree(s);
            tree.validate(net.graph.forward()).unwrap();
            let want = shortest_paths(net.graph.forward(), s).dist;
            assert_eq!(tree.dist, want);
        }
    }

    #[test]
    fn gplus_parents_are_tight() {
        let net = RoadNetworkConfig::new(10, 10, 22, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut e = p.tree_engine();
        e.run(7);
        // Every non-root reached vertex has a G+ parent whose label gap is
        // an arc of up() or down().
        for v in 0..p.num_vertices() as Vertex {
            if e.labels()[v as usize] >= INF || p.to_original(v) == 7 {
                continue;
            }
            let par = e.parent_gplus(v).expect("reached vertex needs parent");
            let gap = e.labels()[v as usize] - e.labels()[par as usize];
            let in_down = p
                .down()
                .incoming(v)
                .iter()
                .any(|a| a.tail == par && a.weight == gap);
            let in_up = p.up().out(par).iter().any(|a| a.head == v && a.weight == gap);
            assert!(in_down || in_up, "parent arc of {v} not found");
        }
    }

    #[test]
    fn expanded_paths_use_original_arcs_and_sum_to_dist() {
        let net = RoadNetworkConfig::new(12, 12, 23, Metric::TravelTime).build();
        let g = &net.graph;
        let p = Phast::preprocess(g);
        let mut e = p.tree_engine();
        e.run(5);
        let labels = p.labels_to_original(e.labels());
        for t in (0..g.num_vertices() as Vertex).step_by(17) {
            let path = e.path_to(t).expect("strongly connected");
            assert_eq!(*path.first().unwrap(), 5);
            assert_eq!(*path.last().unwrap(), t);
            let mut sum = 0;
            for w in path.windows(2) {
                let arc = g
                    .out(w[0])
                    .iter()
                    .filter(|a| a.head == w[1])
                    .map(|a| a.weight)
                    .min()
                    .unwrap_or_else(|| panic!("no original arc {} -> {}", w[0], w[1]));
                sum += arc;
            }
            assert_eq!(sum, labels[t as usize], "path weight to {t}");
        }
    }

    #[test]
    fn reverse_solver_paths_run_towards_the_source() {
        use crate::{Direction, PhastBuilder};
        let net = RoadNetworkConfig::new(9, 9, 24, Metric::TravelTime).build();
        let g = &net.graph;
        let p = PhastBuilder::new().direction(Direction::Reverse).build(g);
        let mut e = p.tree_engine();
        let target = 40; // the "source" of the reverse tree
        e.run(target);
        for v in [0u32, 7, 63] {
            let path = e.path_to(v).expect("strongly connected");
            assert_eq!(*path.first().unwrap(), v);
            assert_eq!(*path.last().unwrap(), target);
            for w in path.windows(2) {
                assert!(
                    g.out(w[0]).iter().any(|a| a.head == w[1]),
                    "arc {} -> {} missing",
                    w[0],
                    w[1]
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn original_trees_on_random_graphs(
            n in 2usize..25,
            extra in 0usize..60,
            seed in 0u64..300,
        ) {
            let g = strongly_connected_gnm(n, extra, 20, seed);
            let p = Phast::preprocess(&g);
            let mut e = p.tree_engine();
            let s = (seed % n as u64) as Vertex;
            e.run(s);
            let tree = e.original_tree(s);
            prop_assert_eq!(tree.validate(g.forward()), Ok(()));
            let want = shortest_paths(g.forward(), s).dist;
            prop_assert_eq!(tree.dist, want);
        }
    }
}
