//! The queue interface shared by all implementations.

/// An indexed min-priority queue over items `0..capacity` with `u32` keys
/// and `O(1)` item lookup for `decrease_key`/`contains`.
///
/// # Monotone queues
///
/// The bucket-based implementations ([`crate::DialQueue`],
/// [`crate::RadixHeap`]) additionally require *monotone* use: no key passed
/// to `insert` or `decrease_key` may be smaller than the key of the last
/// `pop_min`. Dijkstra's algorithm with non-negative weights satisfies this
/// naturally. The heap implementations have no such restriction.
pub trait DecreaseKeyQueue {
    /// Creates a queue able to hold items `0..n`.
    fn new(n: usize) -> Self
    where
        Self: Sized;

    /// Inserts `item` with `key`.
    ///
    /// # Panics
    ///
    /// May panic if `item` is already queued or out of range.
    fn insert(&mut self, item: u32, key: u32);

    /// Lowers the key of a queued `item` to `key`.
    ///
    /// # Panics
    ///
    /// May panic if `item` is not queued or `key` is larger than its
    /// current key.
    fn decrease_key(&mut self, item: u32, key: u32);

    /// Removes and returns a minimum-key entry as `(item, key)`.
    fn pop_min(&mut self) -> Option<(u32, u32)>;

    /// True if `item` is currently queued.
    fn contains(&self, item: u32) -> bool;

    /// Number of queued items.
    fn len(&self) -> usize;

    /// True if no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue in `O(len)` (not `O(capacity)`), keeping capacity.
    fn clear(&mut self);

    /// Dijkstra's relaxation helper: inserts `item` if absent, otherwise
    /// decreases its key. Returns `true` if this was a fresh insert.
    ///
    /// Callers must ensure `key` is not larger than the current key when
    /// the item is already queued.
    fn insert_or_decrease(&mut self, item: u32, key: u32) -> bool {
        if self.contains(item) {
            self.decrease_key(item, key);
            false
        } else {
            self.insert(item, key);
            true
        }
    }
}
