//! K-ary heaps.
//!
//! K-heaps (reference \[18\] of the paper) trade deeper sift-ups for
//! shallower trees and better cache behaviour on pop: with `K = 4`, one
//! cache line holds all children of a node.

use crate::traits::DecreaseKeyQueue;

const ABSENT: u32 = u32::MAX;

/// A `K`-ary indexed min-heap with decrease-key.
#[derive(Clone, Debug)]
pub struct KHeap<const K: usize> {
    heap: Vec<(u32, u32)>,
    pos: Vec<u32>,
}

/// The classic cache-friendly 4-ary heap.
pub type FourHeap = KHeap<4>;

impl<const K: usize> KHeap<K> {
    const ARITY_OK: () = assert!(K >= 2, "heap arity must be at least 2");

    /// Peeks at the minimum without removing it.
    pub fn peek_min(&self) -> Option<(u32, u32)> {
        self.heap.first().map(|&(k, i)| (i, k))
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / K;
            if self.heap[parent].0 <= entry.0 {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i].1 as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let len = self.heap.len();
        loop {
            let first_child = K * i + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + K).min(len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.heap[c].0 < self.heap[best].0 {
                    best = c;
                }
            }
            if self.heap[best].0 >= entry.0 {
                break;
            }
            self.heap[i] = self.heap[best];
            self.pos[self.heap[i].1 as usize] = i as u32;
            i = best;
        }
        self.heap[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }
}

impl<const K: usize> DecreaseKeyQueue for KHeap<K> {
    fn new(n: usize) -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::ARITY_OK;
        Self {
            heap: Vec::new(),
            pos: vec![ABSENT; n],
        }
    }

    fn insert(&mut self, item: u32, key: u32) {
        debug_assert_eq!(self.pos[item as usize], ABSENT, "item already queued");
        self.heap.push((key, item));
        self.sift_up(self.heap.len() - 1);
    }

    fn decrease_key(&mut self, item: u32, key: u32) {
        let p = self.pos[item as usize];
        debug_assert_ne!(p, ABSENT, "item not queued");
        debug_assert!(key <= self.heap[p as usize].0, "key increase");
        self.heap[p as usize].0 = key;
        self.sift_up(p as usize);
    }

    fn pop_min(&mut self) -> Option<(u32, u32)> {
        let (key, item) = *self.heap.first()?;
        self.pos[item as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some((item, key))
    }

    fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != ABSENT
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        for &(_, item) in &self.heap {
            self.pos[item as usize] = ABSENT;
        }
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_heap_sorts() {
        let mut q = FourHeap::new(64);
        for i in 0..64u32 {
            q.insert(i, (i * 37) % 64);
        }
        let mut last = 0;
        let mut count = 0;
        while let Some((_, k)) = q.pop_min() {
            assert!(k >= last);
            last = k;
            count += 1;
        }
        assert_eq!(count, 64);
    }

    #[test]
    fn high_arity_still_correct() {
        let mut q = KHeap::<16>::new(200);
        for i in (0..200u32).rev() {
            q.insert(i, i);
        }
        for i in 0..200u32 {
            assert_eq!(q.pop_min(), Some((i, i)));
        }
    }
}
