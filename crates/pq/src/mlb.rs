//! Two-level bucket queue — the "smart queue" structure \[3, 21\].
//!
//! Multi-level buckets generalize Dial's queue: keys are split into digits
//! of `bits` bits. The **top** level holds one bucket per possible value of
//! the high digit *relative to the current minimum*; the **bottom** level
//! expands exactly one top bucket (the active one) into `2^bits` buckets of
//! width 1. `pop_min` drains the bottom level; when it empties, the next
//! non-empty top bucket is located, its minimum found, and its items
//! redistributed into the bottom level ("expanding" the bucket). Each item
//! is expanded at most once per level, giving `O(m + n·(C^(1/2)))`-ish
//! behaviour for two levels — in practice close to Dial with far fewer
//! empty-bucket scans. Like all bucket queues it is *monotone*.

use crate::traits::DecreaseKeyQueue;

const ABSENT: u32 = u32::MAX;

/// A two-level bucket queue with decrease-key.
#[derive(Clone, Debug)]
pub struct TwoLevelBuckets {
    /// Bits per digit; bottom level has `2^bits` width-1 buckets, top level
    /// `2^bits` buckets of width `2^bits`.
    bits: u32,
    /// Bottom level: width-1 buckets covering the active top bucket.
    low: Vec<Vec<u32>>,
    /// Top level: buckets of width `2^bits`, wrapping modulo `2^(2*bits)`.
    high: Vec<Vec<u32>>,
    /// Overflow bucket for keys beyond the top level's span.
    overflow: Vec<u32>,
    /// Smallest key that maps into the bottom level (start of the expanded
    /// top bucket).
    low_base: u32,
    /// Key of the last popped minimum.
    cursor: u32,
    key: Vec<u32>,
    /// Encoded location: `LOW | idx`, `HIGH | idx`, `OVERFLOW`, or ABSENT.
    loc: Vec<u32>,
    pos: Vec<u32>,
    len: usize,
}

const LOC_LOW: u32 = 0 << 30;
const LOC_HIGH: u32 = 1 << 30;
const LOC_OVER: u32 = 2 << 30;
const LOC_MASK: u32 = 3 << 30;
const IDX_MASK: u32 = !LOC_MASK;

impl TwoLevelBuckets {
    /// Creates a queue for items `0..n` with the given digit width
    /// (`bits` in `1..=15`; 8 covers arc weights up to 65535 with two
    /// levels before overflow handling kicks in).
    pub fn with_bits(n: usize, bits: u32) -> Self {
        assert!((1..=15).contains(&bits), "bits must be in 1..=15");
        let w = 1usize << bits;
        Self {
            bits,
            low: vec![Vec::new(); w],
            high: vec![Vec::new(); w],
            overflow: Vec::new(),
            low_base: 0,
            cursor: 0,
            key: vec![0; n],
            loc: vec![ABSENT; n],
            pos: vec![ABSENT; n],
            len: 0,
        }
    }

    #[inline]
    fn width(&self) -> u32 {
        1 << self.bits
    }

    /// Span covered by low + high levels from `low_base`.
    #[inline]
    fn span(&self) -> u32 {
        1 << (2 * self.bits)
    }

    /// Chooses the bucket for `key` given the current cursor/base.
    fn place(&mut self, item: u32, key: u32) {
        debug_assert!(key >= self.cursor, "monotonicity violated");
        self.key[item as usize] = key;
        let (list, loc): (&mut Vec<u32>, u32) = if key < self.low_base + self.width()
            && key >= self.low_base
        {
            let idx = (key % self.width()) as usize;
            (&mut self.low[idx], LOC_LOW | idx as u32)
        } else if key < self.low_base + self.span() {
            let idx = ((key >> self.bits) % self.width()) as usize;
            (&mut self.high[idx], LOC_HIGH | idx as u32)
        } else {
            (&mut self.overflow, LOC_OVER)
        };
        self.pos[item as usize] = list.len() as u32;
        list.push(item);
        self.loc[item as usize] = loc;
    }

    fn remove(&mut self, item: u32) {
        let loc = self.loc[item as usize];
        debug_assert_ne!(loc, ABSENT);
        let list: &mut Vec<u32> = match loc & LOC_MASK {
            LOC_LOW => &mut self.low[(loc & IDX_MASK) as usize],
            LOC_HIGH => &mut self.high[(loc & IDX_MASK) as usize],
            _ => &mut self.overflow,
        };
        let p = self.pos[item as usize] as usize;
        list.swap_remove(p);
        if let Some(&moved) = list.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        self.loc[item as usize] = ABSENT;
        self.pos[item as usize] = ABSENT;
    }

    /// Expands the bucket holding the global minimum into the low level.
    ///
    /// Called with the low level drained. Finds the minimum over (a) the
    /// first non-empty high bucket in digit-scan order — which holds the
    /// smallest high-level keys because the digit mapping is absolute —
    /// and (b) the overflow bucket, rebases the window on it, and
    /// re-places the donor bucket plus any overflow items that now fit the
    /// window (restoring the invariant that overflow keys lie beyond it).
    fn refill_low(&mut self) {
        debug_assert!(self.len > 0);
        let w = self.width();
        // (a) First non-empty high bucket from the cursor's digit.
        let mut high_min: Option<(usize, u32)> = None;
        for step in 0..w {
            let probe = self.cursor.wrapping_add(step << self.bits);
            let idx = ((probe >> self.bits) % w) as usize;
            if let Some(min) = self.high[idx]
                .iter()
                .map(|&it| self.key[it as usize])
                .min()
            {
                high_min = Some((idx, min));
                break;
            }
        }
        // (b) Overflow minimum.
        let over_min = self
            .overflow
            .iter()
            .map(|&it| self.key[it as usize])
            .min();

        let global_min = match (high_min, over_min) {
            (Some((_, h)), Some(o)) => h.min(o),
            (Some((_, h)), None) => h,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 with all buckets empty"),
        };
        self.low_base = global_min - (global_min % w);
        // The drain scan must start inside the new window, or buckets would
        // be visited in wrapped (wrong) order; it must also never pass the
        // minimum (cursor <= global_min always holds by monotonicity).
        self.cursor = self.cursor.max(self.low_base);

        // Re-place the donor high bucket (its items fit the new span).
        if let Some((idx, _)) = high_min {
            let items = std::mem::take(&mut self.high[idx]);
            for item in items {
                self.loc[item as usize] = ABSENT;
                self.place(item, self.key[item as usize]);
            }
        }
        // Pull every overflow item that now fits the window back in.
        let span_end = self.low_base.saturating_add(self.span());
        let mut kept = Vec::with_capacity(self.overflow.len());
        for item in std::mem::take(&mut self.overflow) {
            if self.key[item as usize] < span_end {
                self.loc[item as usize] = ABSENT;
                self.place(item, self.key[item as usize]);
            } else {
                self.pos[item as usize] = kept.len() as u32;
                kept.push(item);
            }
        }
        self.overflow = kept;
    }
}

impl DecreaseKeyQueue for TwoLevelBuckets {
    /// Default digit width of 8 bits (low level spans 256 keys, top level
    /// 65536).
    fn new(n: usize) -> Self {
        Self::with_bits(n, 8)
    }

    fn insert(&mut self, item: u32, key: u32) {
        debug_assert_eq!(self.loc[item as usize], ABSENT, "item already queued");
        self.place(item, key);
        self.len += 1;
    }

    fn decrease_key(&mut self, item: u32, key: u32) {
        debug_assert_ne!(self.loc[item as usize], ABSENT, "item not queued");
        debug_assert!(key <= self.key[item as usize], "key increase");
        if key == self.key[item as usize] {
            return;
        }
        self.remove(item);
        self.place(item, key);
    }

    fn pop_min(&mut self) -> Option<(u32, u32)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Drain the low level from the cursor forward.
            let w = self.width();
            let low_end = self.low_base + w;
            while self.cursor < low_end {
                let idx = (self.cursor % w) as usize;
                if let Some(&item) = self.low[idx].last() {
                    // All items in a width-1 bucket share one key.
                    self.low[idx].pop();
                    self.loc[item as usize] = ABSENT;
                    self.pos[item as usize] = ABSENT;
                    self.len -= 1;
                    self.cursor = self.key[item as usize];
                    return Some((item, self.key[item as usize]));
                }
                self.cursor += 1;
            }
            self.refill_low();
        }
    }

    fn contains(&self, item: u32) -> bool {
        self.loc[item as usize] != ABSENT
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        if self.len > 0 {
            for b in self.low.iter_mut().chain(self.high.iter_mut()) {
                for &item in b.iter() {
                    self.loc[item as usize] = ABSENT;
                    self.pos[item as usize] = ABSENT;
                }
                b.clear();
            }
            for &item in &self.overflow {
                self.loc[item as usize] = ABSENT;
                self.pos[item as usize] = ABSENT;
            }
            self.overflow.clear();
        }
        self.cursor = 0;
        self.low_base = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_two_level_behaviour() {
        let mut q = TwoLevelBuckets::with_bits(8, 2); // low 4 wide, span 16
        q.insert(0, 3); // low level
        q.insert(1, 9); // high level
        q.insert(2, 100); // overflow
        assert_eq!(q.pop_min(), Some((0, 3)));
        assert_eq!(q.pop_min(), Some((1, 9)));
        assert_eq!(q.pop_min(), Some((2, 100)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn overflow_rebase_keeps_order() {
        let mut q = TwoLevelBuckets::with_bits(4, 2);
        q.insert(0, 1_000_000);
        q.insert(1, 1_000_017);
        q.insert(2, 999_990);
        assert_eq!(q.pop_min(), Some((2, 999_990)));
        assert_eq!(q.pop_min(), Some((0, 1_000_000)));
        assert_eq!(q.pop_min(), Some((1, 1_000_017)));
    }

    #[test]
    fn decrease_from_overflow_to_low() {
        let mut q = TwoLevelBuckets::with_bits(4, 2);
        q.insert(0, 500);
        q.insert(1, 2);
        q.decrease_key(0, 3);
        assert_eq!(q.pop_min(), Some((1, 2)));
        assert_eq!(q.pop_min(), Some((0, 3)));
    }

    /// Differential fuzz against an ordered reference, with key jumps far
    /// beyond the span so the overflow/rebase machinery is exercised
    /// (the lib-level conformance suite keeps keys within 1000 of the
    /// cursor and never leaves the two in-structure levels).
    #[test]
    fn overflow_paths_match_reference() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    2u32..5, // narrow digit: span is tiny, overflow constant
                    proptest::collection::vec((0u8..2, 0u32..30, 0u32..100_000), 1..150),
                ),
                |(bits, script)| {
                    let mut q = TwoLevelBuckets::with_bits(30, bits);
                    let mut reference = std::collections::BTreeSet::new();
                    let mut floor = 0u64;
                    for (op, item, jump) in script {
                        match op {
                            0 if !q.contains(item) => {
                                let key = (floor + jump as u64).min(u32::MAX as u64) as u32;
                                q.insert(item, key);
                                reference.insert((key, item));
                            }
                            _ => {
                                match (q.pop_min(), reference.iter().next().copied()) {
                                    (None, None) => {}
                                    (Some((gi, gk)), Some((wk, _))) => {
                                        prop_assert_eq!(gk, wk, "key mismatch");
                                        prop_assert!(reference.remove(&(gk, gi)));
                                        floor = gk as u64;
                                    }
                                    other => panic!("emptiness mismatch {other:?}"),
                                }
                            }
                        }
                    }
                    while let Some((gi, gk)) = q.pop_min() {
                        let &(wk, _) = reference.iter().next().expect("reference empty early");
                        prop_assert_eq!(gk, wk);
                        prop_assert!(reference.remove(&(gk, gi)));
                    }
                    prop_assert!(reference.is_empty());
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn dense_dijkstra_like_stream() {
        let mut q = TwoLevelBuckets::with_bits(1000, 8);
        q.insert(0, 0);
        let mut last = 0;
        let mut popped = 0;
        while let Some((item, key)) = q.pop_min() {
            assert!(key >= last, "monotone pops");
            last = key;
            popped += 1;
            for d in [1u32, 255, 700] {
                let next = (item + d) % 1000;
                if next > item && !q.contains(next) {
                    q.insert(next, key + d);
                }
            }
        }
        assert!(popped > 10);
    }
}
