//! Indexed priority queues for label-setting shortest-path algorithms.
//!
//! Table I of the PHAST paper compares Dijkstra's algorithm under several
//! queue implementations; this crate provides them all behind one trait:
//!
//! * [`IndexedBinaryHeap`] — the textbook binary heap with decrease-key;
//! * [`KHeap`] — a k-ary heap (k-heaps are reference \[18\] of the paper;
//!   4-ary is the classic cache-friendly choice);
//! * [`DialQueue`] — Dial's single-level bucket queue \[20\], `O(m + nC)`;
//! * [`RadixHeap`] — a multi-level bucket structure in the smart-queue
//!   family \[3, 21\], `O(m + n log C)`;
//! * [`TwoLevelBuckets`] — the two-level bucket queue (the classic
//!   multi-level-bucket / smart-queue layout \[3, 21\]).
//!
//! All queues are *indexed*: items are dense `u32` IDs below a capacity
//! fixed at construction, which lets `decrease_key` find items in `O(1)` and
//! lets monotone queues exploit the monotonicity of Dijkstra's pops.

pub mod binary_heap;
pub mod dial;
pub mod kheap;
pub mod mlb;
pub mod radix;
pub mod traits;

pub use binary_heap::IndexedBinaryHeap;
pub use dial::DialQueue;
pub use kheap::{FourHeap, KHeap};
pub use mlb::TwoLevelBuckets;
pub use radix::RadixHeap;
pub use traits::DecreaseKeyQueue;

#[cfg(test)]
mod conformance {
    //! One shared conformance suite run against every implementation,
    //! including randomized differential tests against a reference queue.

    use crate::traits::DecreaseKeyQueue;
    use crate::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Reference implementation: an ordered set of `(key, item)` pairs plus
    /// a key map.
    struct Reference {
        set: BTreeSet<(u32, u32)>,
        key: Vec<Option<u32>>,
    }

    impl Reference {
        fn new(n: usize) -> Self {
            Self {
                set: BTreeSet::new(),
                key: vec![None; n],
            }
        }
        fn insert(&mut self, item: u32, key: u32) {
            assert!(self.key[item as usize].is_none());
            self.key[item as usize] = Some(key);
            self.set.insert((key, item));
        }
        fn decrease(&mut self, item: u32, key: u32) {
            let old = self.key[item as usize].expect("not queued");
            assert!(key <= old);
            self.set.remove(&(old, item));
            self.set.insert((key, item));
            self.key[item as usize] = Some(key);
        }
        /// Removes a specific item (used to mirror the queue's tie-break);
        /// returns its key.
        fn remove_specific(&mut self, item: u32) -> u32 {
            let key = self.key[item as usize].expect("queue popped unqueued item");
            assert!(self.set.remove(&(key, item)));
            self.key[item as usize] = None;
            key
        }
        fn min_key(&self) -> Option<u32> {
            self.set.iter().next().map(|&(k, _)| k)
        }
    }

    /// Drives `q` and the reference through the same monotone, Dijkstra-like
    /// operation sequence and checks popped keys agree (the popped *key*
    /// sequence is deterministic even where item tie-breaks are not).
    fn differential<Q: DecreaseKeyQueue>(mut q: Q, n: u32, script: &[(u8, u32, u32)]) {
        let mut r = Reference::new(n as usize);
        let mut floor = 0u32; // monotone lower bound for generated keys
        for &(op, item, key_raw) in script {
            let item = item % n;
            match op % 3 {
                0 => {
                    // insert if absent
                    if !q.contains(item) {
                        let key = floor.saturating_add(key_raw % 1000);
                        q.insert(item, key);
                        r.insert(item, key);
                    }
                }
                1 => {
                    // decrease if present
                    if q.contains(item) {
                        let old = r.key[item as usize].unwrap();
                        let key = floor + (key_raw % (old - floor + 1));
                        q.decrease_key(item, key);
                        r.decrease(item, key);
                    }
                }
                _ => {
                    let got = q.pop_min();
                    match (got, r.min_key()) {
                        (None, None) => {}
                        (Some((gi, gk)), Some(wk)) => {
                            assert_eq!(gk, wk, "popped key mismatch");
                            // Mirror the queue's tie-break so states match.
                            let rk = r.remove_specific(gi);
                            assert_eq!(rk, gk, "queue popped item with stale key");
                            floor = wk;
                        }
                        other => panic!("emptiness mismatch: {other:?}"),
                    }
                }
            }
            assert_eq!(q.len(), r.set.len());
            assert_eq!(q.is_empty(), r.set.is_empty());
        }
        // Drain and compare the tail.
        loop {
            match (q.pop_min(), r.min_key()) {
                (None, None) => break,
                (Some((gi, gk)), Some(wk)) => {
                    assert_eq!(gk, wk);
                    r.remove_specific(gi);
                }
                other => panic!("drain mismatch: {other:?}"),
            }
        }
    }

    macro_rules! conformance_suite {
        ($name:ident, $make:expr) => {
            mod $name {
                use super::*;

                #[test]
                fn basic_ordering() {
                    let mut q = $make(10);
                    q.insert(3, 30);
                    q.insert(1, 10);
                    q.insert(2, 20);
                    assert_eq!(q.pop_min(), Some((1, 10)));
                    assert_eq!(q.pop_min(), Some((2, 20)));
                    assert_eq!(q.pop_min(), Some((3, 30)));
                    assert_eq!(q.pop_min(), None);
                }

                #[test]
                fn decrease_key_reorders() {
                    let mut q = $make(10);
                    q.insert(0, 100);
                    q.insert(1, 50);
                    q.decrease_key(0, 10);
                    assert_eq!(q.pop_min(), Some((0, 10)));
                    assert_eq!(q.pop_min(), Some((1, 50)));
                }

                #[test]
                fn contains_tracks_membership() {
                    let mut q = $make(4);
                    assert!(!q.contains(2));
                    q.insert(2, 5);
                    assert!(q.contains(2));
                    q.pop_min();
                    assert!(!q.contains(2));
                }

                #[test]
                fn clear_resets() {
                    let mut q = $make(4);
                    q.insert(0, 1);
                    q.insert(1, 2);
                    q.clear();
                    assert!(q.is_empty());
                    assert!(!q.contains(0));
                    q.insert(0, 3);
                    assert_eq!(q.pop_min(), Some((0, 3)));
                }

                #[test]
                fn equal_keys_all_come_out() {
                    let mut q = $make(8);
                    for i in 0..8 {
                        q.insert(i, 7);
                    }
                    let mut seen: Vec<u32> = (0..8).map(|_| q.pop_min().unwrap().0).collect();
                    seen.sort_unstable();
                    assert_eq!(seen, (0..8).collect::<Vec<_>>());
                }

                #[test]
                fn reinsert_after_pop() {
                    let mut q = $make(2);
                    q.insert(0, 5);
                    assert_eq!(q.pop_min(), Some((0, 5)));
                    q.insert(0, 9);
                    assert_eq!(q.pop_min(), Some((0, 9)));
                }

                #[test]
                fn decrease_to_same_key_is_noop() {
                    let mut q = $make(2);
                    q.insert(0, 5);
                    q.decrease_key(0, 5);
                    assert_eq!(q.pop_min(), Some((0, 5)));
                }

                #[test]
                fn insert_or_decrease_both_paths() {
                    let mut q = $make(2);
                    assert!(q.insert_or_decrease(0, 9));
                    assert!(!q.insert_or_decrease(0, 4));
                    assert_eq!(q.pop_min(), Some((0, 4)));
                }

                proptest! {
                    #![proptest_config(ProptestConfig::with_cases(64))]
                    #[test]
                    fn matches_reference(
                        n in 1u32..40,
                        script in proptest::collection::vec(
                            (0u8..3, 0u32..40, 0u32..10_000), 0..200),
                    ) {
                        differential($make(n as usize), n, &script);
                    }
                }
            }
        };
    }

    conformance_suite!(binary, IndexedBinaryHeap::new);
    conformance_suite!(four_ary, FourHeap::new);
    conformance_suite!(eight_ary, KHeap::<8>::new);
    conformance_suite!(dial, |n| DialQueue::new(n, 2000));
    conformance_suite!(radix, RadixHeap::new);
    conformance_suite!(two_level, |n| TwoLevelBuckets::with_bits(n, 8));
    conformance_suite!(two_level_narrow, |n| TwoLevelBuckets::with_bits(n, 3));
}
