//! The indexed binary heap.

use crate::traits::DecreaseKeyQueue;

const ABSENT: u32 = u32::MAX;

/// A binary min-heap with a position map for `O(log n)` decrease-key.
///
/// This is the queue the paper's CH searches use ("CH queries use a binary
/// heap as priority queue; we tested other data structures, but their impact
/// on performance is negligible because the queue size is small").
#[derive(Clone, Debug)]
pub struct IndexedBinaryHeap {
    /// Heap order: `(key, item)` pairs.
    heap: Vec<(u32, u32)>,
    /// `pos[item]` is the index of `item` in `heap`, or `ABSENT`.
    pos: Vec<u32>,
}

impl IndexedBinaryHeap {
    /// Peeks at the minimum without removing it.
    pub fn peek_min(&self) -> Option<(u32, u32)> {
        self.heap.first().map(|&(k, i)| (i, k))
    }

    /// Current key of a queued item.
    pub fn key_of(&self, item: u32) -> Option<u32> {
        let p = self.pos[item as usize];
        (p != ABSENT).then(|| self.heap[p as usize].0)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= entry.0 {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i].1 as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let len = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap[right].0 < self.heap[left].0 {
                right
            } else {
                left
            };
            if self.heap[child].0 >= entry.0 {
                break;
            }
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i].1 as usize] = i as u32;
            i = child;
        }
        self.heap[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }
}

impl DecreaseKeyQueue for IndexedBinaryHeap {
    fn new(n: usize) -> Self {
        Self {
            heap: Vec::new(),
            pos: vec![ABSENT; n],
        }
    }

    fn insert(&mut self, item: u32, key: u32) {
        debug_assert_eq!(self.pos[item as usize], ABSENT, "item already queued");
        self.heap.push((key, item));
        self.sift_up(self.heap.len() - 1);
    }

    fn decrease_key(&mut self, item: u32, key: u32) {
        let p = self.pos[item as usize];
        debug_assert_ne!(p, ABSENT, "item not queued");
        debug_assert!(key <= self.heap[p as usize].0, "key increase");
        self.heap[p as usize].0 = key;
        self.sift_up(p as usize);
    }

    fn pop_min(&mut self) -> Option<(u32, u32)> {
        let (key, item) = *self.heap.first()?;
        self.pos[item as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some((item, key))
    }

    fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != ABSENT
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        for &(_, item) in &self.heap {
            self.pos[item as usize] = ABSENT;
        }
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_property_maintained_under_mixed_ops() {
        let mut q = IndexedBinaryHeap::new(100);
        for i in 0..100u32 {
            q.insert(i, 1000 - i * 7 % 91);
        }
        for i in (0..100u32).step_by(3) {
            q.decrease_key(i, 1);
        }
        let mut last = 0;
        while let Some((_, k)) = q.pop_min() {
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = IndexedBinaryHeap::new(4);
        q.insert(2, 9);
        assert_eq!(q.peek_min(), Some((2, 9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn key_of_reports_current_key() {
        let mut q = IndexedBinaryHeap::new(4);
        q.insert(1, 8);
        assert_eq!(q.key_of(1), Some(8));
        q.decrease_key(1, 3);
        assert_eq!(q.key_of(1), Some(3));
        assert_eq!(q.key_of(0), None);
    }
}
