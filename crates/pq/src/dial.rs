//! Dial's bucket queue.
//!
//! Dial's implementation \[20\] keeps an array of `C + 1` buckets, where `C`
//! bounds the difference between any queued key and the last popped minimum
//! (for Dijkstra, the maximum arc weight). Keys are mapped to buckets
//! `key % (C + 1)`; the cursor only ever moves forward, giving `O(m + nC)`
//! total time. The paper found Dial's queue "comparable on a single core
//! and scaling better on multiple cores" than the smart queue, and uses it
//! for all reported Dijkstra numbers.

use crate::traits::DecreaseKeyQueue;

const ABSENT: u32 = u32::MAX;

/// Dial's single-level bucket queue (a monotone queue).
#[derive(Clone, Debug)]
pub struct DialQueue {
    /// `buckets[key % num_buckets]` holds the items queued with that key.
    buckets: Vec<Vec<u32>>,
    /// Per-item `(key, index-within-bucket)`; `pos == ABSENT` means absent.
    key: Vec<u32>,
    pos: Vec<u32>,
    /// Key of the last popped minimum (cursor position).
    cursor: u32,
    len: usize,
}

impl DialQueue {
    /// Creates a queue for items `0..n` whose keys never exceed the last
    /// popped minimum by more than `max_span`.
    pub fn new(n: usize, max_span: u32) -> Self {
        Self {
            buckets: vec![Vec::new(); max_span as usize + 1],
            key: vec![0; n],
            pos: vec![ABSENT; n],
            cursor: 0,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u32) -> usize {
        (key as usize) % self.buckets.len()
    }

    fn push_to_bucket(&mut self, item: u32, key: u32) {
        debug_assert!(
            key.wrapping_sub(self.cursor) < self.buckets.len() as u32,
            "key {key} out of monotone span (cursor {}, span {})",
            self.cursor,
            self.buckets.len()
        );
        let b = self.bucket_of(key);
        self.key[item as usize] = key;
        self.pos[item as usize] = self.buckets[b].len() as u32;
        self.buckets[b].push(item);
    }

    fn remove_from_bucket(&mut self, item: u32) {
        let key = self.key[item as usize];
        let b = self.bucket_of(key);
        let p = self.pos[item as usize] as usize;
        let bucket = &mut self.buckets[b];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        self.pos[item as usize] = ABSENT;
    }
}

impl DecreaseKeyQueue for DialQueue {
    /// Default construction assumes a key span of 2^16; use
    /// [`DialQueue::new`] with the real maximum arc weight for tight memory.
    fn new(n: usize) -> Self {
        DialQueue::new(n, 1 << 16)
    }

    fn insert(&mut self, item: u32, key: u32) {
        debug_assert_eq!(self.pos[item as usize], ABSENT, "item already queued");
        self.push_to_bucket(item, key);
        self.len += 1;
    }

    fn decrease_key(&mut self, item: u32, key: u32) {
        debug_assert_ne!(self.pos[item as usize], ABSENT, "item not queued");
        debug_assert!(key <= self.key[item as usize], "key increase");
        if key == self.key[item as usize] {
            return;
        }
        self.remove_from_bucket(item);
        self.push_to_bucket(item, key);
    }

    fn pop_min(&mut self) -> Option<(u32, u32)> {
        if self.len == 0 {
            return None;
        }
        // Advance the cursor to the next non-empty bucket. Termination:
        // len > 0 guarantees some bucket within the span is non-empty.
        loop {
            let b = self.bucket_of(self.cursor);
            if let Some(&item) = self.buckets[b].last() {
                // All items in a bucket share the same key by the span
                // invariant, so popping from the back is fine.
                self.buckets[b].pop();
                self.pos[item as usize] = ABSENT;
                self.len -= 1;
                return Some((item, self.key[item as usize]));
            }
            self.cursor = self.cursor.wrapping_add(1);
        }
    }

    fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != ABSENT
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        if self.len > 0 {
            for b in &mut self.buckets {
                for &item in b.iter() {
                    self.pos[item as usize] = ABSENT;
                }
                b.clear();
            }
        }
        self.cursor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_around_the_bucket_array() {
        let mut q = DialQueue::new(4, 10);
        q.insert(0, 8);
        assert_eq!(q.pop_min(), Some((0, 8)));
        // Next key wraps modulo 11 buckets.
        q.insert(1, 15);
        q.insert(2, 12);
        assert_eq!(q.pop_min(), Some((2, 12)));
        assert_eq!(q.pop_min(), Some((1, 15)));
    }

    #[test]
    fn monotone_inserts_across_emptiness() {
        let mut q = DialQueue::new(3, 5);
        q.insert(0, 3);
        assert_eq!(q.pop_min(), Some((0, 3)));
        // Queue went empty; the next keys must stay within span of the last
        // popped minimum (3 + 5), which 7 satisfies.
        q.insert(1, 7);
        q.insert(2, 4);
        assert_eq!(q.pop_min(), Some((2, 4)));
        assert_eq!(q.pop_min(), Some((1, 7)));
    }

    #[test]
    fn clear_allows_cursor_restart() {
        let mut q = DialQueue::new(2, 5);
        q.insert(0, 3);
        q.pop_min();
        q.clear();
        // After clear the cursor returns to 0; keys restart small.
        q.insert(1, 2);
        assert_eq!(q.pop_min(), Some((1, 2)));
    }

    #[test]
    fn decrease_key_moves_buckets() {
        let mut q = DialQueue::new(3, 100);
        q.insert(0, 50);
        q.insert(1, 60);
        q.decrease_key(1, 10);
        assert_eq!(q.pop_min(), Some((1, 10)));
        assert_eq!(q.pop_min(), Some((0, 50)));
    }

    #[test]
    fn many_items_same_bucket() {
        let mut q = DialQueue::new(100, 10);
        for i in 0..100 {
            q.insert(i, 7);
        }
        let mut n = 0;
        while let Some((_, k)) = q.pop_min() {
            assert_eq!(k, 7);
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
