//! A radix heap: the multi-level bucket family.
//!
//! Multi-level buckets \[21\] and the smart queue \[3\] achieve
//! `O(m + n log C)` for Dijkstra by bucketing keys by the position of their
//! most significant bit relative to the last extracted minimum. The radix
//! heap is the classic member of this family: bucket `i >= 1` holds items
//! whose key differs from the last minimum in bit `i - 1` as the highest
//! differing bit; bucket `0` holds items equal to the last minimum. A pop
//! that finds bucket `0` empty locates the first non-empty bucket, takes its
//! minimum as the new reference, and redistributes the bucket's items into
//! strictly lower buckets — each item can only ever move down, giving the
//! logarithmic amortized bound.
//!
//! Like [`crate::DialQueue`], this is a *monotone* queue: keys must be at
//! least the key of the last `pop_min`.

use crate::traits::DecreaseKeyQueue;

const ABSENT: u32 = u32::MAX;
/// Bucket count: one "equal" bucket plus one per possible highest bit.
const BUCKETS: usize = 33;

/// A 33-bucket radix heap over `u32` keys with decrease-key support.
#[derive(Clone, Debug)]
pub struct RadixHeap {
    buckets: [Vec<u32>; BUCKETS],
    /// Minimum key present in each bucket (tracked to avoid rescans).
    bucket_min: [u32; BUCKETS],
    key: Vec<u32>,
    /// Bucket index per item, `ABSENT` when not queued.
    bucket_of_item: Vec<u32>,
    pos: Vec<u32>,
    /// Key of the last popped minimum; all queued keys are `>= last`.
    last: u32,
    len: usize,
}

#[inline]
fn bucket_index(last: u32, key: u32) -> usize {
    debug_assert!(key >= last, "monotonicity violated: key {key} < last {last}");
    if key == last {
        0
    } else {
        32 - (key ^ last).leading_zeros() as usize
    }
}

impl RadixHeap {
    fn push_to_bucket(&mut self, item: u32, key: u32) {
        let b = bucket_index(self.last, key);
        self.key[item as usize] = key;
        self.bucket_of_item[item as usize] = b as u32;
        self.pos[item as usize] = self.buckets[b].len() as u32;
        self.buckets[b].push(item);
        self.bucket_min[b] = self.bucket_min[b].min(key);
    }

    fn remove_from_bucket(&mut self, item: u32) {
        let b = self.bucket_of_item[item as usize] as usize;
        let p = self.pos[item as usize] as usize;
        let bucket = &mut self.buckets[b];
        bucket.swap_remove(p);
        if let Some(&moved) = bucket.get(p) {
            self.pos[moved as usize] = p as u32;
        }
        self.pos[item as usize] = ABSENT;
        self.bucket_of_item[item as usize] = ABSENT;
        // bucket_min may now be stale (too small); it is refreshed on the
        // next redistribution, and staleness only costs an extra scan.
    }
}

impl DecreaseKeyQueue for RadixHeap {
    fn new(n: usize) -> Self {
        Self {
            buckets: std::array::from_fn(|_| Vec::new()),
            bucket_min: [u32::MAX; BUCKETS],
            key: vec![0; n],
            bucket_of_item: vec![ABSENT; n],
            pos: vec![ABSENT; n],
            last: 0,
            len: 0,
        }
    }

    fn insert(&mut self, item: u32, key: u32) {
        debug_assert_eq!(self.pos[item as usize], ABSENT, "item already queued");
        self.push_to_bucket(item, key);
        self.len += 1;
    }

    fn decrease_key(&mut self, item: u32, key: u32) {
        debug_assert_ne!(self.pos[item as usize], ABSENT, "item not queued");
        debug_assert!(key <= self.key[item as usize], "key increase");
        if key == self.key[item as usize] {
            return;
        }
        self.remove_from_bucket(item);
        self.push_to_bucket(item, key);
    }

    fn pop_min(&mut self) -> Option<(u32, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Find the first non-empty bucket, adopt its minimum as the new
            // reference point, and redistribute.
            let b = (1..BUCKETS)
                .find(|&b| !self.buckets[b].is_empty())
                .expect("len > 0 implies a non-empty bucket");
            let new_last = self.buckets[b]
                .iter()
                .map(|&it| self.key[it as usize])
                .min()
                .expect("bucket non-empty");
            self.last = new_last;
            let items = std::mem::take(&mut self.buckets[b]);
            self.bucket_min[b] = u32::MAX;
            for item in items {
                // Every key in bucket b differs from new_last strictly below
                // bit b-1 (they agree with the old `last` above it and
                // new_last is their min), so each lands in a lower bucket.
                let key = self.key[item as usize];
                let nb = bucket_index(self.last, key);
                debug_assert!(nb < b, "radix redistribution must move items down");
                self.bucket_of_item[item as usize] = nb as u32;
                self.pos[item as usize] = self.buckets[nb].len() as u32;
                self.buckets[nb].push(item);
                self.bucket_min[nb] = self.bucket_min[nb].min(key);
            }
        }
        let item = self.buckets[0].pop().expect("bucket 0 filled above");
        self.pos[item as usize] = ABSENT;
        self.bucket_of_item[item as usize] = ABSENT;
        self.len -= 1;
        Some((item, self.key[item as usize]))
    }

    fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != ABSENT
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        if self.len > 0 {
            for b in &mut self.buckets {
                for &item in b.iter() {
                    self.pos[item as usize] = ABSENT;
                    self.bucket_of_item[item as usize] = ABSENT;
                }
                b.clear();
            }
        }
        self.bucket_min = [u32::MAX; BUCKETS];
        self.last = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_examples() {
        assert_eq!(bucket_index(0, 0), 0);
        assert_eq!(bucket_index(0, 1), 1);
        assert_eq!(bucket_index(0, 2), 2);
        assert_eq!(bucket_index(0, 3), 2);
        assert_eq!(bucket_index(5, 5), 0);
        assert_eq!(bucket_index(0, u32::MAX / 2), 31);
    }

    #[test]
    fn redistribution_path() {
        let mut q = RadixHeap::new(8);
        // All land in high buckets; the first pop triggers redistribution.
        q.insert(0, 100);
        q.insert(1, 101);
        q.insert(2, 130);
        assert_eq!(q.pop_min(), Some((0, 100)));
        assert_eq!(q.pop_min(), Some((1, 101)));
        assert_eq!(q.pop_min(), Some((2, 130)));
    }

    #[test]
    fn large_keys() {
        let mut q = RadixHeap::new(3);
        q.insert(0, u32::MAX / 2);
        q.insert(1, u32::MAX / 2 - 1);
        q.insert(2, 0);
        assert_eq!(q.pop_min().unwrap().1, 0);
        assert_eq!(q.pop_min().unwrap().1, u32::MAX / 2 - 1);
        assert_eq!(q.pop_min().unwrap().1, u32::MAX / 2);
    }

    #[test]
    fn dijkstra_like_monotone_sequence() {
        let mut q = RadixHeap::new(100);
        q.insert(0, 0);
        let mut popped = 0;
        let mut last = 0;
        while let Some((item, key)) = q.pop_min() {
            assert!(key >= last);
            last = key;
            popped += 1;
            // Relax two "arcs" with bounded weights.
            for d in [3u32, 17] {
                let next = (item + d) % 100;
                if !q.contains(next) && next > item {
                    q.insert(next, key + d);
                }
            }
        }
        assert!(popped > 1);
    }
}
