//! Byte-level encoding and decoding of `.phast` artifacts.
//!
//! The layout (see DESIGN.md §10):
//!
//! ```text
//! magic [8] | version u32 | kind u32 | section* | file_crc u32
//! section = tag u32 | len u64 | payload [len] | payload_crc u32
//! ```
//!
//! All integers are little-endian. The trailing `file_crc` covers every
//! byte before it, so any corruption — header, section framing, payload,
//! even a swapped pair of intact sections — is detected. Per-section CRCs
//! localize the damage for diagnostics.
//!
//! Since v3 the writer interleaves zero-filled `PAD` sections (tag 0x00,
//! normal framing) so that every data section's *payload* starts on a
//! 64-byte boundary. Nothing else about the frame changed: a v2 reader's
//! walk would still parse the framing (it rejects the unknown tag, as the
//! version bump demands), and the pads are what let the mmap loader
//! borrow the big arrays straight out of the file — a payload that is
//! cache-line-aligned in the file is cache-line-aligned in a page-aligned
//! mapping.
//!
//! Decoding never trusts a length field: every read is bounds-checked
//! against the remaining buffer *before* any slicing or allocation, so a
//! hostile length cannot cause a panic or an oversized allocation. After
//! the bytes parse, the artifact is structurally re-validated
//! ([`Phast::from_parts`] / [`Hierarchy::validate`]) so a file whose
//! checksums happen to pass but whose arrays are inconsistent is still
//! rejected instead of producing a silently-wrong tree.

use crate::crc::{crc32, Crc32};
use crate::{ArtifactKind, StoreError};
use phast_ch::hierarchy::Hierarchy;
use phast_core::{Direction, Phast, PhastParts};
use phast_graph::csr::{Csr, ReverseArc};
use phast_graph::segment::{Segment, SegmentOwner};
use phast_graph::{Arc, MAX_WEIGHT};
use phast_metrics::MetricWeights;
use std::collections::BTreeMap;
use std::sync::Arc as SharedArc;

/// File magic: identifies a `.phast` artifact regardless of kind.
pub const MAGIC: [u8; 8] = *b"PHASTBIN";

/// Current format version. Bump on any layout change; readers reject
/// every version they do not explicitly understand (no silent
/// best-effort parsing).
///
/// History: v1 = instance/hierarchy sections; v2 = adds repeatable
/// `METRIC` sections (0x40) so one topology artifact carries N versioned
/// metrics; v3 = adds zero-filled `PAD` sections (0x00) so every data
/// payload starts 64-byte-aligned, enabling zero-copy mmap loads.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest version this build still reads. v2 files (unpadded) load fine —
/// their payloads are simply not alignment-guaranteed, so the mmap loader
/// falls back to heap copies for them.
pub const OLDEST_READABLE_VERSION: u32 = 2;

/// Alignment guarantee (bytes) for every data-section payload in a v3
/// file. One x86 cache line; also ≥ the alignment of every array element
/// type we store.
pub const PAYLOAD_ALIGN: usize = 64;

/// Header length: magic + version + kind.
const HEADER_LEN: usize = 8 + 4 + 4;
/// Per-section framing overhead: tag + len + payload CRC.
const SECTION_OVERHEAD: usize = 4 + 8 + 4;
/// Smallest possible file: header + trailing file CRC.
const MIN_FILE_LEN: usize = HEADER_LEN + 4;

// Padding (v3+): zero payload bytes, repeatable, carries no data. Emitted
// before a data section whenever the data payload would otherwise start
// off a PAYLOAD_ALIGN boundary.
const SEC_PAD: u32 = 0x00;

// Instance sections.
const SEC_META: u32 = 0x01;
const SEC_PERM: u32 = 0x02;
const SEC_LEVELS: u32 = 0x03;
const SEC_UP_FIRST: u32 = 0x04;
const SEC_UP_ARCS: u32 = 0x05;
const SEC_UP_MIDDLE: u32 = 0x06;
const SEC_DOWN_FIRST: u32 = 0x07;
const SEC_DOWN_ARCS: u32 = 0x08;
const SEC_DOWN_MIDDLE: u32 = 0x09;
const SEC_ORIG_FIRST: u32 = 0x0A;
const SEC_ORIG_ARCS: u32 = 0x0B;

// Hierarchy sections (also used for the bundled hierarchy of an instance).
const SEC_H_META: u32 = 0x20;
const SEC_H_RANK: u32 = 0x21;
const SEC_H_LEVEL: u32 = 0x22;
const SEC_H_FWD_FIRST: u32 = 0x23;
const SEC_H_FWD_ARCS: u32 = 0x24;
const SEC_H_FWD_MIDDLE: u32 = 0x25;
const SEC_H_BWD_FIRST: u32 = 0x26;
const SEC_H_BWD_ARCS: u32 = 0x27;
const SEC_H_BWD_MIDDLE: u32 = 0x28;

// Metric sections (v2): unlike every other tag, METRIC may repeat — one
// section per stored `(name, version)` weight generation.
const SEC_METRIC: u32 = 0x40;

const HIERARCHY_SECTIONS: [u32; 9] = [
    SEC_H_META,
    SEC_H_RANK,
    SEC_H_LEVEL,
    SEC_H_FWD_FIRST,
    SEC_H_FWD_ARCS,
    SEC_H_FWD_MIDDLE,
    SEC_H_BWD_FIRST,
    SEC_H_BWD_ARCS,
    SEC_H_BWD_MIDDLE,
];

/// True if `bytes` begin with the `.phast` magic (format sniffing for
/// CLIs that also accept JSON artifacts).
pub fn sniff(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------- encoding

struct Encoder {
    buf: Vec<u8>,
    /// True when writing the current (padded) version; false for the
    /// legacy v2 layout kept around so tests can exercise the reader's
    /// unaligned fallback.
    pad: bool,
}

impl Encoder {
    fn new(kind: ArtifactKind) -> Self {
        Self::with_version(kind, FORMAT_VERSION)
    }

    fn with_version(kind: ArtifactKind, version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&(kind as u32).to_le_bytes());
        Encoder {
            buf,
            pad: version >= 3,
        }
    }

    fn section(&mut self, tag: u32, payload: &[u8]) {
        if self.pad && !(self.buf.len() + 12).is_multiple_of(PAYLOAD_ALIGN) {
            // Insert a pad section sized so the *next* payload (after the
            // pad's own 16 bytes of framing and this section's 12-byte
            // tag+len prefix) starts on a PAYLOAD_ALIGN boundary.
            let pad_len = (PAYLOAD_ALIGN
                - (self.buf.len() + 12 + SECTION_OVERHEAD) % PAYLOAD_ALIGN)
                % PAYLOAD_ALIGN;
            const ZEROS: [u8; PAYLOAD_ALIGN] = [0; PAYLOAD_ALIGN];
            self.raw_section(SEC_PAD, &ZEROS[..pad_len]);
        }
        self.raw_section(tag, payload);
    }

    fn raw_section(&mut self, tag: u32, payload: &[u8]) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
    }

    fn u32s_section(&mut self, tag: u32, vals: &[u32]) {
        let mut payload = Vec::with_capacity(vals.len() * 4);
        for &v in vals {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.section(tag, &payload);
    }

    fn finish(mut self) -> Vec<u8> {
        let mut crc = Crc32::new();
        crc.update(&self.buf);
        self.buf.extend_from_slice(&crc.finish().to_le_bytes());
        self.buf
    }
}

fn arcs_payload(arcs: &[Arc]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(arcs.len() * 8);
    for a in arcs {
        payload.extend_from_slice(&a.head.to_le_bytes());
        payload.extend_from_slice(&a.weight.to_le_bytes());
    }
    payload
}

fn rev_arcs_payload(arcs: &[ReverseArc]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(arcs.len() * 8);
    for a in arcs {
        payload.extend_from_slice(&a.tail.to_le_bytes());
        payload.extend_from_slice(&a.weight.to_le_bytes());
    }
    payload
}

fn encode_hierarchy_sections(enc: &mut Encoder, h: &Hierarchy) {
    let mut meta = Vec::with_capacity(8);
    meta.extend_from_slice(&(h.num_shortcuts as u64).to_le_bytes());
    enc.section(SEC_H_META, &meta);
    enc.u32s_section(SEC_H_RANK, &h.rank);
    enc.u32s_section(SEC_H_LEVEL, &h.level);
    enc.u32s_section(SEC_H_FWD_FIRST, h.forward_up.first());
    enc.section(SEC_H_FWD_ARCS, &arcs_payload(h.forward_up.arcs()));
    enc.u32s_section(SEC_H_FWD_MIDDLE, &h.forward_middle);
    enc.u32s_section(SEC_H_BWD_FIRST, h.backward_up.first());
    enc.section(SEC_H_BWD_ARCS, &arcs_payload(h.backward_up.arcs()));
    enc.u32s_section(SEC_H_BWD_MIDDLE, &h.backward_middle);
}

/// Serializes one metric as a METRIC section payload:
/// `name_len u32 | name bytes | version u64 | count u64 | weights u32*`.
fn metric_payload(m: &MetricWeights) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + m.name.len() + 16 + m.weights.len() * 4);
    payload.extend_from_slice(&(m.name.len() as u32).to_le_bytes());
    payload.extend_from_slice(m.name.as_bytes());
    payload.extend_from_slice(&m.version.to_le_bytes());
    payload.extend_from_slice(&(m.weights.len() as u64).to_le_bytes());
    for &w in &m.weights {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload
}

/// Serializes a preprocessed instance — optionally bundling the hierarchy
/// it was built from, so a later `serve` run can skip recontraction *and*
/// still build p2p engines.
pub fn encode_instance(p: &Phast, h: Option<&Hierarchy>) -> Vec<u8> {
    encode_instance_with_metrics(p, h, &[])
}

/// Serializes a preprocessed instance plus any number of versioned
/// metrics, each in its own CRC-protected METRIC section.
pub fn encode_instance_with_metrics(
    p: &Phast,
    h: Option<&Hierarchy>,
    metrics: &[MetricWeights],
) -> Vec<u8> {
    encode_instance_versioned(p, h, metrics, FORMAT_VERSION)
}

/// Serializes an instance in the legacy v2 (unpadded) layout.
///
/// Production writers always emit the current version; this exists so
/// tests can prove the readers — including the mmap loader's
/// alignment-fallback path — still accept files written before the
/// aligned layout landed.
pub fn encode_instance_compat_v2(
    p: &Phast,
    h: Option<&Hierarchy>,
    metrics: &[MetricWeights],
) -> Vec<u8> {
    encode_instance_versioned(p, h, metrics, OLDEST_READABLE_VERSION)
}

fn encode_instance_versioned(
    p: &Phast,
    h: Option<&Hierarchy>,
    metrics: &[MetricWeights],
    version: u32,
) -> Vec<u8> {
    let mut enc = Encoder::with_version(ArtifactKind::Instance, version);
    let mut meta = Vec::with_capacity(12);
    let dir = match p.direction() {
        Direction::Forward => 0u32,
        Direction::Reverse => 1u32,
    };
    meta.extend_from_slice(&dir.to_le_bytes());
    meta.extend_from_slice(&(p.num_shortcuts() as u64).to_le_bytes());
    enc.section(SEC_META, &meta);
    enc.u32s_section(SEC_PERM, p.permutation().as_slice());
    enc.u32s_section(SEC_LEVELS, p.levels());
    enc.u32s_section(SEC_UP_FIRST, p.up().first());
    enc.section(SEC_UP_ARCS, &arcs_payload(p.up().arcs()));
    enc.u32s_section(SEC_UP_MIDDLE, p.up_middles());
    enc.u32s_section(SEC_DOWN_FIRST, p.down().first());
    enc.section(SEC_DOWN_ARCS, &rev_arcs_payload(p.down().arcs()));
    enc.u32s_section(SEC_DOWN_MIDDLE, p.down_middles());
    enc.u32s_section(SEC_ORIG_FIRST, p.orig_incoming().first());
    enc.section(SEC_ORIG_ARCS, &rev_arcs_payload(p.orig_incoming().arcs()));
    if let Some(h) = h {
        encode_hierarchy_sections(&mut enc, h);
    }
    for m in metrics {
        enc.section(SEC_METRIC, &metric_payload(m));
    }
    enc.finish()
}

/// Serializes a standalone contraction hierarchy.
pub fn encode_hierarchy(h: &Hierarchy) -> Vec<u8> {
    let mut enc = Encoder::new(ArtifactKind::Hierarchy);
    encode_hierarchy_sections(&mut enc, h);
    enc.finish()
}

// ---------------------------------------------------------------- decoding

/// Parsed section payloads: unique sections keyed by tag, plus the
/// repeatable METRIC sections in file order.
struct Sections<'a> {
    by_tag: BTreeMap<u32, &'a [u8]>,
    metrics: Vec<&'a [u8]>,
    /// Header version of the parsed file (within the readable range).
    /// Only v3+ files *guarantee* payload alignment, so only they are
    /// eligible for zero-copy borrowing.
    version: u32,
}

/// Parses the header and section framing of `bytes`, verifying magic,
/// version, kind, per-section CRCs and the whole-file CRC. Returns the
/// section payload slices keyed by tag.
fn parse_sections(bytes: &[u8], expected: ArtifactKind) -> Result<Sections<'_>, StoreError> {
    if bytes.len() < MIN_FILE_LEN {
        return Err(StoreError::Truncated { offset: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::NotAStore);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let kind_code = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let kind = ArtifactKind::from_code(kind_code)
        .ok_or(StoreError::UnknownKind(kind_code))?;
    if kind != expected {
        return Err(StoreError::WrongKind {
            expected,
            found: kind,
        });
    }

    let body_end = bytes.len() - 4;
    let mut sections = Sections {
        by_tag: BTreeMap::new(),
        metrics: Vec::new(),
        version,
    };
    let mut pos = HEADER_LEN;
    while pos < body_end {
        if body_end - pos < SECTION_OVERHEAD {
            return Err(StoreError::Truncated { offset: pos });
        }
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        // Unknown tags are rejected rather than skipped: the version-bump
        // policy (DESIGN.md §10) says any new section implies a new format
        // version, so an unrecognized tag — including a PAD in a pre-v3
        // file — is corruption. METRIC sections only make sense next to
        // an instance.
        let known = matches!(
            tag,
            SEC_META..=SEC_ORIG_ARCS | SEC_H_META..=SEC_H_BWD_MIDDLE | SEC_METRIC
        ) || (tag == SEC_PAD && version >= 3);
        let instance_only = matches!(tag, SEC_META..=SEC_ORIG_ARCS | SEC_METRIC);
        let allowed = known && (expected == ArtifactKind::Instance || !instance_only);
        if !allowed {
            return Err(StoreError::Corrupt(format!("unknown section 0x{tag:02X}")));
        }
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + 12;
        // Bounds check *before* converting to usize arithmetic: a hostile
        // 64-bit length must not overflow or slice out of range.
        let avail = (body_end - payload_start).saturating_sub(4);
        if len > avail as u64 {
            return Err(StoreError::Truncated { offset: pos });
        }
        let len = len as usize;
        let payload = &bytes[payload_start..payload_start + len];
        let stored_crc = u32::from_le_bytes(
            bytes[payload_start + len..payload_start + len + 4]
                .try_into()
                .unwrap(),
        );
        if crc32(payload) != stored_crc {
            return Err(StoreError::SectionChecksum { tag });
        }
        if tag == SEC_PAD {
            // Padding carries no data, repeats freely, and must be all
            // zeros: non-zero bytes mean damage (or smuggled data) that
            // the CRCs happened to bless.
            if payload.iter().any(|&b| b != 0) {
                return Err(StoreError::Corrupt(
                    "padding section holds non-zero bytes".into(),
                ));
            }
        } else if tag == SEC_METRIC {
            // The other deliberately repeatable tag: one section per metric.
            sections.metrics.push(payload);
        } else if sections.by_tag.insert(tag, payload).is_some() {
            return Err(StoreError::Corrupt(format!("duplicate section 0x{tag:02X}")));
        }
        pos = payload_start + len + 4;
    }

    let stored_file_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if crc32(&bytes[..body_end]) != stored_file_crc {
        return Err(StoreError::FileChecksum);
    }
    Ok(sections)
}

fn require<'a>(
    sections: &BTreeMap<u32, &'a [u8]>,
    tag: u32,
) -> Result<&'a [u8], StoreError> {
    sections
        .get(&tag)
        .copied()
        .ok_or_else(|| StoreError::Corrupt(format!("missing section 0x{tag:02X}")))
}

/// Rejects a payload whose length is not a multiple of the element size.
/// Factored out so the heap and zero-copy decode paths emit *identical*
/// error strings (the fault-injection parity suite depends on that).
fn check_multiple(payload: &[u8], what: &str, unit: usize) -> Result<(), StoreError> {
    if !payload.len().is_multiple_of(unit) {
        return Err(StoreError::Corrupt(format!(
            "{what} section length {} is not a multiple of {unit}",
            payload.len()
        )));
    }
    Ok(())
}

/// Borrows `payload` out of the mapping as a `[T]` when possible
/// (an owner is supplied, the target is little-endian, and the payload
/// happens to be aligned for `T`); otherwise falls back to `heap`.
///
/// # Safety
///
/// `T` must be a `#[repr(C)]` composition of `u32`s (or `u32` itself) so
/// that its in-memory layout on a little-endian target equals the on-disk
/// layout, and `payload` must live inside memory kept alive by `owner`.
unsafe fn segment_from_payload<T: 'static>(
    payload: &[u8],
    owner: Option<&SegmentOwner>,
    heap: impl FnOnce() -> Vec<T>,
) -> Segment<T> {
    if let Some(owner) = owner {
        if cfg!(target_endian = "little")
            && (payload.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>())
        {
            // SAFETY: alignment just checked; length is a multiple of
            // size_of::<T> (callers validate via check_multiple); layout
            // equivalence and lifetime are the caller's contract above.
            return unsafe {
                Segment::from_mapped(
                    payload.as_ptr() as *const T,
                    payload.len() / std::mem::size_of::<T>(),
                    SharedArc::clone(owner),
                )
            };
        }
    }
    heap().into()
}

/// Decodes a u32 array section as a [`Segment`], zero-copy when aligned.
fn decode_u32_segment(
    payload: &[u8],
    what: &str,
    owner: Option<&SegmentOwner>,
) -> Result<Segment<u32>, StoreError> {
    check_multiple(payload, what, 4)?;
    // SAFETY: u32 is layout-identical to its LE encoding on LE targets;
    // payload length validated; owner contract forwarded from our caller.
    Ok(unsafe {
        segment_from_payload(payload, owner, || {
            payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        })
    })
}

/// Decodes a forward-arc section as a [`Segment`], zero-copy when aligned.
fn decode_arc_segment(
    payload: &[u8],
    what: &str,
    owner: Option<&SegmentOwner>,
) -> Result<Segment<Arc>, StoreError> {
    check_multiple(payload, what, 8)?;
    // SAFETY: Arc is #[repr(C)] { head: u32, weight: u32 }, matching the
    // on-disk `head_le | weight_le` layout on LE targets.
    Ok(unsafe {
        segment_from_payload(payload, owner, || {
            payload
                .chunks_exact(8)
                .map(|c| {
                    Arc::new(
                        u32::from_le_bytes(c[..4].try_into().unwrap()),
                        u32::from_le_bytes(c[4..].try_into().unwrap()),
                    )
                })
                .collect()
        })
    })
}

/// Decodes a reverse-arc section as a [`Segment`], zero-copy when aligned.
fn decode_rev_arc_segment(
    payload: &[u8],
    what: &str,
    owner: Option<&SegmentOwner>,
) -> Result<Segment<ReverseArc>, StoreError> {
    check_multiple(payload, what, 8)?;
    // SAFETY: ReverseArc is #[repr(C)] { tail: u32, weight: u32 },
    // matching the on-disk `tail_le | weight_le` layout on LE targets.
    Ok(unsafe {
        segment_from_payload(payload, owner, || {
            payload
                .chunks_exact(8)
                .map(|c| {
                    ReverseArc::new(
                        u32::from_le_bytes(c[..4].try_into().unwrap()),
                        u32::from_le_bytes(c[4..].try_into().unwrap()),
                    )
                })
                .collect()
        })
    })
}

fn decode_u32s(payload: &[u8], what: &str) -> Result<Vec<u32>, StoreError> {
    check_multiple(payload, what, 4)?;
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn decode_arcs(payload: &[u8], what: &str) -> Result<Vec<Arc>, StoreError> {
    check_multiple(payload, what, 8)?;
    Ok(payload
        .chunks_exact(8)
        .map(|c| {
            Arc::new(
                u32::from_le_bytes(c[..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..].try_into().unwrap()),
            )
        })
        .collect())
}

fn corrupt(e: String) -> StoreError {
    StoreError::Corrupt(e)
}

/// Decodes one METRIC payload with the same paranoia as everything else:
/// every length is bounds-checked before slicing, and the weights are
/// re-validated against [`MAX_WEIGHT`] (the kernels' wrap-free bound).
fn decode_metric(payload: &[u8]) -> Result<MetricWeights, StoreError> {
    let take = |pos: usize, len: usize| -> Result<&[u8], StoreError> {
        payload
            .get(pos..pos + len)
            .ok_or(StoreError::Corrupt("metric section truncated".into()))
    };
    let name_len = u32::from_le_bytes(take(0, 4)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(4, name_len)?)
        .map_err(|_| StoreError::Corrupt("metric name is not UTF-8".into()))?
        .to_string();
    let mut pos = 4 + name_len;
    let version = u64::from_le_bytes(take(pos, 8)?.try_into().unwrap());
    pos += 8;
    let count = u64::from_le_bytes(take(pos, 8)?.try_into().unwrap());
    pos += 8;
    let avail = (payload.len() - pos) / 4;
    if count != avail as u64 || payload.len() != pos + avail * 4 {
        return Err(StoreError::Corrupt(format!(
            "metric `{name}` declares {count} weights but carries {avail}"
        )));
    }
    let weights: Vec<u32> = payload[pos..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if let Some(&w) = weights.iter().find(|&&w| w > MAX_WEIGHT) {
        return Err(StoreError::Corrupt(format!(
            "metric `{name}` v{version} holds weight {w} above MAX_WEIGHT"
        )));
    }
    Ok(MetricWeights {
        name,
        version,
        weights,
    })
}

fn decode_hierarchy_sections(
    sections: &BTreeMap<u32, &[u8]>,
) -> Result<Hierarchy, StoreError> {
    let meta = require(sections, SEC_H_META)?;
    if meta.len() != 8 {
        return Err(StoreError::Corrupt("hierarchy meta has wrong length".into()));
    }
    let num_shortcuts = u64::from_le_bytes(meta.try_into().unwrap()) as usize;

    let rank = decode_u32s(require(sections, SEC_H_RANK)?, "rank")?;
    let level = decode_u32s(require(sections, SEC_H_LEVEL)?, "level")?;
    let forward_up = Csr::try_from_raw(
        decode_u32s(require(sections, SEC_H_FWD_FIRST)?, "forward first")?,
        decode_arcs(require(sections, SEC_H_FWD_ARCS)?, "forward arcs")?,
    )
    .map_err(corrupt)?;
    let forward_middle = decode_u32s(require(sections, SEC_H_FWD_MIDDLE)?, "forward middle")?;
    let backward_up = Csr::try_from_raw(
        decode_u32s(require(sections, SEC_H_BWD_FIRST)?, "backward first")?,
        decode_arcs(require(sections, SEC_H_BWD_ARCS)?, "backward arcs")?,
    )
    .map_err(corrupt)?;
    let backward_middle = decode_u32s(require(sections, SEC_H_BWD_MIDDLE)?, "backward middle")?;

    // Cross-array length checks must come before `validate()`, which
    // indexes `level`/`rank` by arc endpoints and assumes equal lengths.
    let n = rank.len();
    if level.len() != n || forward_up.num_vertices() != n || backward_up.num_vertices() != n {
        return Err(StoreError::Corrupt(
            "hierarchy arrays disagree on vertex count".into(),
        ));
    }
    if forward_middle.len() != forward_up.num_arcs()
        || backward_middle.len() != backward_up.num_arcs()
    {
        return Err(StoreError::Corrupt(
            "hierarchy middle arrays out of sync with arc lists".into(),
        ));
    }

    let h = Hierarchy {
        rank,
        level,
        forward_up,
        forward_middle,
        backward_up,
        backward_middle,
        num_shortcuts,
    };
    h.validate().map_err(corrupt)?;
    Ok(h)
}

/// Decodes an instance artifact, re-validating every structural invariant.
pub fn decode_instance(bytes: &[u8]) -> Result<(Phast, Option<Hierarchy>), StoreError> {
    let (p, h, _) = decode_instance_full(bytes)?;
    Ok((p, h))
}

/// Decodes an instance artifact together with every METRIC section it
/// carries, re-validating every structural invariant (including metric
/// arity against the instance's own base-arc count).
pub fn decode_instance_full(
    bytes: &[u8],
) -> Result<(Phast, Option<Hierarchy>, Vec<MetricWeights>), StoreError> {
    let (p, h, m, _) = decode_instance_inner(bytes, None)?;
    Ok((p, h, m))
}

/// [`decode_instance_full`] over a memory mapping: the seven large arrays
/// (permutation + the three CSRs) borrow directly out of `bytes` when
/// their payloads are aligned, each holding a clone of `owner` to keep
/// the mapping alive. The returned flag reports whether *all* of them
/// borrowed (false means at least one fell back to a heap copy — e.g. a
/// legacy v2 file). Error behavior is byte-for-byte identical to the heap
/// decoder.
///
/// # Safety
///
/// `bytes` must live inside memory owned (and kept alive, immutable) by
/// `owner` — in practice, a slice of the [`crate::mmap::Mmap`] that
/// `owner` wraps.
pub(crate) unsafe fn decode_instance_full_mapped(
    bytes: &[u8],
    owner: &SegmentOwner,
) -> Result<(Phast, Option<Hierarchy>, Vec<MetricWeights>, bool), StoreError> {
    decode_instance_inner(bytes, Some(owner))
}

fn decode_instance_inner(
    bytes: &[u8],
    owner: Option<&SegmentOwner>,
) -> Result<(Phast, Option<Hierarchy>, Vec<MetricWeights>, bool), StoreError> {
    let parsed = parse_sections(bytes, ArtifactKind::Instance)?;
    // Zero-copy eligibility: only v3+ files carry the alignment
    // guarantee. A v2 file's payloads may *happen* to be aligned, but
    // borrowing from it would make the load path depend on an accident of
    // layout — legacy files always take the (well-tested) heap path.
    let owner = if parsed.version >= 3 { owner } else { None };
    let sections = parsed.by_tag;

    let meta = require(&sections, SEC_META)?;
    if meta.len() != 12 {
        return Err(StoreError::Corrupt("instance meta has wrong length".into()));
    }
    let direction = match u32::from_le_bytes(meta[..4].try_into().unwrap()) {
        0 => Direction::Forward,
        1 => Direction::Reverse,
        d => return Err(StoreError::Corrupt(format!("unknown direction code {d}"))),
    };
    let num_shortcuts = u64::from_le_bytes(meta[4..12].try_into().unwrap()) as usize;

    let parts = PhastParts {
        new_of_old: decode_u32_segment(require(&sections, SEC_PERM)?, "permutation", owner)?,
        level_of_sweep: decode_u32s(require(&sections, SEC_LEVELS)?, "levels")?,
        up_first: decode_u32_segment(require(&sections, SEC_UP_FIRST)?, "up first", owner)?,
        up_arcs: decode_arc_segment(require(&sections, SEC_UP_ARCS)?, "up arcs", owner)?,
        up_middle: decode_u32s(require(&sections, SEC_UP_MIDDLE)?, "up middle")?,
        down_first: decode_u32_segment(require(&sections, SEC_DOWN_FIRST)?, "down first", owner)?,
        down_arcs: decode_rev_arc_segment(require(&sections, SEC_DOWN_ARCS)?, "down arcs", owner)?,
        down_middle: decode_u32s(require(&sections, SEC_DOWN_MIDDLE)?, "down middle")?,
        orig_first: decode_u32_segment(require(&sections, SEC_ORIG_FIRST)?, "orig first", owner)?,
        orig_arcs: decode_rev_arc_segment(require(&sections, SEC_ORIG_ARCS)?, "orig arcs", owner)?,
        direction,
        num_shortcuts,
    };
    let zero_copy = [
        parts.new_of_old.is_mapped(),
        parts.up_first.is_mapped(),
        parts.up_arcs.is_mapped(),
        parts.down_first.is_mapped(),
        parts.down_arcs.is_mapped(),
        parts.orig_first.is_mapped(),
        parts.orig_arcs.is_mapped(),
    ]
    .iter()
    .all(|&m| m);
    let p = Phast::from_parts(parts).map_err(corrupt)?;

    // The hierarchy bundle is all-or-nothing: a partial set of hierarchy
    // sections means the file was damaged in a way the CRCs cannot see
    // (e.g. written by a buggy tool), so reject it.
    let present = HIERARCHY_SECTIONS
        .iter()
        .filter(|t| sections.contains_key(t))
        .count();
    let h = match present {
        0 => None,
        9 => {
            let h = decode_hierarchy_sections(&sections)?;
            if h.num_vertices() != p.num_vertices() {
                return Err(StoreError::Corrupt(
                    "bundled hierarchy is for a different graph".into(),
                ));
            }
            Some(h)
        }
        _ => {
            return Err(StoreError::Corrupt(
                "partial hierarchy bundle (missing sections)".into(),
            ))
        }
    };

    let num_base_arcs = p.orig_incoming().num_arcs();
    let mut metrics = Vec::with_capacity(parsed.metrics.len());
    let mut seen: Vec<(String, u64)> = Vec::new();
    for payload in parsed.metrics {
        let m = decode_metric(payload)?;
        if m.weights.len() != num_base_arcs {
            return Err(StoreError::Corrupt(format!(
                "metric `{}` v{} has {} weights but the instance has {} base arcs",
                m.name,
                m.version,
                m.weights.len(),
                num_base_arcs
            )));
        }
        let key = (m.name.clone(), m.version);
        if seen.contains(&key) {
            return Err(StoreError::Corrupt(format!(
                "duplicate metric `{}` v{}",
                m.name, m.version
            )));
        }
        seen.push(key);
        metrics.push(m);
    }
    Ok((p, h, metrics, zero_copy))
}

/// Decodes a standalone hierarchy artifact.
pub fn decode_hierarchy(bytes: &[u8]) -> Result<Hierarchy, StoreError> {
    let sections = parse_sections(bytes, ArtifactKind::Hierarchy)?;
    decode_hierarchy_sections(&sections.by_tag)
}
