//! Crash-safe, versioned binary persistence for PHAST artifacts.
//!
//! PHAST's economics are "preprocess once, sweep millions of times"
//! (paper §III): the preprocessed instance is a long-lived production
//! asset that outlives any single process, so this crate gives it a real
//! on-disk format instead of an unversioned JSON blob:
//!
//! * **Integrity**: magic bytes, an explicit format version, a CRC32 per
//!   section and a whole-file CRC32. A corrupt, truncated or
//!   version-skewed file yields a typed [`StoreError`] — never a panic
//!   and never a silently-wrong tree (every load re-runs the structural
//!   validators).
//! * **Crash safety**: writes go to a temp file in the destination
//!   directory, `fsync`, then atomically rename over the target and
//!   `fsync` the directory. Readers either see the complete old file or
//!   the complete new one.
//! * **Two artifact kinds**: a [`phast_core::Phast`] *instance*
//!   (optionally bundling the [`phast_ch::Hierarchy`] it came from, so a
//!   serving process can build point-to-point engines without
//!   recontracting) and a standalone hierarchy.
//!
//! The byte layout is specified in DESIGN.md §10; [`codec`] implements
//! it and this module adds the file-level API.

pub mod codec;
pub mod crc;
pub mod mmap;

pub use codec::{
    decode_hierarchy, decode_instance, decode_instance_full, encode_hierarchy, encode_instance,
    encode_instance_compat_v2, encode_instance_with_metrics, sniff, FORMAT_VERSION, MAGIC,
    OLDEST_READABLE_VERSION, PAYLOAD_ALIGN,
};

use phast_ch::Hierarchy;
use phast_core::Phast;
use phast_graph::segment::SegmentOwner;
use phast_metrics::MetricWeights;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc as SharedArc;

/// What a `.phast` file contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum ArtifactKind {
    /// A preprocessed [`Phast`] instance (optionally with its hierarchy).
    Instance = 1,
    /// A standalone contraction [`Hierarchy`].
    Hierarchy = 2,
}

impl ArtifactKind {
    /// Decodes the on-disk kind code.
    pub fn from_code(code: u32) -> Option<ArtifactKind> {
        match code {
            1 => Some(ArtifactKind::Instance),
            2 => Some(ArtifactKind::Hierarchy),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKind::Instance => write!(f, "instance"),
            ArtifactKind::Hierarchy => write!(f, "hierarchy"),
        }
    }
}

/// Why a `.phast` artifact failed to load (or save).
///
/// Every failure mode of a hostile or damaged file maps to exactly one of
/// these variants; the fault-injection suite asserts that no input —
/// bit-flipped, truncated at any byte, version-skewed — escapes this type.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with the `.phast` magic bytes.
    NotAStore,
    /// The file's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The header's artifact-kind code is not a known kind.
    UnknownKind(u32),
    /// The file holds a different artifact kind than requested.
    WrongKind {
        /// Kind the caller asked for.
        expected: ArtifactKind,
        /// Kind the file declares.
        found: ArtifactKind,
    },
    /// The file ends in the middle of a header or section.
    Truncated {
        /// Byte offset at which data ran out.
        offset: usize,
    },
    /// A section's payload does not match its stored CRC32.
    SectionChecksum {
        /// Tag of the damaged section.
        tag: u32,
    },
    /// The whole-file CRC32 does not match.
    FileChecksum,
    /// The bytes parse but violate a structural invariant; the message
    /// says which one.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::NotAStore => write!(f, "not a .phast artifact (bad magic)"),
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "unsupported format version {found} (this build reads version {FORMAT_VERSION})"
            ),
            StoreError::UnknownKind(code) => write!(f, "unknown artifact kind code {code}"),
            StoreError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} artifact but the file holds a {found}")
            }
            StoreError::Truncated { offset } => {
                write!(f, "file truncated (data ran out at byte {offset})")
            }
            StoreError::SectionChecksum { tag } => {
                write!(f, "section 0x{tag:02X} failed its CRC32 check")
            }
            StoreError::FileChecksum => write!(f, "whole-file CRC32 mismatch"),
            StoreError::Corrupt(m) => write!(f, "corrupt artifact: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, `fsync`, atomic rename, directory `fsync`. A crash at any
/// point leaves either the old file or the new one — never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| StoreError::Io(io::Error::new(io::ErrorKind::InvalidInput, "path has no file name")))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the containing directory.
        // Failure here is not ignorable — the file could vanish on crash.
        File::open(dir)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn read_all(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Saves a preprocessed instance (and optionally its hierarchy) to
/// `path`, crash-safely.
pub fn write_instance(path: &Path, p: &Phast, h: Option<&Hierarchy>) -> Result<(), StoreError> {
    write_atomic(path, &encode_instance(p, h))
}

/// Loads an instance saved by [`write_instance`], re-validating every
/// structural invariant.
pub fn read_instance(path: &Path) -> Result<(Phast, Option<Hierarchy>), StoreError> {
    decode_instance(&read_all(path)?)
}

/// Saves a preprocessed instance plus any number of versioned metrics
/// (each in its own CRC-protected `METRIC` section), crash-safely.
pub fn write_instance_with_metrics(
    path: &Path,
    p: &Phast,
    h: Option<&Hierarchy>,
    metrics: &[MetricWeights],
) -> Result<(), StoreError> {
    write_atomic(path, &encode_instance_with_metrics(p, h, metrics))
}

/// Loads an instance together with every metric stored alongside it.
pub fn read_instance_full(
    path: &Path,
) -> Result<(Phast, Option<Hierarchy>, Vec<MetricWeights>), StoreError> {
    decode_instance_full(&read_all(path)?)
}

/// An instance loaded through [`load_instance_mmap`].
pub struct LoadedInstance {
    /// The preprocessed sweep instance.
    pub phast: Phast,
    /// The bundled contraction hierarchy, if the artifact carries one.
    pub hierarchy: Option<Hierarchy>,
    /// Every metric stored alongside the instance, in file order.
    pub metrics: Vec<MetricWeights>,
    /// True when all seven large arrays borrow straight out of the file
    /// mapping; false when any fell back to a heap copy (legacy v2 file,
    /// big-endian host, or no mmap facility at all).
    pub zero_copy: bool,
}

/// Loads an instance by memory-mapping the file and borrowing the large
/// arrays (permutation + three CSRs) directly out of the mapping — no
/// copy, and N replicas on one machine share one set of page-cache pages.
///
/// Validation is not weakened: every CRC, length and structural invariant
/// is checked exactly as in [`read_instance_full`], and every failure
/// mode yields the *same* typed [`StoreError`]. Files that cannot be
/// borrowed from — legacy v2 (unpadded) artifacts, big-endian hosts,
/// platforms without `mmap` — degrade gracefully to heap decoding, per
/// array where possible and wholesale where not.
pub fn load_instance_mmap(path: &Path) -> Result<LoadedInstance, StoreError> {
    let map = match mmap::Mmap::open(path) {
        Ok(m) => SharedArc::new(m),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::Io(e)),
        Err(_) => {
            // No mapping facility (or an unmappable file, e.g. empty):
            // plain heap read, preserving read_instance_full's exact
            // error behavior — an empty file is Truncated { offset: 0 }.
            let (phast, hierarchy, metrics) = read_instance_full(path)?;
            return Ok(LoadedInstance {
                phast,
                hierarchy,
                metrics,
                zero_copy: false,
            });
        }
    };
    let owner: SegmentOwner = map.clone();
    // SAFETY: `bytes` borrows from `map`, and `owner` is a clone of the
    // same SharedArc, so any Segment holding a clone of `owner` keeps the
    // mapping (and therefore `bytes`) alive and immutable.
    let (phast, hierarchy, metrics, zero_copy) =
        unsafe { codec::decode_instance_full_mapped(&map[..], &owner)? };
    Ok(LoadedInstance {
        phast,
        hierarchy,
        metrics,
        zero_copy,
    })
}

/// Saves a standalone hierarchy to `path`, crash-safely.
pub fn write_hierarchy(path: &Path, h: &Hierarchy) -> Result<(), StoreError> {
    write_atomic(path, &encode_hierarchy(h))
}

/// Loads a hierarchy saved by [`write_hierarchy`].
pub fn read_hierarchy(path: &Path) -> Result<Hierarchy, StoreError> {
    decode_hierarchy(&read_all(path)?)
}

/// True if the file at `path` starts with the `.phast` magic — format
/// sniffing for tools that also accept legacy JSON artifacts. I/O errors
/// map to `false` so callers can fall through to their other format's
/// (more informative) error path.
pub fn is_store_file(path: &Path) -> bool {
    let mut head = [0u8; 8];
    match File::open(path).and_then(|mut f| f.read_exact(&mut head)) {
        Ok(()) => sniff(&head),
        Err(_) => false,
    }
}
