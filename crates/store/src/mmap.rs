//! A minimal read-only file mapping.
//!
//! Restart speed is the point: a serving replica coming back after a
//! crash maps the preprocessed artifact instead of copying it through a
//! `read` loop, so N replicas on one box share a single set of page-cache
//! pages and a warm restart touches (almost) no new memory. The mapping
//! is `PROT_READ`/`MAP_SHARED`, never written, and unmapped on drop.
//!
//! Artifacts are written atomically (temp file + rename, see
//! [`crate::write_atomic`]) and never modified in place, so mapping an
//! artifact and reading it afterwards is not racy in this system: a
//! concurrent re-preprocess replaces the directory entry, while the open
//! mapping keeps the old inode alive.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::os::fd::AsRawFd;
use std::path::Path;

/// A read-only mapping of an entire file. Dereferences to `&[u8]`.
pub struct Mmap {
    ptr: *mut libc::c_void,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime and
// owned exclusively by this handle, so shared references to its bytes are
// ordinary shared slice access.
unsafe impl Send for Mmap {}
// SAFETY: see above.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole file at `path` read-only.
    ///
    /// Fails with `InvalidInput` for an empty file (`mmap` cannot map
    /// zero bytes) and with `Unsupported` where no mapping facility
    /// exists — callers fall back to an ordinary heap read in both cases.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        // SAFETY: fd is a freshly opened readable file and len is its
        // exact size; a MAP_FAILED return is handled below.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap is not available for this file",
            ));
        }
        // The fd can be closed now; the mapping keeps the inode alive.
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: ptr/len describe the mapping created in `open`; nothing
        // can dereference it after drop because all borrows of the bytes
        // go through self.
        unsafe {
            libc::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_and_rejects_empty() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("phast-mmap-test-{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let m = Mmap::open(&path).expect("map a regular file");
        assert_eq!(&m[..], b"hello mapping");
        drop(m);

        std::fs::write(&path, b"").unwrap();
        assert!(Mmap::open(&path).is_err(), "empty files cannot be mapped");
        std::fs::remove_file(&path).ok();
    }
}
