//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Implemented in-crate so the store has no external dependency for its
//! integrity checks; the polynomial matches zlib/`cksum -o3`, so section
//! checksums can be verified with standard tools.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Running CRC-32 state; feed bytes with [`Self::update`], read the
/// digest with [`Self::finish`].
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello phast store";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0xA5u8; 97];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x10;
        }
    }
}
