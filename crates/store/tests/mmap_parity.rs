//! Fault-injection parity for the zero-copy (mmap) load path.
//!
//! The contract (ISSUE 8 acceptance criteria): [`load_instance_mmap`]
//! must reject every damaged input the heap decoder rejects, with the
//! *identical* typed [`StoreError`] — zero-copy is a performance path,
//! never a validation downgrade. Plus: a clean v3 artifact actually
//! borrows from the mapping, and a legacy v2 (unpadded) artifact still
//! loads through the graceful heap fallback.

use phast_ch::{contract_graph, ContractionConfig};
use phast_core::{Phast, PhastBuilder};
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::Graph;
use phast_store::{
    decode_instance_full, encode_instance, encode_instance_compat_v2, load_instance_mmap,
    StoreError, FORMAT_VERSION, PAYLOAD_ALIGN,
};
use std::path::{Path, PathBuf};

fn fixture() -> (Graph, Phast, phast_ch::Hierarchy) {
    let net = RoadNetworkConfig::new(5, 5, 42, Metric::TravelTime).build();
    let h = contract_graph(&net.graph, &ContractionConfig::default());
    let p = PhastBuilder::new().build_with_hierarchy(&net.graph, &h);
    (net.graph, p, h)
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phast-mmap-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Loads `bytes` through the mmap path by way of a real file.
fn mmap_load(bytes: &[u8], path: &Path) -> Result<phast_store::LoadedInstance, StoreError> {
    std::fs::write(path, bytes).unwrap();
    load_instance_mmap(path)
}

/// The parity assertion: the mmap loader and the heap decoder must agree
/// on *exactly* how a given byte string fails (variant and message).
fn assert_same_rejection(bytes: &[u8], path: &Path, context: &str) {
    let heap = decode_instance_full(bytes);
    let mapped = mmap_load(bytes, path);
    match (heap, mapped) {
        (Err(h), Err(m)) => {
            assert_eq!(
                format!("{h:?}"),
                format!("{m:?}"),
                "error mismatch for {context}"
            );
        }
        (Ok(_), Ok(_)) => panic!("{context}: expected both loaders to reject"),
        (h, m) => panic!(
            "{context}: loaders disagree (heap ok={}, mmap ok={})",
            h.is_ok(),
            m.is_ok()
        ),
    }
}

/// Byte ranges of each section's payload (same frame walk as the heap
/// fault-injection suite — pads use ordinary framing, so it still works).
fn section_payloads(bytes: &[u8]) -> Vec<(u32, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = 16;
    let body_end = bytes.len() - 4;
    while pos < body_end {
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        out.push((tag, pos + 12..pos + 12 + len));
        pos += 12 + len + 4;
    }
    out
}

#[test]
fn clean_v3_artifact_loads_zero_copy_with_identical_trees() {
    let (_, p, h) = fixture();
    let bytes = encode_instance(&p, Some(&h));
    let path = scratch_file("clean.phast");
    let loaded = mmap_load(&bytes, &path).expect("clean artifact loads via mmap");
    assert!(
        loaded.zero_copy,
        "a current-version artifact must borrow all big arrays from the mapping"
    );
    assert!(loaded.hierarchy.is_some());
    let mut e1 = p.engine();
    let mut e2 = loaded.phast.engine();
    for s in 0..p.num_vertices() as u32 {
        assert_eq!(e1.distances(s), e2.distances(s), "tree from {s} differs");
    }
}

#[test]
fn v3_payloads_are_cache_line_aligned_in_the_file() {
    let (_, p, h) = fixture();
    let bytes = encode_instance(&p, Some(&h));
    for (tag, range) in section_payloads(&bytes) {
        if tag != 0x00 {
            assert_eq!(
                range.start % PAYLOAD_ALIGN,
                0,
                "section 0x{tag:02X} payload starts at unaligned offset {}",
                range.start
            );
        }
    }
}

#[test]
fn legacy_v2_artifact_falls_back_to_heap_copies() {
    let (g, p, h) = fixture();
    let m = phast_metrics::MetricWeights::perturbed(&g, "m", 1, 3);
    let v2 = encode_instance_compat_v2(&p, Some(&h), std::slice::from_ref(&m));
    // Sanity: the compat encoder really writes the previous version.
    assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), FORMAT_VERSION - 1);
    let path = scratch_file("legacy.phast");
    let loaded = mmap_load(&v2, &path).expect("legacy v2 artifact still loads");
    assert!(
        !loaded.zero_copy,
        "unpadded v2 payloads are unaligned, so the loader must copy"
    );
    assert!(loaded.hierarchy.is_some());
    assert_eq!(loaded.metrics, vec![m]);
    assert_eq!(p.engine().distances(3), loaded.phast.engine().distances(3));
}

#[test]
fn every_section_bit_flip_rejected_identically() {
    let (_, p, h) = fixture();
    let bytes = encode_instance(&p, Some(&h));
    let path = scratch_file("flip.phast");
    for (tag, range) in section_payloads(&bytes) {
        if range.is_empty() {
            continue;
        }
        for at in [range.start, range.start + range.len() / 2, range.end - 1] {
            let mut evil = bytes.clone();
            evil[at] ^= 0x40;
            assert_same_rejection(&evil, &path, &format!("flip at {at} in section 0x{tag:02X}"));
        }
    }
}

#[test]
fn every_truncation_point_rejected_identically() {
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    let path = scratch_file("trunc.phast");
    for cut in 0..bytes.len() {
        assert_same_rejection(&bytes[..cut], &path, &format!("truncation to {cut} bytes"));
    }
}

#[test]
fn header_skew_rejected_identically() {
    let (_, p, _) = fixture();
    let base = encode_instance(&p, None);
    let path = scratch_file("skew.phast");

    let mut version = base.clone();
    version[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert_same_rejection(&version, &path, "future version");
    match mmap_load(&version, &path) {
        Err(StoreError::UnsupportedVersion { found }) => assert_eq!(found, FORMAT_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got ok={}", other.is_ok()),
    }

    let mut magic = base.clone();
    magic[0] = b'X';
    assert_same_rejection(&magic, &path, "bad magic");

    let mut kind = base.clone();
    kind[12..16].copy_from_slice(&99u32.to_le_bytes());
    assert_same_rejection(&kind, &path, "unknown kind");
}

#[test]
fn structural_corruption_with_valid_crcs_rejected_identically() {
    // CRC-clean but structurally invalid: the mmap path must run the same
    // structural validators as the heap path (the permutation check fires
    // on data borrowed straight from the mapping).
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    let (_, perm_range) = section_payloads(&bytes)
        .into_iter()
        .find(|(tag, _)| *tag == 0x02)
        .expect("permutation section present");
    let mut evil = bytes.clone();
    evil[perm_range.start..perm_range.start + 4].copy_from_slice(&0u32.to_le_bytes());
    evil[perm_range.start + 4..perm_range.start + 8].copy_from_slice(&0u32.to_le_bytes());
    let payload_crc = phast_store::crc::crc32(&evil[perm_range.clone()]);
    evil[perm_range.end..perm_range.end + 4].copy_from_slice(&payload_crc.to_le_bytes());
    let body_end = evil.len() - 4;
    let file_crc = phast_store::crc::crc32(&evil[..body_end]);
    evil[body_end..].copy_from_slice(&file_crc.to_le_bytes());
    let path = scratch_file("structural.phast");
    assert_same_rejection(&evil, &path, "CRC-clean structural corruption");
    match mmap_load(&evil, &path) {
        Err(StoreError::Corrupt(m)) => assert!(m.contains("permutation"), "got: {m}"),
        other => panic!("expected Corrupt, got ok={}", other.is_ok()),
    }
}

#[test]
fn empty_and_missing_files_yield_typed_errors() {
    let path = scratch_file("empty.phast");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        load_instance_mmap(&path),
        Err(StoreError::Truncated { offset: 0 })
    ));
    let missing = scratch_file("does-not-exist.phast");
    std::fs::remove_file(&missing).ok();
    assert!(matches!(load_instance_mmap(&missing), Err(StoreError::Io(_))));
}
