//! Fault-injection suite for the `.phast` artifact store.
//!
//! The contract under test (ISSUE 3 acceptance criteria): every
//! single-section bit-flip, every truncation point, and version/magic
//! skew on a `.phast` file is rejected with a typed [`StoreError`] — no
//! panics, no wrong answers.

use phast_ch::{contract_graph, ContractionConfig};
use phast_core::{Phast, PhastBuilder};
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::Graph;
use phast_store::{
    decode_hierarchy, decode_instance, encode_hierarchy, encode_instance, StoreError,
    FORMAT_VERSION, MAGIC,
};
use proptest::prelude::*;

fn fixture() -> (Graph, Phast, phast_ch::Hierarchy) {
    let net = RoadNetworkConfig::new(5, 5, 42, Metric::TravelTime).build();
    let h = contract_graph(&net.graph, &ContractionConfig::default());
    let p = PhastBuilder::new().build_with_hierarchy(&net.graph, &h);
    (net.graph, p, h)
}

/// Byte ranges of each section's payload, recovered by walking the frame
/// layout (tag u32 | len u64 | payload | crc u32) — the tests flip bits
/// per section to prove each one is independently protected.
fn section_payloads(bytes: &[u8]) -> Vec<(u32, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = 16;
    let body_end = bytes.len() - 4;
    while pos < body_end {
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        out.push((tag, pos + 12..pos + 12 + len));
        pos += 12 + len + 4;
    }
    out
}

#[test]
fn roundtrip_preserves_distances() {
    let (_, p, h) = fixture();
    let bytes = encode_instance(&p, Some(&h));
    let (q, hq) = decode_instance(&bytes).expect("clean artifact must load");
    assert!(hq.is_some(), "bundled hierarchy must ride along");
    let mut e1 = p.engine();
    let mut e2 = q.engine();
    for s in 0..p.num_vertices() as u32 {
        assert_eq!(e1.distances(s), e2.distances(s), "tree from {s} differs");
    }
    assert_eq!(p.direction(), q.direction());
    assert_eq!(p.num_shortcuts(), q.num_shortcuts());
}

#[test]
fn roundtrip_without_hierarchy() {
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    let (q, hq) = decode_instance(&bytes).expect("clean artifact must load");
    assert!(hq.is_none());
    assert_eq!(p.engine().distances(3), q.engine().distances(3));
}

#[test]
fn roundtrip_standalone_hierarchy() {
    let (g, _, h) = fixture();
    let bytes = encode_hierarchy(&h);
    let h2 = decode_hierarchy(&bytes).expect("clean hierarchy must load");
    h2.validate().expect("loaded hierarchy validates");
    // The hierarchy is all the preprocessing there is: rebuilding the
    // sweep instance from the loaded copy must give identical trees.
    let p1 = PhastBuilder::new().build_with_hierarchy(&g, &h);
    let p2 = PhastBuilder::new().build_with_hierarchy(&g, &h2);
    assert_eq!(p1.engine().distances(0), p2.engine().distances(0));
}

#[test]
fn every_section_bit_flip_is_rejected() {
    let (_, p, h) = fixture();
    let bytes = encode_instance(&p, Some(&h));
    let sections = section_payloads(&bytes);
    assert!(sections.len() >= 20, "expected all instance+hierarchy sections");
    for (tag, range) in sections {
        if range.is_empty() {
            continue;
        }
        // Flip a bit at the start, middle and end of the payload.
        for at in [range.start, range.start + range.len() / 2, range.end - 1] {
            let mut evil = bytes.clone();
            evil[at] ^= 0x40;
            match decode_instance(&evil) {
                Err(StoreError::SectionChecksum { tag: t }) => {
                    assert_eq!(t, tag, "flip in section 0x{tag:02X} blamed on 0x{t:02X}")
                }
                Err(_) => {} // another typed error is acceptable, a panic is not
                Ok(_) => panic!("bit flip at byte {at} (section 0x{tag:02X}) loaded"),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    // One flipped bit per byte over the whole file, rotating the bit
    // position so all eight lanes get coverage.
    for at in 0..bytes.len() {
        let mut evil = bytes.clone();
        evil[at] ^= 1 << (at % 8);
        assert!(
            decode_instance(&evil).is_err(),
            "single-bit flip at byte {at} was not detected"
        );
    }
}

#[test]
fn every_truncation_point_is_rejected() {
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    for cut in 0..bytes.len() {
        assert!(
            decode_instance(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was not detected"
        );
    }
}

#[test]
fn version_skew_is_rejected_with_typed_error() {
    let (_, p, _) = fixture();
    let mut bytes = encode_instance(&p, None);
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match decode_instance(&bytes) {
        Err(StoreError::UnsupportedVersion { found }) => {
            assert_eq!(found, FORMAT_VERSION + 1)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let (_, p, _) = fixture();
    let mut bytes = encode_instance(&p, None);
    bytes[0] = b'X';
    assert!(matches!(decode_instance(&bytes), Err(StoreError::NotAStore)));
    // A JSON artifact fed to the binary loader is the common operator
    // mistake; it must produce the same clean error.
    assert!(matches!(
        decode_instance(b"{\"perm\": []}"),
        Err(StoreError::NotAStore) | Err(StoreError::Truncated { .. })
    ));
}

#[test]
fn unknown_kind_code_is_rejected() {
    let (_, p, _) = fixture();
    let mut bytes = encode_instance(&p, None);
    bytes[12..16].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        decode_instance(&bytes),
        Err(StoreError::UnknownKind(99))
    ));
}

#[test]
fn kind_mismatch_is_rejected() {
    let (_, p, h) = fixture();
    let instance = encode_instance(&p, None);
    assert!(matches!(
        decode_hierarchy(&instance),
        Err(StoreError::WrongKind { .. })
    ));
    let hierarchy = encode_hierarchy(&h);
    assert!(matches!(
        decode_instance(&hierarchy),
        Err(StoreError::WrongKind { .. })
    ));
}

#[test]
fn checksum_correct_but_structurally_invalid_is_rejected() {
    // A store written by a buggy tool can have perfectly fine CRCs around
    // nonsense arrays; the structural validators are the last line of
    // defense. Corrupt the permutation payload and re-stamp both CRCs.
    let (_, p, _) = fixture();
    let bytes = encode_instance(&p, None);
    let sections = section_payloads(&bytes);
    let (_, perm_range) = sections
        .iter()
        .find(|(tag, _)| *tag == 0x02)
        .expect("permutation section present")
        .clone();
    let mut evil = bytes.clone();
    // Make two permutation entries collide (0 repeated).
    evil[perm_range.start..perm_range.start + 4].copy_from_slice(&0u32.to_le_bytes());
    evil[perm_range.start + 4..perm_range.start + 8].copy_from_slice(&0u32.to_le_bytes());
    let payload_crc = phast_store::crc::crc32(&evil[perm_range.clone()]);
    evil[perm_range.end..perm_range.end + 4].copy_from_slice(&payload_crc.to_le_bytes());
    let body_end = evil.len() - 4;
    let file_crc = phast_store::crc::crc32(&evil[..body_end]);
    evil[body_end..].copy_from_slice(&file_crc.to_le_bytes());
    match decode_instance(&evil) {
        Err(StoreError::Corrupt(m)) => {
            assert!(m.contains("permutation"), "unexpected message: {m}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn atomic_write_roundtrips_and_leaves_no_temp_files() {
    let (_, p, h) = fixture();
    let dir = std::env::temp_dir().join(format!("phast-store-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inst.phast");
    phast_store::write_instance(&path, &p, Some(&h)).expect("write");
    assert!(phast_store::is_store_file(&path));
    let (q, hq) = phast_store::read_instance(&path).expect("read back");
    assert!(hq.is_some());
    assert_eq!(p.engine().distances(7), q.engine().distances(7));
    // Overwriting an existing artifact must also work (rename over it).
    phast_store::write_instance(&path, &p, None).expect("overwrite");
    let (_, hq) = phast_store::read_instance(&path).expect("read back twice");
    assert!(hq.is_none());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sniffing_distinguishes_binary_from_json() {
    let (_, p, _) = fixture();
    assert!(phast_store::sniff(&encode_instance(&p, None)));
    assert!(!phast_store::sniff(b"{\"up\": []}"));
    assert!(!phast_store::sniff(b""));
}

#[test]
fn metrics_roundtrip_and_validate() {
    let (g, p, h) = fixture();
    let m1 = phast_metrics::MetricWeights::perturbed(&g, "rush-hour", 1, 7);
    let m2 = phast_metrics::MetricWeights::perturbed(&g, "rush-hour", 2, 8);
    let bytes = phast_store::encode_instance_with_metrics(&p, Some(&h), &[m1.clone(), m2.clone()]);
    let (_, hq, ms) = phast_store::decode_instance_full(&bytes).expect("clean artifact loads");
    assert!(hq.is_some());
    assert_eq!(ms, vec![m1.clone(), m2.clone()]);
    // The metric-free reader skips METRIC sections without complaint.
    let (q, _) = decode_instance(&bytes).expect("plain reader loads");
    assert_eq!(p.engine().distances(2), q.engine().distances(2));
    // Duplicate (name, version) pairs are corruption.
    let dup = phast_store::encode_instance_with_metrics(&p, None, &[m1.clone(), m1.clone()]);
    assert!(matches!(
        phast_store::decode_instance_full(&dup),
        Err(StoreError::Corrupt(_))
    ));
    // A metric sized for a different graph is corruption.
    let short = phast_metrics::MetricWeights::new("tiny", 1, vec![1, 2, 3]).unwrap();
    let bad = phast_store::encode_instance_with_metrics(&p, None, &[short]);
    assert!(matches!(
        phast_store::decode_instance_full(&bad),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn metric_section_bit_flips_are_rejected() {
    let (g, p, _) = fixture();
    let m = phast_metrics::MetricWeights::perturbed(&g, "m", 1, 3);
    let bytes = phast_store::encode_instance_with_metrics(&p, None, &[m]);
    let metric_payloads: Vec<_> = section_payloads(&bytes)
        .into_iter()
        .filter(|(tag, _)| *tag == 0x40)
        .collect();
    assert_eq!(metric_payloads.len(), 1, "expected one METRIC section");
    let (_, range) = metric_payloads[0].clone();
    for at in [range.start, range.start + range.len() / 2, range.end - 1] {
        let mut evil = bytes.clone();
        evil[at] ^= 0x10;
        assert!(
            phast_store::decode_instance_full(&evil).is_err(),
            "metric bit flip at {at} was not detected"
        );
    }
}

#[test]
fn metric_sections_on_a_hierarchy_are_rejected() {
    // METRIC is instance-only: grafting one onto a hierarchy artifact is
    // structural corruption, not a tolerated extension.
    let (g, p, h) = fixture();
    let m = phast_metrics::MetricWeights::perturbed(&g, "m", 1, 3);
    let with_metric = phast_store::encode_instance_with_metrics(&p, None, &[m]);
    let (_, metric_range) = section_payloads(&with_metric)
        .into_iter()
        .find(|(tag, _)| *tag == 0x40)
        .expect("metric section present");
    // Splice the whole framed METRIC section into a hierarchy artifact.
    let framed = &with_metric[metric_range.start - 12..metric_range.end + 4];
    let mut bytes = encode_hierarchy(&h);
    let body_end = bytes.len() - 4;
    bytes.truncate(body_end);
    bytes.extend_from_slice(framed);
    let crc = phast_store::crc::crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        decode_hierarchy(&bytes),
        Err(StoreError::Corrupt(_))
    ));
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(128))]

    /// Arbitrary byte soup — with or without a valid-looking header
    /// grafted on — never panics the decoders.
    #[test]
    fn decoders_never_panic_on_byte_soup(
        mut bytes in proptest::collection::vec(0u8..=255, 0..256),
        graft_header in 0u8..2,
    ) {
        if graft_header == 1 && bytes.len() >= 16 {
            bytes[..8].copy_from_slice(&MAGIC);
            bytes[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
            bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
        }
        let _ = decode_instance(&bytes);
        let _ = decode_hierarchy(&bytes);
    }
}
