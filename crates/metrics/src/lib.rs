//! CCH-style metric customization for PHAST: the metric/topology split.
//!
//! PHAST's economics are "preprocess once, sweep millions of times" — but
//! production routing means *traffic*: arc weights change every minute,
//! and a full recontraction (seconds to minutes) is far too slow to chase
//! them. Customizable Contraction Hierarchies (Dibbelt, Strasser, Wagner;
//! arXiv:1402.0402) split preprocessing into
//!
//! 1. a **metric-independent topology phase** that fixes the contraction
//!    order and the shortcut *structure* once, and
//! 2. a fast, parallelizable **customization pass** that re-derives the
//!    shortcut *weights* for each new metric.
//!
//! This crate implements that split alongside the existing `phast-ch`
//! contraction (with its own fill-reducing elimination order — see
//! [`FrozenTopology::freeze`] for why the witness-pruned CH order cannot
//! be reused):
//!
//! * [`FrozenTopology::freeze`] runs a pure *elimination game* (no
//!   witness searches — witnesses are metric-dependent, so a
//!   weight-agnostic topology must keep every fill-in arc) under a
//!   fill-reducing greedy min-degree order computed on the spot, and
//!   records, per closure arc, the list of *lower triangles*
//!   `(u, m) + (m, w)` through which a new metric can shorten it, plus
//!   the base arcs it directly represents.
//! * [`FrozenTopology::customize`] runs the bottom-up pass
//!   `w(u,w) = min(w(u,w), w(u,m) + w(m,v))` over arcs grouped by the
//!   elimination level of their lower endpoint. Every triangle of an arc
//!   reads only arcs from strictly lower levels (the middle vertex was
//!   contracted before either endpoint), so each level group is
//!   embarrassingly parallel and the result is bit-deterministic for any
//!   thread count.
//! * [`FrozenTopology::apply`] materializes the customized weights as a
//!   fresh [`Hierarchy`] + reweighted base graph, from which the existing
//!   sweep/RPHAST kernels are assembled **unchanged** (they only ever see
//!   a valid hierarchy; they neither know nor care that no witness search
//!   ran).
//! * [`MetricCustomizer`] bundles graph + frozen topology into the
//!   one-call `metric in, engines out` handle `phast-serve` hot-swaps on.
//!
//! Exactness: the elimination closure is a superset of the witness-pruned
//! CH arc set, and basic customization makes every closure arc an upper
//! bound that is *tight* on at least one shortest path, so upward search +
//! downward sweep over the customized hierarchy computes exact distances
//! for the new metric (the standard CCH argument). The differential
//! battery in `tests/metric_battery.rs` pins customized PHAST ==
//! recontracted PHAST == Dijkstra for randomly perturbed metrics.

mod frozen;
mod weights;

pub use frozen::{CustomizedMetric, FrozenTopology};
pub use weights::MetricWeights;

use phast_ch::Hierarchy;
use phast_core::{Phast, PhastBuilder};
use phast_graph::Graph;

/// A base graph plus its frozen contraction topology: everything needed to
/// turn a [`MetricWeights`] into ready-to-serve engines, repeatedly and
/// fast.
///
/// Freeze once (roughly the cost of a contraction, minus the witness
/// searches), then [`build`](MetricCustomizer::build) per metric — the
/// per-metric cost is the customization pass plus engine assembly, which
/// the `customize_10e6` regress benchmark pins at an order of magnitude
/// below recontraction.
pub struct MetricCustomizer {
    graph: Graph,
    frozen: FrozenTopology,
    threads: usize,
}

/// **Fault-injection seam** (tests, chaos gates and CI only): when this
/// environment variable names a metric — either its `name` or
/// `name:version` — [`MetricCustomizer::build`] silently customizes a
/// *corrupted* copy of the weights instead of the declared ones. The
/// result is a perfectly well-formed `(Phast, Hierarchy)` whose answers
/// are wrong for the metric it claims to serve: exactly the
/// "customization pipeline lied" failure the `phast-serve` canary exists
/// to catch, impossible to produce on demand any other way.
pub const CANARY_FAULT_ENV: &str = "PHAST_CANARY_FAULT";

/// Whether the fault seam is armed for this metric.
fn canary_fault_armed(metric: &MetricWeights) -> bool {
    match std::env::var(CANARY_FAULT_ENV) {
        Ok(spec) => {
            spec == metric.name || spec == format!("{}:{}", metric.name, metric.version)
        }
        Err(_) => false,
    }
}

/// The injected corruption: every weight mapped `w -> min(2w+1, cap)`.
/// Still a valid metric (validation passes), but every arc is strictly
/// longer, so any canary tree with at least one reachable arc diverges.
fn corrupted(metric: &MetricWeights) -> MetricWeights {
    MetricWeights {
        name: metric.name.clone(),
        version: metric.version,
        weights: metric
            .weights
            .iter()
            .map(|&w| w.saturating_mul(2).saturating_add(1).min(phast_graph::MAX_WEIGHT))
            .collect(),
    }
}

impl MetricCustomizer {
    /// Freezes `graph`'s contraction topology. `hierarchy` (the output of
    /// `phast_ch::contract_graph`) is validated and its rank used as a
    /// deterministic tie-break, but the elimination order itself is a
    /// fresh fill-reducing one — the witness-pruned CH order explodes
    /// when replayed without witnesses (see [`FrozenTopology::freeze`]).
    pub fn new(graph: Graph, hierarchy: &Hierarchy) -> Result<MetricCustomizer, String> {
        let frozen = FrozenTopology::freeze(&graph, hierarchy)?;
        Ok(MetricCustomizer {
            graph,
            frozen,
            threads: 0,
        })
    }

    /// Caps the per-metric customization pass at `threads` rayon workers.
    /// `0` (the default) honours `PHAST_THREADS` if set, else the ambient
    /// pool — the same resolution as `phast_ch::with_threads`. The pass is
    /// bit-deterministic for any thread count, so this only trades latency
    /// against interference with co-resident work (e.g. serve traffic
    /// during a background hot-swap).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The base graph (canonical arc order for [`MetricWeights`]).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen topology.
    pub fn frozen(&self) -> &FrozenTopology {
        &self.frozen
    }

    /// The graph's own weights as a metric (version 0) — the identity
    /// customization, useful as a baseline and in tests.
    pub fn base_metric(&self) -> MetricWeights {
        MetricWeights {
            name: "base".into(),
            version: 0,
            weights: self.graph.forward().arcs().iter().map(|a| a.weight).collect(),
        }
    }

    /// Customizes `metric` and assembles a full PHAST instance (plus the
    /// customized hierarchy, for point-to-point CH queries) over it.
    ///
    /// This is the hot-swap payload: `phast-serve` calls it in the
    /// background and atomically points workers at the result.
    pub fn build(&self, metric: &MetricWeights) -> Result<(Phast, Hierarchy), String> {
        // The fault seam swaps in corrupted weights *silently*: the
        // returned engines are internally consistent and pass every
        // shape check, they just answer a different metric than the one
        // declared — the caller's canary is the only thing that can
        // notice. See [`CANARY_FAULT_ENV`].
        let effective: std::borrow::Cow<'_, MetricWeights> = if canary_fault_armed(metric) {
            eprintln!(
                "phast-metrics: {CANARY_FAULT_ENV} armed for `{}` v{}: \
                 customizing corrupted weights",
                metric.name, metric.version
            );
            std::borrow::Cow::Owned(corrupted(metric))
        } else {
            std::borrow::Cow::Borrowed(metric)
        };
        let (g2, h2) = phast_ch::with_threads(self.threads, || {
            let custom = self.frozen.customize(&effective)?;
            self.frozen.apply(&self.graph, &effective, &custom)
        })?;
        let phast = PhastBuilder::new().build_with_hierarchy(&g2, &h2);
        Ok((phast, h2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_ch::{contract_graph, ContractionConfig};
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn customizer_roundtrips_the_base_metric() {
        let net = RoadNetworkConfig::new(6, 6, 17, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let reference = shortest_paths(net.graph.forward(), 3).dist;
        let cust = MetricCustomizer::new(net.graph, &h).expect("freeze");
        let (p, h2) = cust.build(&cust.base_metric()).expect("customize");
        h2.validate().expect("customized hierarchy validates");
        assert_eq!(p.engine().distances(3), reference);
    }

    #[test]
    fn perturbed_metric_matches_dijkstra() {
        let net = RoadNetworkConfig::new(7, 5, 23, Metric::TravelDistance).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let cust = MetricCustomizer::new(net.graph, &h).expect("freeze");
        let m = MetricWeights::perturbed(cust.graph(), "rush-hour", 1, 0xfeed);
        let (p, _) = cust.build(&m).expect("customize");
        // Dijkstra runs on the *reweighted* graph — rebuild it here.
        let g2 = reweight(cust.graph(), &m);
        for s in [0u32, 9, 20] {
            assert_eq!(
                p.engine().distances(s),
                shortest_paths(g2.forward(), s).dist,
                "tree from {s} differs"
            );
        }
    }

    fn reweight(g: &Graph, m: &MetricWeights) -> Graph {
        let arcs = g
            .forward()
            .arcs()
            .iter()
            .zip(&m.weights)
            .map(|(a, &w)| phast_graph::Arc::new(a.head, w))
            .collect();
        Graph::from_csr(phast_graph::Csr::from_raw(g.forward().first().to_vec(), arcs))
    }

    #[test]
    fn fault_seam_corrupts_only_the_named_metric() {
        let net = RoadNetworkConfig::new(6, 6, 17, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let cust = MetricCustomizer::new(net.graph, &h).expect("freeze");
        // Unique name: other tests in this process may also touch the
        // env var, but never with this spec.
        std::env::set_var(CANARY_FAULT_ENV, "seam-target:1");
        let target = MetricWeights::perturbed(cust.graph(), "seam-target", 1, 0xabcd);
        let bystander = MetricWeights::perturbed(cust.graph(), "seam-bystander", 1, 0xabcd);

        // The armed metric builds *successfully* — the corruption is
        // silent — but its answers diverge from the declared weights.
        let (p, h2) = cust.build(&target).expect("corrupted build still succeeds");
        h2.validate().expect("corrupted hierarchy still validates");
        let honest = shortest_paths(reweight(cust.graph(), &target).forward(), 0).dist;
        assert_ne!(
            p.engine().distances(0),
            honest,
            "the seam must make answers wrong for the declared metric"
        );

        // A different name, and a different *version* of the armed name,
        // are untouched.
        let (p, _) = cust.build(&bystander).expect("customize");
        let want = shortest_paths(reweight(cust.graph(), &bystander).forward(), 0).dist;
        assert_eq!(p.engine().distances(0), want);
        let v2 = MetricWeights::perturbed(cust.graph(), "seam-target", 2, 0xabcd);
        let (p, _) = cust.build(&v2).expect("customize");
        let want = shortest_paths(reweight(cust.graph(), &v2).forward(), 0).dist;
        assert_eq!(p.engine().distances(0), want);
        std::env::remove_var(CANARY_FAULT_ENV);
    }
}
