//! The metric-independent topology phase and the customization pass.

use crate::weights::MetricWeights;
use phast_ch::hierarchy::{Hierarchy, NO_MIDDLE};
use phast_graph::{Arc, Csr, Graph, Vertex, Weight, INF};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Below this many arcs a level group is relaxed sequentially — the
/// stand-in rayon spawns real threads per call, so tiny groups are
/// cheaper inline. Parallel and sequential paths produce identical bits.
const PAR_CUTOFF: usize = 4096;

/// A contraction topology frozen independently of any metric.
///
/// Built once per graph + contraction order by [`FrozenTopology::freeze`]:
/// the *elimination closure* of the base graph under the order (every arc
/// contraction would ever create, with no witness pruning — witnesses
/// depend on weights, and this structure must serve them all), plus
/// everything the per-metric pass needs:
///
/// * per closure arc, the **lower triangles** `(u,m),(m,w)` that can
///   shorten it (`m` contracted before both endpoints);
/// * per closure arc, the **base arcs** it directly represents (a CSR,
///   because parallel base arcs stay distinct: which one is minimal
///   depends on the metric);
/// * a **schedule** grouping arcs by the elimination level of their lower
///   endpoint, in which every triangle reads only finished groups.
pub struct FrozenTopology {
    /// Elimination rank per vertex — a fresh fill-reducing order computed
    /// by [`freeze`](FrozenTopology::freeze), *not* the source
    /// hierarchy's contraction rank (that order is tuned for a
    /// witness-pruned shortcut set; replayed without witness pruning its
    /// fill-in explodes superlinearly).
    rank: Vec<u32>,
    /// Elimination level per vertex (recomputed for the closure: adjacency
    /// at contraction time bumps the neighbour above the contracted
    /// vertex, so levels strictly increase along every closure arc).
    level: Vec<u32>,
    /// Closure arc tails, indexed by arc id (creation order).
    arc_tail: Vec<Vertex>,
    /// Closure arc heads, indexed by arc id.
    arc_head: Vec<Vertex>,
    /// Triangle CSR offsets per arc (`tri_first[a]..tri_first[a+1]`).
    tri_first: Vec<u32>,
    /// Lower-triangle first legs: arc id of `(u, m)`.
    tri_lower: Vec<u32>,
    /// Lower-triangle second legs: arc id of `(m, w)`.
    tri_upper: Vec<u32>,
    /// Base-arc CSR offsets per arc (empty range = pure fill-in shortcut).
    orig_first: Vec<u32>,
    /// Base forward-CSR arc indices, grouped by closure arc.
    orig_ids: Vec<u32>,
    /// Arc ids grouped by lower-endpoint level (the processing order).
    sched: Vec<u32>,
    /// Per-level ranges into `sched`, in ascending level order.
    sched_ranges: Vec<std::ops::Range<usize>>,
    /// Base-arc count the metric arity is validated against.
    num_base_arcs: usize,
    /// Closure arcs with no base arc behind them (pure shortcuts).
    num_fill_arcs: usize,
}

/// One metric's customized closure weights, ready to
/// [`apply`](FrozenTopology::apply).
pub struct CustomizedMetric {
    /// Customized weight per closure arc ([`INF`] = no finite path).
    weight: Vec<Weight>,
    /// Winning middle vertex per arc ([`NO_MIDDLE`] when a base arc won).
    middle: Vec<Vertex>,
}

impl CustomizedMetric {
    /// Customized weight per closure arc.
    pub fn weights(&self) -> &[Weight] {
        &self.weight
    }
}

impl FrozenTopology {
    /// Runs a pure elimination game over `graph`, recording the closure
    /// arcs, their lower triangles, and the level schedule.
    ///
    /// The elimination order is computed here, greedily by minimum
    /// fill-degree (`|in| × |out|`, the number of pairs a contraction
    /// inspects) with lazily re-validated heap entries. It is *not* the
    /// hierarchy's contraction rank: that order is chosen under witness
    /// pruning, and replaying it without witnesses (which this structure
    /// must, since witnesses depend on the metric) produces superlinear
    /// fill-in — measured >100× more closure arcs than CH shortcuts on
    /// mid-size road grids. A fill-reducing order keeps the closure within
    /// a small factor of the base graph while remaining exact for every
    /// metric; an explicit nested-dissection skeleton (recursive BFS
    /// bisection) was measured *worse* than this greedy order at every
    /// scale tried (20k: 21.7M vs 12.2M triangles; 100k: 293M vs 210M) —
    /// the greedy order already discovers near-optimal grid separators.
    /// `hierarchy.rank` is only validated and used as a deterministic
    /// tie-break among equal-degree vertices.
    ///
    /// Triangle counts still grow as Θ(n^1.5) on grid-like networks under
    /// *any* order — the top separators of a √n-separator family form
    /// cliques along each root path — so the per-metric customization
    /// advantage over witness-pruned recontraction narrows with scale on
    /// a single core (measured ≥10× at 2·10³ vertices, ~7× at 2·10⁴,
    /// ~3.4× at 10⁵); the level-parallel pass recovers the gap on
    /// multicore hardware, where recontraction stays sequential.
    pub fn freeze(graph: &Graph, hierarchy: &Hierarchy) -> Result<FrozenTopology, String> {
        let n = graph.num_vertices();
        if hierarchy.num_vertices() != n {
            return Err(format!(
                "hierarchy has {} vertices but the graph has {n}",
                hierarchy.num_vertices()
            ));
        }
        {
            let mut seen = vec![false; n];
            for &r in &hierarchy.rank {
                let r = r as usize;
                if r >= n || seen[r] {
                    return Err("hierarchy rank is not a permutation".into());
                }
                seen[r] = true;
            }
        }

        // Dynamic adjacency of the uncontracted graph; entries are
        // (neighbour, closure arc id). Kept exact: a vertex's lists hold
        // only uncontracted neighbours (contraction removes the entries).
        let mut out: Vec<Vec<(Vertex, u32)>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<(Vertex, u32)>> = vec![Vec::new(); n];
        let mut arc_tail: Vec<Vertex> = Vec::with_capacity(graph.num_arcs());
        let mut arc_head: Vec<Vertex> = Vec::with_capacity(graph.num_arcs());
        let mut arc_ids: FxHashMap<(Vertex, Vertex), u32> = FxHashMap::default();

        // Base arcs seed the closure in canonical order; parallel arcs
        // share one closure arc (which of them is minimal is decided per
        // metric), self-loops never lie on a shortest path and are
        // dropped from the closure (their weight slot simply goes unread).
        let mut base_pairs: Vec<(u32, u32)> = Vec::with_capacity(graph.num_arcs());
        for (i, (u, v, _)) in graph.forward().iter_arcs().enumerate() {
            if u == v {
                continue;
            }
            let id = get_or_add(
                u,
                v,
                &mut arc_ids,
                &mut arc_tail,
                &mut arc_head,
                &mut out,
                &mut inn,
            );
            base_pairs.push((id, i as u32));
        }

        // Greedy min fill-degree elimination with a lazy heap: entries are
        // (|in|·|out|, hierarchy rank, vertex); a popped entry whose score
        // no longer matches the live adjacency is re-pushed with the
        // current score (every adjacency change re-pushes the vertex, so
        // a fresh entry always exists). Ties break on the hierarchy rank,
        // then the vertex id — fully deterministic.
        use std::cmp::Reverse;
        let score =
            |inn: &[Vec<(Vertex, u32)>], out: &[Vec<(Vertex, u32)>], v: usize| -> u64 {
                inn[v].len() as u64 * out[v].len() as u64
            };
        let mut heap: std::collections::BinaryHeap<Reverse<(u64, u32, Vertex)>> = (0..n)
            .map(|v| Reverse((score(&inn, &out, v), hierarchy.rank[v], v as Vertex)))
            .collect();
        let mut contracted = vec![false; n];
        let mut rank = vec![0u32; n];
        let mut next_rank = 0u32;
        let mut level = vec![0u32; n];
        let mut tris: Vec<(u32, u32, u32)> = Vec::new();
        let mut touched: Vec<Vertex> = Vec::new();
        while let Some(Reverse((s, hr, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            let live = score(&inn, &out, v as usize);
            if live != s {
                heap.push(Reverse((live, hr, v)));
                continue;
            }
            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            let in_list = std::mem::take(&mut inn[v as usize]);
            let out_list = std::mem::take(&mut out[v as usize]);
            // Every in-above × out-above pair becomes (or reinforces) a
            // closure arc, with the pair of legs recorded as one of its
            // lower triangles.
            for &(u, a1) in &in_list {
                for &(w, a2) in &out_list {
                    if u == w {
                        continue;
                    }
                    let id = get_or_add(
                        u,
                        w,
                        &mut arc_ids,
                        &mut arc_tail,
                        &mut arc_head,
                        &mut out,
                        &mut inn,
                    );
                    tris.push((id, a1, a2));
                }
            }
            // Remove `v` from its neighbours' lists and bump their level
            // above the (now final) level of `v`.
            touched.clear();
            for &(u, _) in &in_list {
                out[u as usize].retain(|&(x, _)| x != v);
                touched.push(u);
            }
            for &(w, _) in &out_list {
                inn[w as usize].retain(|&(x, _)| x != v);
                touched.push(w);
            }
            touched.sort_unstable();
            touched.dedup();
            let bumped = level[v as usize] + 1;
            for &x in &touched {
                if level[x as usize] < bumped {
                    level[x as usize] = bumped;
                }
                // The adjacency of `x` changed (arcs to `v` removed,
                // possibly fill arcs added): refresh its heap entry.
                heap.push(Reverse((
                    score(&inn, &out, x as usize),
                    hierarchy.rank[x as usize],
                    x,
                )));
            }
        }
        debug_assert_eq!(next_rank as usize, n);

        let num_arcs = arc_tail.len();
        let (orig_first, orig_ids) = bucket_by_key(num_arcs, &base_pairs);
        let tri_pairs: Vec<(u32, (u32, u32))> =
            tris.into_iter().map(|(a, l, u)| (a, (l, u))).collect();
        let (tri_first, tri_legs) = bucket_by_key(num_arcs, &tri_pairs);
        let (tri_lower, tri_upper) = tri_legs.into_iter().unzip();

        // The schedule: arcs grouped by the elimination level of their
        // lower endpoint. Each triangle's legs have the contracted middle
        // as *their* lower endpoint, and the middle's level is strictly
        // below the level of both endpoints (they were its neighbours at
        // contraction time) — so a group only ever reads finished groups.
        let lower_level = |a: usize| {
            let (t, h) = (arc_tail[a] as usize, arc_head[a] as usize);
            let low = if rank[t] < rank[h] { t } else { h };
            level[low]
        };
        let sched_pairs: Vec<(u32, u32)> =
            (0..num_arcs).map(|a| (lower_level(a), a as u32)).collect();
        let num_levels = level.iter().max().map_or(0, |&m| m as usize + 1);
        let (group_first, sched) = bucket_by_key(num_levels, &sched_pairs);
        let sched_ranges = group_first
            .windows(2)
            .map(|w| w[0] as usize..w[1] as usize)
            .collect();

        let arcs_with_base = orig_first.windows(2).filter(|w| w[0] != w[1]).count();
        Ok(FrozenTopology {
            rank,
            level,
            arc_tail,
            arc_head,
            tri_first,
            tri_lower,
            tri_upper,
            orig_first,
            orig_ids,
            sched,
            sched_ranges,
            num_base_arcs: graph.num_arcs(),
            num_fill_arcs: num_arcs - arcs_with_base,
        })
    }

    /// Closure arcs (base-derived + fill-in shortcuts).
    pub fn num_arcs(&self) -> usize {
        self.arc_tail.len()
    }

    /// Pure fill-in shortcuts (closure arcs with no base arc behind them).
    pub fn num_fill_arcs(&self) -> usize {
        self.num_fill_arcs
    }

    /// Lower triangles recorded over all closure arcs — the work unit of
    /// one customization pass.
    pub fn num_triangles(&self) -> usize {
        self.tri_lower.len()
    }

    /// Base arcs the metric arity is validated against.
    pub fn num_base_arcs(&self) -> usize {
        self.num_base_arcs
    }

    /// Elimination levels (one customization wave per level).
    pub fn num_levels(&self) -> usize {
        self.sched_ranges.len()
    }

    /// Heap bytes of the frozen layout.
    pub fn memory_bytes(&self) -> usize {
        (self.rank.len() + self.level.len()) * 4
            + (self.arc_tail.len() + self.arc_head.len()) * 4
            + (self.tri_first.len() + self.tri_lower.len() + self.tri_upper.len()) * 4
            + (self.orig_first.len() + self.orig_ids.len()) * 4
            + self.sched.len() * 4
            + self.sched_ranges.len() * std::mem::size_of::<std::ops::Range<usize>>()
    }

    /// The customization pass: seeds every closure arc with the minimum of
    /// its base-arc weights under `metric` (or [`INF`] for pure
    /// shortcuts), then relaxes each level group's arcs over their lower
    /// triangles, in level order, in parallel within a group.
    ///
    /// Deterministic by construction: each arc owns its triangle list,
    /// reads only strictly-lower groups, and ties keep the first minimum
    /// (triangle order is fixed at freeze time).
    pub fn customize(&self, metric: &MetricWeights) -> Result<CustomizedMetric, String> {
        metric.validate(self.num_base_arcs)?;
        let a = self.num_arcs();
        let mut weight: Vec<Weight> = (0..a)
            .map(|i| {
                let r = self.orig_first[i] as usize..self.orig_first[i + 1] as usize;
                self.orig_ids[r]
                    .iter()
                    .map(|&b| metric.weights[b as usize])
                    .min()
                    .unwrap_or(INF)
            })
            .collect();
        let mut middle: Vec<Vertex> = vec![NO_MIDDLE; a];

        let mut updates: Vec<(Weight, Vertex)> = Vec::new();
        for range in &self.sched_ranges {
            let ids = &self.sched[range.clone()];
            let relax = |&aid: &u32| -> (Weight, Vertex) {
                let aid = aid as usize;
                let mut best = weight[aid];
                let mut best_mid = NO_MIDDLE;
                let tr = self.tri_first[aid] as usize..self.tri_first[aid + 1] as usize;
                for t in tr {
                    let lo = self.tri_lower[t] as usize;
                    let hi = self.tri_upper[t] as usize;
                    // Both legs are <= INF, so the u32 sum cannot wrap.
                    let cand = (weight[lo] + weight[hi]).min(INF);
                    if cand < best {
                        best = cand;
                        best_mid = self.arc_head[lo];
                    }
                }
                (best, best_mid)
            };
            if ids.len() >= PAR_CUTOFF {
                updates = ids.par_iter().map(relax).collect();
            } else {
                updates.clear();
                updates.extend(ids.iter().map(relax));
            }
            for (&aid, &(w, m)) in ids.iter().zip(&updates) {
                weight[aid as usize] = w;
                middle[aid as usize] = m;
            }
        }
        Ok(CustomizedMetric { weight, middle })
    }

    /// Materializes a customization as a reweighted base graph plus a
    /// valid [`Hierarchy`] carrying the customized closure — the inputs
    /// `phast_core::PhastBuilder::build_with_hierarchy` assembles sweep
    /// engines from, unchanged.
    pub fn apply(
        &self,
        base: &Graph,
        metric: &MetricWeights,
        custom: &CustomizedMetric,
    ) -> Result<(Graph, Hierarchy), String> {
        metric.validate(self.num_base_arcs)?;
        if base.num_arcs() != self.num_base_arcs {
            return Err(format!(
                "graph has {} arcs but the topology was frozen over {}",
                base.num_arcs(),
                self.num_base_arcs
            ));
        }
        if custom.weight.len() != self.num_arcs() {
            return Err("customized metric is for a different topology".into());
        }
        let n = self.rank.len();

        let arcs = base
            .forward()
            .arcs()
            .iter()
            .zip(&metric.weights)
            .map(|(arc, &w)| Arc::new(arc.head, w))
            .collect();
        let reweighted =
            Graph::from_csr(Csr::from_raw(base.forward().first().to_vec(), arcs));

        // Each closure arc lives at its lower endpoint: tail side in the
        // forward (upward) search graph, head side in the backward one —
        // the exact layout `contract_graph` emits.
        let mut fwd: Vec<(Vertex, Arc, Vertex)> = Vec::new();
        let mut bwd: Vec<(Vertex, Arc, Vertex)> = Vec::new();
        for a in 0..self.num_arcs() {
            let (t, h) = (self.arc_tail[a], self.arc_head[a]);
            let arc_w = custom.weight[a];
            let mid = custom.middle[a];
            if self.rank[t as usize] < self.rank[h as usize] {
                fwd.push((t, Arc::new(h, arc_w), mid));
            } else {
                bwd.push((h, Arc::new(t, arc_w), mid));
            }
        }
        let (forward_up, forward_middle) = csr_with_middles(n, fwd);
        let (backward_up, backward_middle) = csr_with_middles(n, bwd);
        let h = Hierarchy {
            rank: self.rank.clone(),
            level: self.level.clone(),
            forward_up,
            forward_middle,
            backward_up,
            backward_middle,
            num_shortcuts: self.num_fill_arcs,
        };
        h.validate()
            .map_err(|e| format!("customized hierarchy failed validation: {e}"))?;
        Ok((reweighted, h))
    }
}

/// Looks up or creates the closure arc `(u, v)`, threading the dynamic
/// adjacency. Free function (not a method) so the borrow splits cleanly
/// inside the contraction loop.
#[allow(clippy::too_many_arguments)]
fn get_or_add(
    u: Vertex,
    v: Vertex,
    arc_ids: &mut FxHashMap<(Vertex, Vertex), u32>,
    arc_tail: &mut Vec<Vertex>,
    arc_head: &mut Vec<Vertex>,
    out: &mut [Vec<(Vertex, u32)>],
    inn: &mut [Vec<(Vertex, u32)>],
) -> u32 {
    *arc_ids.entry((u, v)).or_insert_with(|| {
        let id = arc_tail.len() as u32;
        arc_tail.push(u);
        arc_head.push(v);
        out[u as usize].push((v, id));
        inn[v as usize].push((u, id));
        id
    })
}

/// Stable counting sort of `(key, value)` pairs into a CSR: returns
/// (`first` of length `buckets + 1`, values grouped by key in input
/// order). The deterministic backbone of the triangle, base-arc and
/// schedule layouts.
fn bucket_by_key<T: Copy>(buckets: usize, pairs: &[(u32, T)]) -> (Vec<u32>, Vec<T>) {
    let mut first = vec![0u32; buckets + 1];
    for &(k, _) in pairs {
        first[k as usize + 1] += 1;
    }
    for i in 1..=buckets {
        first[i] += first[i - 1];
    }
    let mut values: Vec<T> = Vec::with_capacity(pairs.len());
    if let Some(&(_, fill)) = pairs.first() {
        let mut cursor = first.clone();
        values.resize(pairs.len(), fill);
        for &(k, v) in pairs {
            let slot = cursor[k as usize] as usize;
            values[slot] = v;
            cursor[k as usize] += 1;
        }
    }
    (first, values)
}

/// Builds a per-vertex CSR (plus aligned middle array) from unsorted
/// `(tail, arc, middle)` triples with a stable counting sort, mirroring
/// the layout `Csr::from_arc_list` produces.
fn csr_with_middles(
    n: usize,
    list: Vec<(Vertex, Arc, Vertex)>,
) -> (Csr, Vec<Vertex>) {
    let pairs: Vec<(u32, (Arc, Vertex))> =
        list.into_iter().map(|(t, a, m)| (t, (a, m))).collect();
    let (first, values) = bucket_by_key(n, &pairs);
    let (arcs, middles) = values.into_iter().unzip();
    (Csr::from_raw(first, arcs), middles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_ch::{contract_graph, ContractionConfig};
    use phast_core::PhastBuilder;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use proptest::prelude::*;

    fn fixture() -> (Graph, Hierarchy) {
        let net = RoadNetworkConfig::new(6, 6, 11, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        (net.graph, h)
    }

    #[test]
    fn freeze_rejects_mismatched_hierarchy() {
        let (g, h) = fixture();
        let other = RoadNetworkConfig::new(3, 3, 1, Metric::TravelTime).build();
        assert!(FrozenTopology::freeze(&other.graph, &h).is_err());
        let mut bad = h.clone();
        bad.rank[0] = bad.rank[1];
        assert!(FrozenTopology::freeze(&g, &bad).is_err());
    }

    #[test]
    fn closure_levels_strictly_increase_along_arcs() {
        let (g, h) = fixture();
        let f = FrozenTopology::freeze(&g, &h).unwrap();
        assert!(f.num_arcs() >= g.num_arcs() - count_self_loops(&g));
        for a in 0..f.num_arcs() {
            let (t, hd) = (f.arc_tail[a] as usize, f.arc_head[a] as usize);
            let (lo, hi) = if f.rank[t] < f.rank[hd] { (t, hd) } else { (hd, t) };
            assert!(
                f.level[lo] < f.level[hi],
                "closure arc {a} does not go up in level"
            );
        }
    }

    fn count_self_loops(g: &Graph) -> usize {
        g.forward().iter_arcs().filter(|&(u, v, _)| u == v).count()
    }

    #[test]
    fn triangles_only_reference_lower_levels() {
        let (g, h) = fixture();
        let f = FrozenTopology::freeze(&g, &h).unwrap();
        let lower_level = |a: usize| {
            let (t, hd) = (f.arc_tail[a] as usize, f.arc_head[a] as usize);
            f.level[if f.rank[t] < f.rank[hd] { t } else { hd }]
        };
        assert!(f.num_triangles() > 0, "road networks must produce fill-in");
        for a in 0..f.num_arcs() {
            let own = lower_level(a);
            for t in f.tri_first[a] as usize..f.tri_first[a + 1] as usize {
                assert!(lower_level(f.tri_lower[t] as usize) < own);
                assert!(lower_level(f.tri_upper[t] as usize) < own);
                // Both legs share the contracted middle vertex.
                assert_eq!(
                    f.arc_head[f.tri_lower[t] as usize],
                    f.arc_tail[f.tri_upper[t] as usize]
                );
            }
        }
    }

    #[test]
    fn customization_is_deterministic() {
        let (g, h) = fixture();
        let f = FrozenTopology::freeze(&g, &h).unwrap();
        let m = MetricWeights::perturbed(&g, "p", 1, 99);
        let a = f.customize(&m).unwrap();
        let b = f.customize(&m).unwrap();
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.middle, b.middle);
    }

    #[test]
    fn customize_rejects_wrong_arity() {
        let (g, h) = fixture();
        let f = FrozenTopology::freeze(&g, &h).unwrap();
        let m = MetricWeights::new("short", 1, vec![1; 3]).unwrap();
        assert!(f.customize(&m).is_err());
    }

    #[test]
    fn customized_phast_matches_dijkstra_on_gnm() {
        // Unstructured random digraphs: correctness must not depend on
        // road-like structure (the paper's own correctness bar).
        for seed in [1u64, 2, 3] {
            let g = gnm(180, 900, 1000, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            let f = FrozenTopology::freeze(&g, &h).unwrap();
            let m = MetricWeights::perturbed(&g, "p", 1, seed.wrapping_mul(77));
            let c = f.customize(&m).unwrap();
            let (g2, h2) = f.apply(&g, &m, &c).unwrap();
            let p = PhastBuilder::new().build_with_hierarchy(&g2, &h2);
            for s in [0u32, 50, 179] {
                assert_eq!(
                    p.engine().distances(s),
                    shortest_paths(g2.forward(), s).dist,
                    "gnm seed {seed}, tree from {s}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(12))]

        /// Random graph, random metric: customized PHAST == Dijkstra.
        #[test]
        fn customized_matches_dijkstra(
            n in 2usize..60,
            extra in 0usize..180,
            seed in 0u64..1_000,
        ) {
            let g = gnm(n, n + extra, 1000, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            let f = FrozenTopology::freeze(&g, &h).unwrap();
            let m = MetricWeights::perturbed(&g, "prop", 1, seed ^ 0xABCD);
            let c = f.customize(&m).unwrap();
            let (g2, h2) = f.apply(&g, &m, &c).unwrap();
            let p = PhastBuilder::new().build_with_hierarchy(&g2, &h2);
            let s = (seed % n as u64) as u32;
            prop_assert_eq!(p.engine().distances(s), shortest_paths(g2.forward(), s).dist);
        }
    }
}
