//! Versioned metric artifacts: one `u32` weight per base arc.

use phast_graph::{Graph, Weight, MAX_WEIGHT};

/// A named, versioned weight assignment for a base graph.
///
/// Weights are indexed by the graph's **canonical forward-CSR arc order**
/// (the order `Graph::forward().arcs()` iterates) — the same order DIMACS
/// import and JSON artifacts preserve, so a metric produced against a
/// graph file stays valid for every instance preprocessed from it.
///
/// Versions are opaque monotone labels chosen by the producer (a traffic
/// feed's generation counter, a timestamp, ...); `phast-store` persists
/// any number of `(name, version)` metrics alongside one topology
/// artifact, and `phast-serve` reports the epoch it derived from each
/// swap.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricWeights {
    /// Human-readable metric name (e.g. `"travel-time"`, `"rush-hour"`).
    pub name: String,
    /// Producer-chosen version label for this weight generation.
    pub version: u64,
    /// One weight per base arc, in canonical forward-CSR arc order.
    pub weights: Vec<Weight>,
}

impl MetricWeights {
    /// Builds a metric after validating every weight against
    /// [`MAX_WEIGHT`] (the bound the wrap-free sweep kernels assume).
    pub fn new(
        name: impl Into<String>,
        version: u64,
        weights: Vec<Weight>,
    ) -> Result<MetricWeights, String> {
        let m = MetricWeights {
            name: name.into(),
            version,
            weights,
        };
        m.validate_weights()?;
        Ok(m)
    }

    /// Checks that the metric has exactly one in-range weight per base
    /// arc. Every consumer (customization, the store decoder) calls this
    /// before trusting the data.
    pub fn validate(&self, num_base_arcs: usize) -> Result<(), String> {
        if self.weights.len() != num_base_arcs {
            return Err(format!(
                "metric `{}` v{} has {} weights but the graph has {} arcs",
                self.name,
                self.version,
                self.weights.len(),
                num_base_arcs
            ));
        }
        self.validate_weights()
    }

    fn validate_weights(&self) -> Result<(), String> {
        for (i, &w) in self.weights.iter().enumerate() {
            if w > MAX_WEIGHT {
                return Err(format!(
                    "metric `{}` v{}: weight {w} of arc {i} exceeds MAX_WEIGHT ({MAX_WEIGHT})",
                    self.name, self.version
                ));
            }
        }
        Ok(())
    }

    /// A deterministic random perturbation of `graph`'s own weights: each
    /// arc is scaled by a seed-derived factor in `[0.5, 2.0]`, clamped to
    /// [`MAX_WEIGHT`]. The same `(graph, seed)` always produces the same
    /// metric — the differential tests, the chaos harness and the CI
    /// smoke all lean on that.
    pub fn perturbed(
        graph: &Graph,
        name: impl Into<String>,
        version: u64,
        seed: u64,
    ) -> MetricWeights {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let weights = graph
            .forward()
            .arcs()
            .iter()
            .map(|a| {
                state = splitmix64(state);
                // Percentage factor in 50..=200.
                let pct = 50 + state % 151;
                ((a.weight as u64 * pct / 100).min(MAX_WEIGHT as u64)) as Weight
            })
            .collect();
        MetricWeights {
            name: name.into(),
            version,
            weights,
        }
    }
}

/// SplitMix64 step — a tiny, dependency-free deterministic generator.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn new_rejects_oversized_weights() {
        assert!(MetricWeights::new("m", 1, vec![1, MAX_WEIGHT]).is_ok());
        assert!(MetricWeights::new("m", 1, vec![MAX_WEIGHT + 1]).is_err());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let m = MetricWeights::new("m", 1, vec![1, 2, 3]).unwrap();
        assert!(m.validate(3).is_ok());
        assert!(m.validate(4).is_err());
    }

    #[test]
    fn perturbed_is_deterministic_and_in_range() {
        let net = RoadNetworkConfig::new(5, 5, 7, Metric::TravelTime).build();
        let a = MetricWeights::perturbed(&net.graph, "p", 1, 42);
        let b = MetricWeights::perturbed(&net.graph, "p", 1, 42);
        let c = MetricWeights::perturbed(&net.graph, "p", 1, 43);
        assert_eq!(a, b, "same seed must reproduce the metric");
        assert_ne!(a.weights, c.weights, "different seed must perturb differently");
        assert!(a.validate(net.graph.num_arcs()).is_ok());
    }
}
