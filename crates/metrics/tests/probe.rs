//! Scaling probe for the freeze/customize pipeline: prints closure size,
//! triangle count and phase timings at growing grid sizes. Ignored by
//! default — run with `cargo test --release -p phast-metrics --test probe
//! -- --ignored --nocapture` when tuning the elimination order.

use phast_ch::{contract_graph, ContractionConfig};
use phast_metrics::{MetricCustomizer, MetricWeights};
use std::time::Instant;

#[test]
#[ignore]
fn probe_scaling() {
    for side in [25u32, 45, 64] {
        let net = phast_graph::gen::RoadNetworkConfig::new(
            side,
            side,
            4,
            phast_graph::gen::Metric::TravelTime,
        )
        .build();
        let g = net.graph;
        let t0 = Instant::now();
        let h = contract_graph(&g, &ContractionConfig::default());
        let t_contract = t0.elapsed();
        let t0 = Instant::now();
        let c = MetricCustomizer::new(g.clone(), &h).unwrap();
        let t_freeze = t0.elapsed();
        let f = c.frozen();
        eprintln!(
            "n={} ch_shortcuts={} closure_arcs={} fill={} tris={} levels={} contract={:?} freeze={:?}",
            g.num_vertices(),
            h.num_shortcuts,
            f.num_arcs(),
            f.num_fill_arcs(),
            f.num_triangles(),
            f.num_levels(),
            t_contract,
            t_freeze
        );
        let m = MetricWeights::perturbed(&g, "p", 1, 7);
        let t0 = Instant::now();
        let cm = f.customize(&m).unwrap();
        let t_cust = t0.elapsed();
        let t0 = Instant::now();
        let _ = f.apply(&g, &m, &cm).unwrap();
        let t_apply = t0.elapsed();
        eprintln!("  customize={t_cust:?} apply={t_apply:?}");
    }
}
