//! Incremental graph construction with input sanitation.

use crate::csr::{Csr, Graph};
use crate::{Arc, Vertex, Weight, MAX_WEIGHT};

/// Builds a [`Graph`] from individually added arcs, handling the dirty-input
/// cases real road data contains: parallel arcs (keep the shortest),
/// self-loops (dropped — they can never lie on a shortest path with
/// non-negative weights), and undirected edges (added as two arcs).
///
/// ```
/// use phast_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1, 7)   // one-way street
///  .add_edge(1, 2, 3); // two-way street (two arcs)
/// let g = b.build();
/// assert_eq!(g.num_arcs(), 3);
/// assert_eq!(g.out(1).len(), 1);
/// assert_eq!(g.incoming(1).len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    arcs: Vec<(Vertex, Arc)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 range");
        Self {
            num_vertices: n,
            arcs: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Keep self-loops instead of silently dropping them (off by default).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arcs added so far (before dedup).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Adds a directed arc `u -> v` with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `w > MAX_WEIGHT`.
    pub fn add_arc(&mut self, u: Vertex, v: Vertex, w: Weight) -> &mut Self {
        assert!((u as usize) < self.num_vertices, "tail out of range");
        assert!((v as usize) < self.num_vertices, "head out of range");
        assert!(w <= MAX_WEIGHT, "weight exceeds MAX_WEIGHT");
        if u == v && !self.keep_self_loops {
            return self;
        }
        self.arcs.push((u, Arc::new(v, w)));
        self
    }

    /// Adds both `u -> v` and `v -> u` with weight `w`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex, w: Weight) -> &mut Self {
        self.add_arc(u, v, w);
        self.add_arc(v, u, w);
        self
    }

    /// Finishes construction: deduplicates parallel arcs keeping the minimum
    /// weight, then builds the CSR pair.
    pub fn build(mut self) -> Graph {
        // Sort by (tail, head, weight); dedup keeps the first (lightest)
        // occurrence of each (tail, head).
        self.arcs
            .sort_unstable_by_key(|&(u, a)| (u, a.head, a.weight));
        self.arcs.dedup_by_key(|&mut (u, a)| (u, a.head));
        Graph::from_csr(Csr::from_arc_list(self.num_vertices, self.arcs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_arcs_keeping_min() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1, 9).add_arc(0, 1, 3).add_arc(0, 1, 7);
        let g = b.build();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.out(0), &[Arc::new(1, 3)]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 0, 1).add_arc(0, 1, 2);
        assert_eq!(b.build().num_arcs(), 1);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new(2).keep_self_loops(true);
        b.add_arc(0, 0, 1);
        assert_eq!(b.build().num_arcs(), 1);
    }

    #[test]
    fn add_edge_is_two_arcs() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 4);
        let g = b.build();
        assert_eq!(g.out(0), &[Arc::new(2, 4)]);
        assert_eq!(g.out(2), &[Arc::new(0, 4)]);
    }

    #[test]
    #[should_panic(expected = "weight exceeds MAX_WEIGHT")]
    fn rejects_oversized_weight() {
        GraphBuilder::new(2).add_arc(0, 1, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "head out of range")]
    fn rejects_bad_head() {
        GraphBuilder::new(2).add_arc(0, 5, 1);
    }
}
