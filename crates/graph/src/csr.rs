//! Compressed-sparse-row graph representations.
//!
//! The paper (Section IV-A) represents each of the two search graphs with a
//! pair of arrays: `arclist`, the arcs sorted by tail ID so that the
//! outgoing arcs of a vertex are consecutive in memory, and `first`, indexed
//! by vertex ID, where `first[v]` is the position in `arclist` of the first
//! outgoing arc of `v`. A sentinel at `first[n]` avoids special cases.
//!
//! [`Csr`] is that structure. [`Graph`] pairs a forward [`Csr`] with the
//! reverse ("incoming-arc") view that the PHAST linear sweep scans.

use crate::segment::Segment;
use crate::{Arc, Vertex, Weight};
use serde::{Deserialize, Serialize};

/// An arc of the reverse representation: the **tail** of an original arc
/// `(tail, v)`, stored in the incoming-arc list of `v`.
///
/// Layout-identical to [`Arc`]; a separate type keeps "this field is the
/// tail, not the head" visible in APIs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(C)]
pub struct ReverseArc {
    /// Source (tail) vertex of the original arc.
    pub tail: Vertex,
    /// Non-negative length of the arc.
    pub weight: Weight,
}

impl ReverseArc {
    /// Creates a new reverse arc.
    #[inline]
    pub const fn new(tail: Vertex, weight: Weight) -> Self {
        Self { tail, weight }
    }
}

/// A static directed graph in CSR form: `first[v]..first[v+1]` indexes the
/// slice of `arclist` holding the outgoing arcs of `v`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    first: Segment<u32>,
    arcs: Segment<Arc>,
}

impl Csr {
    /// Builds a CSR directly from its two arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays do not form a valid CSR: `first` must be
    /// monotonically non-decreasing, start at 0, and end with the sentinel
    /// `arcs.len()`; every arc head must be `< n`.
    pub fn from_raw(first: Vec<u32>, arcs: Vec<Arc>) -> Self {
        Self::try_from_raw(first, arcs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::from_raw`]: the same structural checks, but a
    /// malformed pair of arrays (e.g. deserialized from an untrusted or
    /// corrupted artifact) yields an error instead of a panic.
    pub fn try_from_raw(first: Vec<u32>, arcs: Vec<Arc>) -> Result<Self, String> {
        Self::try_from_segments(first.into(), arcs.into())
    }

    /// [`Self::try_from_raw`] over [`Segment`] storage — the constructor
    /// the zero-copy artifact loader uses, running the identical checks
    /// on arrays borrowed straight out of a file mapping.
    pub fn try_from_segments(first: Segment<u32>, arcs: Segment<Arc>) -> Result<Self, String> {
        if first.is_empty() {
            return Err("first[] must contain the sentinel".into());
        }
        if first[0] != 0 {
            return Err("first[0] must be 0".into());
        }
        if *first.last().unwrap() as usize != arcs.len() {
            return Err("first[n] must be the sentinel arcs.len()".into());
        }
        if !first.windows(2).all(|w| w[0] <= w[1]) {
            return Err("first[] must be non-decreasing".into());
        }
        let n = first.len() - 1;
        if !arcs.iter().all(|a| (a.head as usize) < n) {
            return Err("arc head out of range".into());
        }
        Ok(Self { first, arcs })
    }

    /// Builds a CSR from an unsorted list of `(tail, Arc)` pairs using a
    /// counting sort; `n` is the number of vertices.
    pub fn from_arc_list(n: usize, mut list: Vec<(Vertex, Arc)>) -> Self {
        let mut first = vec![0u32; n + 1];
        for &(tail, _) in &list {
            assert!((tail as usize) < n, "arc tail out of range");
            first[tail as usize + 1] += 1;
        }
        for v in 0..n {
            first[v + 1] += first[v];
        }
        // Stable counting sort into place; `cursor` tracks the next free slot
        // per tail.
        let mut cursor: Vec<u32> = first[..n].to_vec();
        let mut arcs = vec![Arc::new(0, 0); list.len()];
        for (tail, arc) in list.drain(..) {
            let slot = cursor[tail as usize];
            cursor[tail as usize] += 1;
            arcs[slot as usize] = arc;
        }
        Self::from_raw(first, arcs)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.first.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The outgoing arcs of `v`, consecutive in memory.
    #[inline]
    pub fn out(&self, v: Vertex) -> &[Arc] {
        let lo = self.first[v as usize] as usize;
        let hi = self.first[v as usize + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.first[v as usize + 1] - self.first[v as usize]) as usize
    }

    /// The `first` index array, including the sentinel at position `n`.
    #[inline]
    pub fn first(&self) -> &[u32] {
        &self.first
    }

    /// The full arc list, sorted by tail.
    #[inline]
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Index range of `v`'s arcs within [`Self::arcs`].
    #[inline]
    pub fn arc_range(&self, v: Vertex) -> std::ops::Range<usize> {
        self.first[v as usize] as usize..self.first[v as usize + 1] as usize
    }

    /// Iterates over all arcs as `(tail, head, weight)` triples.
    pub fn iter_arcs(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        (0..self.num_vertices() as Vertex)
            .flat_map(move |v| self.out(v).iter().map(move |a| (v, a.head, a.weight)))
    }

    /// Builds the reverse CSR: for each vertex, its **incoming** arcs, each
    /// recording the tail of the original arc. Incoming arcs are sorted by
    /// head ID (the CSR order), matching the paper's downward-graph layout.
    pub fn reversed(&self) -> ReverseCsr {
        let n = self.num_vertices();
        let mut first = vec![0u32; n + 1];
        for a in self.arcs.iter() {
            first[a.head as usize + 1] += 1;
        }
        for v in 0..n {
            first[v + 1] += first[v];
        }
        let mut cursor: Vec<u32> = first[..n].to_vec();
        let mut arcs = vec![ReverseArc::new(0, 0); self.arcs.len()];
        for (tail, head, weight) in self.iter_arcs() {
            let slot = cursor[head as usize];
            cursor[head as usize] += 1;
            arcs[slot as usize] = ReverseArc::new(tail, weight);
        }
        ReverseCsr {
            first: first.into(),
            arcs: arcs.into(),
        }
    }

    /// Returns the same graph with every arc flipped (`(u,v)` becomes
    /// `(v,u)`), as a forward CSR.
    pub fn transposed(&self) -> Csr {
        let list: Vec<(Vertex, Arc)> = self
            .iter_arcs()
            .map(|(u, v, w)| (v, Arc::new(u, w)))
            .collect();
        Csr::from_arc_list(self.num_vertices(), list)
    }

    /// Total heap bytes used by the two arrays (for the memory columns of
    /// Tables III and VI).
    pub fn memory_bytes(&self) -> usize {
        self.first.len() * std::mem::size_of::<u32>()
            + self.arcs.len() * std::mem::size_of::<Arc>()
    }
}

/// The reverse ("incoming arcs") CSR; structurally identical to [`Csr`] but
/// stores [`ReverseArc`]s so the tail semantics are explicit.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReverseCsr {
    first: Segment<u32>,
    arcs: Segment<ReverseArc>,
}

impl ReverseCsr {
    /// Builds a reverse CSR from an unsorted list of `(head, ReverseArc)`
    /// pairs using a counting sort; `n` is the number of vertices.
    pub fn from_arc_list(n: usize, list: Vec<(Vertex, ReverseArc)>) -> Self {
        let fwd: Vec<(Vertex, Arc)> = list
            .into_iter()
            .map(|(head, r)| (head, Arc::new(r.tail, r.weight)))
            .collect();
        let csr = Csr::from_arc_list(n, fwd);
        // Reinterpret: a Csr keyed by head whose Arc.head field holds tails
        // is exactly a ReverseCsr.
        Self {
            first: csr.first,
            arcs: csr
                .arcs
                .iter()
                .map(|a| ReverseArc::new(a.head, a.weight))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Builds a reverse CSR directly from its two arrays, with the same
    /// structural checks as [`Csr::try_from_raw`] (every stored tail must
    /// be `< n`).
    pub fn try_from_raw(first: Vec<u32>, arcs: Vec<ReverseArc>) -> Result<Self, String> {
        Self::try_from_segments(first.into(), arcs.into())
    }

    /// [`Self::try_from_raw`] over [`Segment`] storage, for arrays
    /// borrowed out of a file mapping by the zero-copy artifact loader.
    pub fn try_from_segments(
        first: Segment<u32>,
        arcs: Segment<ReverseArc>,
    ) -> Result<Self, String> {
        if first.is_empty() {
            return Err("first[] must contain the sentinel".into());
        }
        if first[0] != 0 {
            return Err("first[0] must be 0".into());
        }
        if *first.last().unwrap() as usize != arcs.len() {
            return Err("first[n] must be the sentinel arcs.len()".into());
        }
        if !first.windows(2).all(|w| w[0] <= w[1]) {
            return Err("first[] must be non-decreasing".into());
        }
        let n = first.len() - 1;
        if !arcs.iter().all(|a| (a.tail as usize) < n) {
            return Err("arc tail out of range".into());
        }
        Ok(Self { first, arcs })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.first.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The incoming arcs of `v`, consecutive in memory.
    #[inline]
    pub fn incoming(&self, v: Vertex) -> &[ReverseArc] {
        let lo = self.first[v as usize] as usize;
        let hi = self.first[v as usize + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.first[v as usize + 1] - self.first[v as usize]) as usize
    }

    /// The `first` index array, including the sentinel.
    #[inline]
    pub fn first(&self) -> &[u32] {
        &self.first
    }

    /// The full incoming-arc list, sorted by head.
    #[inline]
    pub fn arcs(&self) -> &[ReverseArc] {
        &self.arcs
    }

    /// Index range of `v`'s incoming arcs within [`Self::arcs`].
    #[inline]
    pub fn arc_range(&self, v: Vertex) -> std::ops::Range<usize> {
        self.first[v as usize] as usize..self.first[v as usize + 1] as usize
    }

    /// Total heap bytes used by the two arrays.
    pub fn memory_bytes(&self) -> usize {
        self.first.len() * std::mem::size_of::<u32>()
            + self.arcs.len() * std::mem::size_of::<ReverseArc>()
    }
}

/// A directed graph with both the forward (outgoing) and reverse (incoming)
/// CSR views, which shortest-path code wants simultaneously.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    forward: Csr,
    reverse: ReverseCsr,
}

impl Graph {
    /// Wraps a forward CSR, deriving the reverse view.
    pub fn from_csr(forward: Csr) -> Self {
        let reverse = forward.reversed();
        Self { forward, reverse }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.forward.num_vertices()
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.forward.num_arcs()
    }

    /// Forward CSR (outgoing arcs).
    #[inline]
    pub fn forward(&self) -> &Csr {
        &self.forward
    }

    /// Reverse CSR (incoming arcs).
    #[inline]
    pub fn reverse(&self) -> &ReverseCsr {
        &self.reverse
    }

    /// Outgoing arcs of `v`.
    #[inline]
    pub fn out(&self, v: Vertex) -> &[Arc] {
        self.forward.out(v)
    }

    /// Incoming arcs of `v`.
    #[inline]
    pub fn incoming(&self, v: Vertex) -> &[ReverseArc] {
        self.reverse.incoming(v)
    }

    /// The graph with all arcs flipped.
    pub fn transposed(&self) -> Graph {
        Graph::from_csr(self.forward.transposed())
    }

    /// Total heap bytes of both views.
    pub fn memory_bytes(&self) -> usize {
        self.forward.memory_bytes() + self.reverse.memory_bytes()
    }

    /// Checks that the two views describe the same arc multiset — the
    /// invariant deserialization could silently break.
    pub fn validate(&self) -> Result<(), String> {
        if self.forward.num_vertices() != self.reverse.num_vertices() {
            return Err("forward/reverse vertex counts differ".into());
        }
        if self.forward.num_arcs() != self.reverse.num_arcs() {
            return Err("forward/reverse arc counts differ".into());
        }
        let mut fwd: Vec<(Vertex, Vertex, Weight)> = self.forward.iter_arcs().collect();
        let mut rev: Vec<(Vertex, Vertex, Weight)> = (0..self.num_vertices() as Vertex)
            .flat_map(|v| {
                self.reverse
                    .incoming(v)
                    .iter()
                    .map(move |a| (a.tail, v, a.weight))
                    .collect::<Vec<_>>()
            })
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        if fwd != rev {
            return Err("forward and reverse views disagree".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1 (2), 0 -> 2 (1), 1 -> 3 (1), 2 -> 3 (5)
        Csr::from_arc_list(
            4,
            vec![
                (0, Arc::new(1, 2)),
                (0, Arc::new(2, 1)),
                (1, Arc::new(3, 1)),
                (2, Arc::new(3, 5)),
            ],
        )
    }

    #[test]
    fn csr_basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.out(1), &[Arc::new(3, 1)]);
        assert_eq!(g.first().len(), 5);
        assert_eq!(*g.first().last().unwrap(), 4);
    }

    #[test]
    fn counting_sort_is_stable() {
        let g = Csr::from_arc_list(
            2,
            vec![
                (0, Arc::new(1, 10)),
                (0, Arc::new(1, 20)),
                (0, Arc::new(1, 30)),
            ],
        );
        assert_eq!(
            g.out(0),
            &[Arc::new(1, 10), Arc::new(1, 20), Arc::new(1, 30)]
        );
    }

    #[test]
    fn reverse_view_matches_forward() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_arcs(), g.num_arcs());
        assert_eq!(r.incoming(0), &[]);
        assert_eq!(
            r.incoming(3),
            &[ReverseArc::new(1, 1), ReverseArc::new(2, 5)]
        );
        assert_eq!(r.incoming(1), &[ReverseArc::new(0, 2)]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = diamond();
        assert_eq!(g.transposed().transposed(), g);
    }

    #[test]
    fn iter_arcs_yields_all() {
        let g = diamond();
        let mut arcs: Vec<_> = g.iter_arcs().collect();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_arc_list(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn single_vertex_no_arcs() {
        let g = Csr::from_arc_list(1, vec![]);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.out(0), &[]);
    }

    #[test]
    #[should_panic(expected = "arc head out of range")]
    fn rejects_out_of_range_head() {
        let _ = Csr::from_arc_list(2, vec![(0, Arc::new(7, 1))]);
    }

    #[test]
    #[should_panic(expected = "arc tail out of range")]
    fn rejects_out_of_range_tail() {
        let _ = Csr::from_arc_list(2, vec![(9, Arc::new(0, 1))]);
    }

    #[test]
    fn graph_pairs_views() {
        let g = Graph::from_csr(diamond());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.out(0).len(), 2);
        assert_eq!(g.incoming(3).len(), 2);
        assert!(g.memory_bytes() > 0);
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_inconsistent_views() {
        // Deserialize a graph whose reverse view lies about a weight.
        let g = Graph::from_csr(diamond());
        let mut json = serde_json::to_value(&g).unwrap();
        json["reverse"]["arcs"][0]["weight"] = serde_json::json!(9999);
        let tampered: Graph = serde_json::from_value(json).unwrap();
        assert!(tampered.validate().is_err());
    }
}
