//! DFS vertex layout.
//!
//! Section II-A: "reordering the vertices according to a simple depth first
//! search already gives good results" — neighbouring vertices get nearby IDs,
//! which cuts cache misses for every traversal-based algorithm. The DFS runs
//! on the *undirected* version of the graph (arcs followed in both
//! directions) so one pass covers weakly-connected structure, restarting from
//! the lowest-numbered unvisited vertex until every vertex is discovered.

use crate::csr::Graph;
use crate::reorder::Permutation;
use crate::Vertex;

/// Returns the order in which an iterative DFS from `start` (then from each
/// subsequent unvisited vertex) discovers vertices, following both outgoing
/// and incoming arcs.
pub fn dfs_order(g: &Graph, start: Vertex) -> Vec<Vertex> {
    let n = g.num_vertices();
    assert!(n == 0 || (start as usize) < n, "start vertex out of range");
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<Vertex> = Vec::new();
    let mut roots = std::iter::once(start).chain(0..n as Vertex);
    while order.len() < n {
        // Find the next unvisited root.
        let root = loop {
            match roots.next() {
                Some(r) if !visited[r as usize] => break r,
                Some(_) => continue,
                None => unreachable!("roots exhausted before covering graph"),
            }
        };
        stack.push(root);
        while let Some(v) = stack.pop() {
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            order.push(v);
            // Push neighbours in reverse so lower-ID neighbours are explored
            // first; both directions make the traversal undirected.
            for a in g.incoming(v).iter().rev() {
                if !visited[a.tail as usize] {
                    stack.push(a.tail);
                }
            }
            for a in g.out(v).iter().rev() {
                if !visited[a.head as usize] {
                    stack.push(a.head);
                }
            }
        }
    }
    order
}

/// The paper's *DFS layout*: new IDs assigned in DFS discovery order.
pub fn dfs_layout(g: &Graph, start: Vertex) -> Permutation {
    Permutation::from_order(&dfs_order(g, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn covers_all_vertices_even_disconnected() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(4, 5, 1);
        let g = b.build();
        let order = dfs_order(&g, 0);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn discovery_order_is_depth_first_on_a_path() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(2, 3, 1);
        let g = b.build();
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn follows_incoming_arcs_too() {
        // Directed 1 -> 0; DFS from 0 must still reach 1.
        let mut b = GraphBuilder::new(2);
        b.add_arc(1, 0, 1);
        let g = b.build();
        assert_eq!(dfs_order(&g, 0), vec![0, 1]);
    }

    #[test]
    fn layout_is_valid_permutation() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 2, 1).add_edge(2, 4, 1).add_edge(1, 3, 1);
        let g = b.build();
        let p = dfs_layout(&g, 2);
        assert_eq!(p.len(), 5);
        assert_eq!(p.map(2), 0); // start gets ID 0
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert!(dfs_order(&g, 0).is_empty());
    }
}
