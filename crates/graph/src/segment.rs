//! Shared array storage: heap-owned or borrowed out of a memory mapping.
//!
//! The PHAST artifacts are "preprocess once, sweep millions of times"
//! assets: a serving replica restarting after a crash should not have to
//! copy hundreds of megabytes of CSR arrays out of the page cache just to
//! get back on the air. [`Segment<T>`] is the storage type that makes the
//! zero-copy load possible without forking the data structures: a
//! [`Csr`](crate::csr::Csr) built from `Vec`s owns its arrays exactly as
//! before, while one built by the store's mmap loader borrows the same
//! slices directly out of the mapping, kept alive by a shared owner
//! handle. Everything downstream sees `&[T]` either way.

use serde::{DeError, Deserialize, Serialize, Value};
use std::any::Any;
use std::ops::Deref;
use std::sync::Arc as SharedArc;

/// The keep-alive handle of a mapped segment: typically the store's mmap
/// wrapper. The segment never looks inside it — holding the [`SharedArc`]
/// is what keeps the mapped bytes valid.
pub type SegmentOwner = SharedArc<dyn Any + Send + Sync>;

enum Repr<T> {
    /// Ordinary heap storage (the default; what `Vec`-built graphs use).
    Owned(Box<[T]>),
    /// A borrowed slice whose backing memory is kept alive by `owner`
    /// (e.g. a read-only file mapping).
    Mapped {
        ptr: *const T,
        len: usize,
        _owner: SegmentOwner,
    },
}

/// An immutable array that is either heap-owned or borrowed from a shared
/// memory mapping. Dereferences to `&[T]`; construction from `Vec<T>` /
/// `Box<[T]>` is free.
pub struct Segment<T: 'static> {
    repr: Repr<T>,
}

// SAFETY: a Segment is immutable after construction. The Owned variant is
// Send/Sync whenever Box<[T]> is; the Mapped variant points into memory
// owned by the `Send + Sync` owner handle and is only ever read, so the
// usual `&[T]` bounds apply.
unsafe impl<T: Send + Sync> Send for Segment<T> {}
// SAFETY: see above — shared access is read-only slice access.
unsafe impl<T: Send + Sync> Sync for Segment<T> {}

impl<T> Segment<T> {
    /// Wraps a slice that lives inside memory owned by `owner`.
    ///
    /// # Safety
    ///
    /// `ptr` must point to `len` consecutive, initialized, properly
    /// aligned values of `T` that remain valid and unmodified for as long
    /// as `owner` (or any clone of it) is alive.
    pub unsafe fn from_mapped(ptr: *const T, len: usize, owner: SegmentOwner) -> Self {
        Segment {
            repr: Repr::Mapped {
                ptr,
                len,
                _owner: owner,
            },
        }
    }

    /// True if this segment borrows from a mapping rather than owning its
    /// storage (observability for tests and load-path reporting).
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(b) => b,
            // SAFETY: upheld by the `from_mapped` contract — the owner
            // handle we hold keeps ptr..ptr+len valid and immutable.
            Repr::Mapped { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
        }
    }
}

impl<T> Deref for Segment<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for Segment<T> {
    fn from(v: Vec<T>) -> Self {
        Segment {
            repr: Repr::Owned(v.into_boxed_slice()),
        }
    }
}

impl<T> From<Box<[T]>> for Segment<T> {
    fn from(b: Box<[T]>) -> Self {
        Segment {
            repr: Repr::Owned(b),
        }
    }
}

impl<T: Clone> Clone for Segment<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(b) => Segment {
                repr: Repr::Owned(b.clone()),
            },
            Repr::Mapped { ptr, len, _owner } => Segment {
                repr: Repr::Mapped {
                    ptr: *ptr,
                    len: *len,
                    _owner: SharedArc::clone(_owner),
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Segment<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for Segment<T> {}

impl<T: Serialize> Serialize for Segment<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Segment<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Segment::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_equality() {
        let s: Segment<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(!s.is_mapped());
        let t = s.clone();
        assert_eq!(s, t);
        let v = s.to_value();
        let back = Segment::<u32>::from_value(&v).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn mapped_segment_borrows_and_keeps_owner_alive() {
        let backing: SharedArc<dyn Any + Send + Sync> =
            SharedArc::new(vec![7u32, 8, 9].into_boxed_slice());
        let ptr = backing
            .downcast_ref::<Box<[u32]>>()
            .unwrap()
            .as_ptr();
        // SAFETY: ptr/len describe the boxed slice inside `backing`,
        // which the segment keeps alive via the owner handle.
        let s = unsafe { Segment::from_mapped(ptr, 3, SharedArc::clone(&backing)) };
        drop(backing);
        assert!(s.is_mapped());
        assert_eq!(&s[..], &[7, 8, 9]);
        let owned: Segment<u32> = vec![7u32, 8, 9].into();
        assert_eq!(s, owned);
        let clone = s.clone();
        drop(s);
        assert_eq!(&clone[..], &[7, 8, 9]);
    }
}
