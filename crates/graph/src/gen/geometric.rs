//! Random geometric (unit-disk) graphs.
//!
//! A third workload class between road networks and uniform random
//! digraphs: vertices are uniform points in a square, connected when
//! closer than a radius. Geometric graphs are near-planar and have
//! bounded *doubling* dimension but, lacking a road hierarchy, a larger
//! highway dimension than road networks — contraction works, but less
//! well. Useful for the graph-class experiments and for tests that need
//! spatial structure without the grid generator's regularity.

use crate::components::largest_scc;
use crate::csr::Graph;
use crate::{GraphBuilder, Vertex, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for the unit-disk generator.
#[derive(Clone, Debug)]
pub struct UnitDiskConfig {
    /// Number of points before SCC extraction.
    pub n: usize,
    /// Target average out-degree (sets the connection radius).
    pub target_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UnitDiskConfig {
    /// A generator whose giant component keeps most points (average
    /// degree ~8; unit-disk graphs fragment below degree ~4.5).
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            target_degree: 8.0,
            seed,
        }
    }

    /// Generates the graph; arc weights are Euclidean distances (×1000,
    /// rounded, min 1). Returns the largest SCC and its coordinates.
    pub fn build(&self) -> (Graph, Vec<(f32, f32)>) {
        assert!(self.n >= 2);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let pts: Vec<(f64, f64)> = (0..self.n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        // Expected degree within radius r: n * pi * r^2.
        let r = (self.target_degree / (std::f64::consts::PI * self.n as f64)).sqrt();
        // Grid hashing: cells of side r, check the 3x3 neighbourhood.
        let cells = (1.0 / r).ceil() as usize;
        let cell_of = |p: (f64, f64)| -> (usize, usize) {
            (
                ((p.0 * cells as f64) as usize).min(cells - 1),
                ((p.1 * cells as f64) as usize).min(cells - 1),
            )
        };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
        for (i, &p) in pts.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            buckets[cy * cells + cx].push(i as u32);
        }
        let mut b = GraphBuilder::new(self.n);
        for (i, &p) in pts.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (nx, ny) = (cx as i64 + dx, cy as i64 + dy);
                    if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                        continue;
                    }
                    for &j in &buckets[ny as usize * cells + nx as usize] {
                        if (j as usize) <= i {
                            continue; // each pair once
                        }
                        let q = pts[j as usize];
                        let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                        if d2 <= r * r {
                            let w = ((d2.sqrt() * 1000.0).round() as Weight).max(1);
                            b.add_edge(i as Vertex, j, w);
                        }
                    }
                }
            }
        }
        let (graph, old_of_new) = largest_scc(&b.build());
        let coords = old_of_new
            .iter()
            .map(|&v| (pts[v as usize].0 as f32, pts[v as usize].1 as f32))
            .collect();
        (graph, coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_strongly_connected;

    #[test]
    fn builds_a_connected_geometric_graph() {
        let (g, coords) = UnitDiskConfig::new(2_000, 5).build();
        assert!(is_strongly_connected(&g));
        assert_eq!(coords.len(), g.num_vertices());
        // The giant component keeps most points at degree ~8.
        assert!(g.num_vertices() > 1_500, "kept {}", g.num_vertices());
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((5.0..12.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn weights_reflect_distances() {
        let (g, coords) = UnitDiskConfig::new(500, 6).build();
        for (u, v, w) in g.forward().iter_arcs().take(200) {
            let (ux, uy) = coords[u as usize];
            let (vx, vy) = coords[v as usize];
            let d = (((ux - vx).powi(2) + (uy - vy).powi(2)) as f64).sqrt() * 1000.0;
            assert!(
                (w as f64 - d).abs() <= 1.0,
                "arc ({u},{v}) weight {w} vs distance {d:.1}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let (a, _) = UnitDiskConfig::new(300, 9).build();
        let (b, _) = UnitDiskConfig::new(300, 9).build();
        assert_eq!(a.forward(), b.forward());
    }
}
