//! Hierarchical synthetic road networks.
//!
//! The generator lays vertices on a jittered grid and connects neighbours
//! with edges whose speed depends on a multi-tier hierarchy (local streets,
//! arterials, highways, motorways — rows/columns at coarser strides carry
//! faster roads). A fraction of local edges is deleted and a few one-way
//! streets and diagonals are introduced, after which the largest strongly
//! connected component is extracted. The result is a near-planar,
//! low-degree, strongly connected digraph with the low-highway-dimension
//! structure contraction hierarchies (and therefore PHAST) exploit.

use crate::components::largest_scc;
use crate::csr::Graph;
use crate::{GraphBuilder, Vertex, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which arc-length metric to generate — the paper evaluates both (Table VII).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Travel time in tenths of seconds (faster roads are much cheaper).
    /// This is the paper's primary metric; hierarchies are shallow.
    TravelTime,
    /// Travel distance in meters. Hierarchies are deeper (410 vs 140 levels
    /// on Europe in the paper) because speed no longer flattens the metric.
    TravelDistance,
}

/// Road tier: determines speed and deletion-immunity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Tier {
    Local,
    Arterial,
    Highway,
    Motorway,
}

impl Tier {
    fn of_line(idx: u32) -> Tier {
        if idx.is_multiple_of(64) {
            Tier::Motorway
        } else if idx.is_multiple_of(16) {
            Tier::Highway
        } else if idx.is_multiple_of(4) {
            Tier::Arterial
        } else {
            Tier::Local
        }
    }

    /// Speed in km/h.
    fn speed(self) -> f64 {
        match self {
            Tier::Local => 30.0,
            Tier::Arterial => 60.0,
            Tier::Highway => 90.0,
            Tier::Motorway => 130.0,
        }
    }
}

/// Configuration for the road-network generator.
#[derive(Clone, Debug)]
pub struct RoadNetworkConfig {
    /// Grid width (vertices per row).
    pub width: u32,
    /// Grid height (vertices per column).
    pub height: u32,
    /// RNG seed; equal seeds give identical networks.
    pub seed: u64,
    /// Arc length metric.
    pub metric: Metric,
    /// Probability of deleting a local edge (hierarchy edges are immune).
    pub deletion_prob: f64,
    /// Probability of turning a surviving local edge into a one-way street.
    pub oneway_prob: f64,
    /// Probability of adding a diagonal local connection at a grid cell.
    pub diagonal_prob: f64,
    /// Grid cell size in meters.
    pub cell_meters: f64,
}

impl RoadNetworkConfig {
    /// A generator configuration with road-like defaults.
    pub fn new(width: u32, height: u32, seed: u64, metric: Metric) -> Self {
        Self {
            width,
            height,
            seed,
            metric,
            deletion_prob: 0.22,
            oneway_prob: 0.05,
            diagonal_prob: 0.05,
            cell_meters: 250.0,
        }
    }

    /// A roughly square "Europe-like" instance with about `n` vertices
    /// (dense urban cores connected by a motorway mesh).
    pub fn europe_like(n: usize, seed: u64, metric: Metric) -> Self {
        let side = (n as f64).sqrt().round().max(2.0) as u32;
        Self::new(side, side, seed, metric)
    }

    /// A wide "USA-like" instance with about `n` vertices (continental
    /// aspect ratio, slightly sparser local mesh).
    pub fn usa_like(n: usize, seed: u64, metric: Metric) -> Self {
        let h = ((n as f64) / 1.8).sqrt().round().max(2.0) as u32;
        let w = ((n as f64) / h as f64).round().max(2.0) as u32;
        let mut cfg = Self::new(w, h, seed, metric);
        cfg.deletion_prob = 0.26;
        cfg
    }

    /// Generates the network.
    pub fn build(&self) -> RoadNetwork {
        assert!(self.width >= 2 && self.height >= 2, "grid must be >= 2x2");
        let n = (self.width as usize) * (self.height as usize);
        assert!(n < u32::MAX as usize / 2, "grid too large for u32 IDs");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Jittered coordinates in meters.
        let mut coords = Vec::with_capacity(n);
        for y in 0..self.height {
            for x in 0..self.width {
                let jx: f64 = rng.random_range(-0.3..0.3);
                let jy: f64 = rng.random_range(-0.3..0.3);
                coords.push((
                    ((x as f64) + jx) * self.cell_meters,
                    ((y as f64) + jy) * self.cell_meters,
                ));
            }
        }

        let id = |x: u32, y: u32| -> Vertex { y * self.width + x };
        let mut b = GraphBuilder::new(n);
        let add = |b: &mut GraphBuilder,
                       rng: &mut ChaCha8Rng,
                       u: Vertex,
                       v: Vertex,
                       tier: Tier| {
            let (ux, uy) = coords[u as usize];
            let (vx, vy) = coords[v as usize];
            let meters = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
            let w = match self.metric {
                Metric::TravelDistance => meters.round().max(1.0) as Weight,
                // Tenths of seconds: 3.6 s/km-per-km/h * 10 / 1000 m.
                Metric::TravelTime => (36.0 * meters / tier.speed()).round().max(1.0) as Weight,
            };
            if tier == Tier::Local && rng.random_bool(self.oneway_prob) {
                // One-way street, direction chosen at random.
                if rng.random_bool(0.5) {
                    b.add_arc(u, v, w);
                } else {
                    b.add_arc(v, u, w);
                }
            } else {
                b.add_edge(u, v, w);
            }
        };

        for y in 0..self.height {
            for x in 0..self.width {
                // Horizontal edge along row y.
                if x + 1 < self.width {
                    let tier = Tier::of_line(y);
                    if tier > Tier::Local || !rng.random_bool(self.deletion_prob) {
                        add(&mut b, &mut rng, id(x, y), id(x + 1, y), tier);
                    }
                }
                // Vertical edge along column x.
                if y + 1 < self.height {
                    let tier = Tier::of_line(x);
                    if tier > Tier::Local || !rng.random_bool(self.deletion_prob) {
                        add(&mut b, &mut rng, id(x, y), id(x, y + 1), tier);
                    }
                }
                // Occasional diagonal local street.
                if x + 1 < self.width && y + 1 < self.height && rng.random_bool(self.diagonal_prob)
                {
                    add(&mut b, &mut rng, id(x, y), id(x + 1, y + 1), Tier::Local);
                }
            }
        }

        let full = b.build();
        let (graph, old_of_new) = largest_scc(&full);
        let coords = old_of_new
            .iter()
            .map(|&old| {
                let (x, y) = coords[old as usize];
                (x as f32, y as f32)
            })
            .collect();
        RoadNetwork {
            graph,
            coords,
            metric: self.metric,
        }
    }
}

/// A generated road network: the graph plus vertex coordinates (used by the
/// geometric partitioner for arc flags) and the metric it was built with.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    /// The strongly connected road graph.
    pub graph: Graph,
    /// Vertex coordinates in meters, indexed by vertex ID.
    pub coords: Vec<(f32, f32)>,
    /// The metric the arc weights encode.
    pub metric: Metric,
}

impl RoadNetwork {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_strongly_connected;

    #[test]
    fn generated_network_is_strongly_connected() {
        let net = RoadNetworkConfig::new(40, 40, 42, Metric::TravelTime).build();
        assert!(is_strongly_connected(&net.graph));
        assert!(net.num_vertices() > 1200, "SCC lost too many vertices");
        assert_eq!(net.coords.len(), net.num_vertices());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = RoadNetworkConfig::new(20, 20, 7, Metric::TravelTime).build();
        let b = RoadNetworkConfig::new(20, 20, 7, Metric::TravelTime).build();
        assert_eq!(a.graph.forward(), b.graph.forward());
        let c = RoadNetworkConfig::new(20, 20, 8, Metric::TravelTime).build();
        assert_ne!(a.graph.forward(), c.graph.forward());
    }

    #[test]
    fn distance_metric_ignores_speed() {
        // On the distance metric a motorway arc of the same geometric length
        // costs the same as a local arc; on time it is much cheaper.
        let time = RoadNetworkConfig::new(30, 30, 3, Metric::TravelTime).build();
        let dist = RoadNetworkConfig::new(30, 30, 3, Metric::TravelDistance).build();
        assert_eq!(time.num_vertices(), dist.num_vertices());
        assert_eq!(time.num_arcs(), dist.num_arcs());
        let avg = |g: &Graph| {
            g.forward().arcs().iter().map(|a| a.weight as u64).sum::<u64>() / g.num_arcs() as u64
        };
        // Time weights (tenths of seconds over <=350m) are much smaller than
        // distance weights (meters).
        assert!(avg(&time.graph) < avg(&dist.graph));
    }

    #[test]
    fn degree_is_road_like() {
        let net = RoadNetworkConfig::new(64, 64, 1, Metric::TravelTime).build();
        let avg_degree = net.num_arcs() as f64 / net.num_vertices() as f64;
        assert!(
            (2.0..4.2).contains(&avg_degree),
            "average degree {avg_degree} not road-like"
        );
    }

    #[test]
    fn usa_like_is_wider_than_tall() {
        let cfg = RoadNetworkConfig::usa_like(10_000, 0, Metric::TravelTime);
        assert!(cfg.width > cfg.height);
        let n = (cfg.width * cfg.height) as usize;
        assert!((8_000..12_000).contains(&n));
    }

    #[test]
    fn europe_like_hits_target_size() {
        let cfg = RoadNetworkConfig::europe_like(2_500, 0, Metric::TravelTime);
        assert_eq!(cfg.width, 50);
        assert_eq!(cfg.height, 50);
    }

    #[test]
    fn weights_are_positive() {
        let net = RoadNetworkConfig::new(25, 25, 11, Metric::TravelTime).build();
        assert!(net.graph.forward().arcs().iter().all(|a| a.weight >= 1));
    }
}
