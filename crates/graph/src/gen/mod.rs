//! Synthetic instance generators.
//!
//! The paper evaluates on the PTV Europe (18M vertices / 42M arcs) and
//! TIGER/Line USA (24M / 58M) road networks with both travel-time and
//! travel-distance metrics. Those inputs are proprietary / multi-gigabyte,
//! so this module provides substitutes (documented in `DESIGN.md`):
//!
//! * [`road::RoadNetworkConfig`] builds hierarchical, near-planar grid road
//!   networks with multiple speed tiers, which reproduce the structural
//!   properties PHAST exploits (low highway dimension, ~2.3 average degree,
//!   shallow contraction hierarchies with a heavily skewed level
//!   distribution);
//! * [`random::gnm`] builds unstructured random digraphs for correctness
//!   testing (PHAST must stay *correct* on any non-negative-weight digraph,
//!   merely *fast* on road-like ones).

pub mod geometric;
pub mod random;
pub mod road;

pub use geometric::UnitDiskConfig;
pub use road::{Metric, RoadNetwork, RoadNetworkConfig};
