//! Unstructured random digraphs for correctness testing.

use crate::components::largest_scc;
use crate::csr::Graph;
use crate::{GraphBuilder, Vertex, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A `G(n, m)` random digraph: `m` arcs with independently uniform endpoints
/// and weights in `1..=max_weight`. Self-loops are dropped and parallel arcs
/// deduplicated, so the result may have slightly fewer than `m` arcs.
pub fn gnm(n: usize, m: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n > 0, "gnm needs at least one vertex");
    assert!(max_weight >= 1, "weights must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.random_range(0..n as Vertex);
        let v = rng.random_range(0..n as Vertex);
        let w = rng.random_range(1..=max_weight);
        b.add_arc(u, v, w);
    }
    b.build()
}

/// Like [`gnm`] but guaranteed strongly connected: a random Hamiltonian
/// cycle is added first, then `extra` random arcs.
pub fn strongly_connected_gnm(n: usize, extra: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n > 0, "needs at least one vertex");
    assert!(max_weight >= 1, "weights must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Random cycle cover ensures strong connectivity.
    let mut perm: Vec<Vertex> = (0..n as Vertex).collect();
    use rand::seq::SliceRandom;
    perm.shuffle(&mut rng);
    for i in 0..n {
        let u = perm[i];
        let v = perm[(i + 1) % n];
        if u != v {
            b.add_arc(u, v, rng.random_range(1..=max_weight));
        }
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n as Vertex);
        let v = rng.random_range(0..n as Vertex);
        b.add_arc(u, v, rng.random_range(1..=max_weight));
    }
    b.build()
}

/// The largest SCC of a [`gnm`] graph — a convenient "arbitrary but strongly
/// connected" instance for property tests.
pub fn gnm_scc(n: usize, m: usize, max_weight: Weight, seed: u64) -> Graph {
    largest_scc(&gnm(n, m, max_weight, seed)).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_strongly_connected;

    #[test]
    fn gnm_respects_bounds() {
        let g = gnm(50, 300, 10, 1);
        assert_eq!(g.num_vertices(), 50);
        assert!(g.num_arcs() <= 300);
        assert!(g
            .forward()
            .arcs()
            .iter()
            .all(|a| a.weight >= 1 && a.weight <= 10));
    }

    #[test]
    fn strongly_connected_gnm_is_strongly_connected() {
        for seed in 0..5 {
            let g = strongly_connected_gnm(40, 60, 100, seed);
            assert!(is_strongly_connected(&g));
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = strongly_connected_gnm(1, 5, 10, 0);
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(30, 90, 7, 9).forward(), gnm(30, 90, 7, 9).forward());
    }
}
