//! Graph substrate for the PHAST shortest-path-tree library.
//!
//! This crate provides the data representation described in Section IV-A of
//! the paper *PHAST: Hardware-Accelerated Shortest Path Trees* (Delling,
//! Goldberg, Nowatzyk, Werneck; IPDPS 2011):
//!
//! * a cache-efficient CSR ("compressed sparse row") representation built
//!   from two arrays, `first` and `arclist`, with a sentinel at `first[n]`;
//! * a matching *reverse* representation storing **incoming** arcs sorted by
//!   head ID, in which each stored arc records the **tail** of the original
//!   arc (this is the layout the PHAST linear sweep scans);
//! * vertex permutations and graph relabeling (random / input / DFS layouts
//!   of Section II-A and Table I, plus the by-level reordering applied by
//!   `phast-core`);
//! * readers and writers for the DIMACS Implementation Challenge formats
//!   (`.gr` graphs, `.co` coordinates) so real road networks drop in;
//! * synthetic road-network generators with a multi-tier highway hierarchy,
//!   used in place of the proprietary PTV Europe / TIGER USA instances;
//! * connectivity utilities (largest strongly connected component).
//!
//! All vertex IDs are dense `u32` integers in `0..n`. Arc weights are `u32`
//! and must be at most [`MAX_WEIGHT`]; distances therefore always fit in a
//! `u32` without overflowing [`INF`].

pub mod builder;
pub mod components;
pub mod csr;
pub mod dfs;
pub mod dimacs;
pub mod gen;
pub mod metrics;
pub mod reorder;
pub mod scratch;
pub mod segment;

pub use builder::GraphBuilder;
pub use csr::{Csr, Graph, ReverseArc};
pub use reorder::Permutation;
pub use segment::{Segment, SegmentOwner};

/// A vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type Vertex = u32;

/// A non-negative arc weight (travel time, distance, ...).
pub type Weight = u32;

/// The "unreachable" distance value.
///
/// `INF` is `u32::MAX / 2` rather than `u32::MAX` so that `d(u) + w` never
/// wraps for any valid weight: PHAST's inner loop (and its SSE/AVX variants)
/// uses a plain packed 32-bit add followed by a packed min, exactly as the
/// paper does, with no per-arc overflow checks.
pub const INF: Weight = u32::MAX / 2;

/// Maximum admissible single-arc weight.
///
/// Chosen so that `INF + MAX_WEIGHT` still fits in a `u32`; combined with the
/// invariant that finite labels are true path lengths `< INF`, no relaxation
/// can overflow.
pub const MAX_WEIGHT: Weight = u32::MAX / 4;

/// A directed arc as stored in the forward CSR: the head (target) vertex and
/// the arc weight. Two 32-bit fields, eight bytes, matching the paper's
/// "two-field structure containing the ID of the head vertex and the length
/// of the arc".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[repr(C)]
pub struct Arc {
    /// Target vertex of the arc.
    pub head: Vertex,
    /// Non-negative length of the arc.
    pub weight: Weight,
}

impl Arc {
    /// Creates a new arc.
    #[inline]
    pub const fn new(head: Vertex, weight: Weight) -> Self {
        Self { head, weight }
    }
}

// The sweep kernels rely on `Arc` being exactly two packed u32s.
const _: () = assert!(std::mem::size_of::<Arc>() == 8);
const _: () = assert!(std::mem::align_of::<Arc>() == 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_plus_max_weight_does_not_wrap() {
        assert!(INF.checked_add(MAX_WEIGHT).is_some());
    }

    #[test]
    fn arc_is_two_words() {
        assert_eq!(std::mem::size_of::<Arc>(), 8);
    }
}
