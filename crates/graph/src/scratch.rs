//! Reusable, allocation-free search scratch: timestamped distance labels
//! and a bounded local priority queue.
//!
//! CH preprocessing runs millions of tiny *witness searches* — local
//! Dijkstras that settle a few dozen vertices each. A hash map per search
//! (the obvious representation for "sparse distances over a huge vertex
//! range") pays for hashing, probing and allocation on every single label
//! access, which makes the witness search the hottest allocation site of
//! the whole preprocessing pipeline. The cache-aware alternative (*Doing
//! More for Less — Cache-Aware Parallel CH Preprocessing*, arXiv:1208.2543)
//! is the classic timestamp trick:
//!
//! * [`TimestampedDist`] keeps two flat `n`-sized arrays, `dist` and
//!   `stamp`, plus a generation counter. A label is valid only if its
//!   stamp matches the current generation, so "clearing" the structure
//!   between searches is a single counter increment — `O(1)` instead of
//!   `O(touched)` or a rehash, and reads are one predictable indexed load.
//! * [`LocalHeap`] is a plain binary min-heap over an owned `Vec` that is
//!   *cleared, never dropped*: after the first few searches its buffer has
//!   reached steady-state capacity and pushes never allocate again. An
//!   optional *bound* caps the heap size for searches that are themselves
//!   capped (hop/settle limits): when the bound is hit the largest entries
//!   are pruned deterministically, which for witness searches is the safe
//!   direction (a lost entry can only hide a witness, adding a redundant
//!   shortcut — never a wrong distance).
//!
//! Both types are deliberately dumb data structures with no knowledge of
//! graphs; `phast-ch` composes them into its witness scratch, and anything
//! else needing many small bounded searches can reuse them.

use crate::{Vertex, Weight};

/// Flat distance labels with `O(1)` reset via generation stamps.
///
/// All labels start (and reset to) [`Weight::MAX`], a value strictly above
/// any real distance, so `get` composes directly with `min`-style updates.
#[derive(Default)]
pub struct TimestampedDist {
    dist: Vec<Weight>,
    stamp: Vec<u32>,
    generation: u32,
}

impl TimestampedDist {
    /// Creates an empty scratch; arrays grow on [`begin`](Self::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh search over vertices `0..n`: grows the arrays if
    /// needed and invalidates every previous label in `O(1)` (amortized —
    /// a generation wrap-around forces one full clear every `u32::MAX`
    /// searches).
    pub fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Weight::MAX);
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// The current label of `v`, or [`Weight::MAX`] if `v` was not labeled
    /// since the last [`begin`](Self::begin).
    #[inline]
    pub fn get(&self, v: Vertex) -> Weight {
        if self.stamp[v as usize] == self.generation {
            self.dist[v as usize]
        } else {
            Weight::MAX
        }
    }

    /// Sets the label of `v` for the current generation.
    #[inline]
    pub fn set(&mut self, v: Vertex, d: Weight) {
        self.dist[v as usize] = d;
        self.stamp[v as usize] = self.generation;
    }
}

/// A reusable binary min-heap of `(key, aux, vertex)` entries with an
/// optional size bound.
///
/// Entries order by the full tuple (key, then aux, then vertex), so equal
/// keys still pop in a deterministic order — a requirement for the
/// bit-deterministic parallel contraction, where any two runs must expand
/// identical vertex sequences.
///
/// When constructed [`with_bound`](Self::with_bound), a push that would
/// exceed the bound first prunes the heap down to the smallest
/// `bound / 2` entries (by full tuple order, hence deterministically).
/// Callers must tolerate lost entries; bounded witness searches do — see
/// the module docs.
#[derive(Default)]
pub struct LocalHeap {
    data: Vec<(Weight, u32, Vertex)>,
    bound: usize,
}

impl LocalHeap {
    /// An unbounded heap.
    pub fn new() -> Self {
        Self { data: Vec::new(), bound: usize::MAX }
    }

    /// A heap that never holds more than `bound` entries (`bound >= 2`).
    pub fn with_bound(bound: usize) -> Self {
        Self {
            data: Vec::new(),
            bound: bound.max(2),
        }
    }

    /// Removes all entries, keeping the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pushes an entry, pruning the largest half first if the bound is
    /// reached.
    pub fn push(&mut self, entry: (Weight, u32, Vertex)) {
        if self.data.len() >= self.bound {
            self.prune();
        }
        self.data.push(entry);
        self.sift_up(self.data.len() - 1);
    }

    /// Pops the minimum entry.
    pub fn pop(&mut self) -> Option<(Weight, u32, Vertex)> {
        let len = self.data.len();
        if len == 0 {
            return None;
        }
        self.data.swap(0, len - 1);
        let min = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        min
    }

    /// Keeps the smallest `bound / 2` entries (full-tuple order) and
    /// re-heapifies. Deterministic: which entries survive depends only on
    /// the multiset of entries, not on heap layout.
    fn prune(&mut self) {
        let keep = (self.bound / 2).max(1);
        self.data.sort_unstable();
        self.data.truncate(keep);
        // A sorted array is a valid binary heap already.
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[parent] <= self.data[i] {
                break;
            }
            self.data.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.data.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < len && self.data[l] < self.data[smallest] {
                smallest = l;
            }
            if r < len && self.data[r] < self.data[smallest] {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamped_dist_resets_in_o1() {
        let mut d = TimestampedDist::new();
        d.begin(4);
        assert_eq!(d.get(2), Weight::MAX);
        d.set(2, 7);
        d.set(0, 0);
        assert_eq!(d.get(2), 7);
        assert_eq!(d.get(0), 0);
        d.begin(4);
        assert_eq!(d.get(2), Weight::MAX, "begin() must invalidate labels");
        assert_eq!(d.get(0), Weight::MAX);
        d.set(2, 3);
        assert_eq!(d.get(2), 3);
    }

    #[test]
    fn timestamped_dist_grows() {
        let mut d = TimestampedDist::new();
        d.begin(2);
        d.set(1, 5);
        d.begin(10);
        assert_eq!(d.get(9), Weight::MAX);
        d.set(9, 1);
        assert_eq!(d.get(9), 1);
        assert_eq!(d.get(1), Weight::MAX);
    }

    #[test]
    fn timestamped_dist_survives_generation_wrap() {
        let mut d = TimestampedDist::new();
        d.begin(2);
        d.set(0, 9);
        d.generation = u32::MAX; // fast-forward to the wrap
        d.begin(2);
        assert_eq!(d.get(0), Weight::MAX, "wrap must not resurrect labels");
        d.set(1, 4);
        assert_eq!(d.get(1), 4);
    }

    #[test]
    fn heap_pops_in_full_tuple_order() {
        let mut h = LocalHeap::new();
        for e in [(5, 0, 9), (1, 2, 3), (5, 0, 2), (1, 0, 3), (0, 7, 7)] {
            h.push(e);
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(0, 7, 7), (1, 0, 3), (1, 2, 3), (5, 0, 2), (5, 0, 9)]
        );
        assert!(h.is_empty());
    }

    #[test]
    fn bounded_heap_prunes_largest_deterministically() {
        let mut h = LocalHeap::with_bound(4);
        for w in [10u32, 30, 20, 40] {
            h.push((w, 0, w));
        }
        assert_eq!(h.len(), 4);
        // The fifth push prunes down to the smallest 2 first.
        h.push((5, 0, 5));
        assert!(h.len() <= 3, "bound must cap the heap, got {}", h.len());
        assert_eq!(h.pop(), Some((5, 0, 5)));
        assert_eq!(h.pop(), Some((10, 0, 10)));
        assert_eq!(h.pop(), Some((20, 0, 20)));
        assert_eq!(h.pop(), None, "30/40 were pruned");
    }

    #[test]
    fn clear_keeps_reusing_the_buffer() {
        let mut h = LocalHeap::new();
        h.push((3, 0, 0));
        h.push((1, 0, 1));
        h.clear();
        assert!(h.is_empty());
        h.push((2, 0, 2));
        assert_eq!(h.pop(), Some((2, 0, 2)));
    }
}
