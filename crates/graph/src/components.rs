//! Connectivity utilities: strongly connected components and extraction of
//! the largest SCC.
//!
//! The benchmark instances (like the DIMACS road networks) are strongly
//! connected; the synthetic generators use [`largest_scc`] to guarantee the
//! same property after random edge deletion, so that every shortest-path
//! tree spans all vertices.

use crate::csr::Graph;
use crate::reorder::Permutation;
use crate::{GraphBuilder, Vertex};

/// Assigns each vertex an SCC ID via Tarjan's algorithm (iterative, so deep
/// graphs cannot overflow the call stack). Returns `(component_of, count)`;
/// component IDs are in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut scc_stack: Vec<Vertex> = Vec::new();
    let mut next_index = 0u32;
    let mut num_comps = 0usize;

    // Explicit DFS frames: (vertex, next-arc-offset).
    let mut frames: Vec<(Vertex, u32)> = Vec::new();
    for root in 0..n as Vertex {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ai)) = frames.last_mut() {
            let vu = v as usize;
            if *ai == 0 {
                index[vu] = next_index;
                low[vu] = next_index;
                next_index += 1;
                scc_stack.push(v);
                on_stack[vu] = true;
            }
            let out = g.out(v);
            let mut advanced = false;
            while (*ai as usize) < out.len() {
                let w = out[*ai as usize].head;
                *ai += 1;
                if index[w as usize] == UNSET {
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[w as usize] {
                    low[vu] = low[vu].min(index[w as usize]);
                }
            }
            if advanced {
                continue;
            }
            // v finished: close SCC if v is a root, then propagate lowlink.
            if low[vu] == index[vu] {
                loop {
                    let w = scc_stack.pop().expect("scc stack underflow");
                    on_stack[w as usize] = false;
                    comp[w as usize] = num_comps as u32;
                    if w == v {
                        break;
                    }
                }
                num_comps += 1;
            }
            frames.pop();
            if let Some(&mut (parent, _)) = frames.last_mut() {
                let pu = parent as usize;
                low[pu] = low[pu].min(low[vu]);
            }
        }
    }
    (comp, num_comps)
}

/// Extracts the largest strongly connected component as a new graph with
/// dense IDs. Returns the subgraph and, for each new vertex, its original ID.
pub fn largest_scc(g: &Graph) -> (Graph, Vec<Vertex>) {
    let n = g.num_vertices();
    if n == 0 {
        return (GraphBuilder::new(0).build(), Vec::new());
    }
    let (comp, num) = strongly_connected_components(g);
    let mut sizes = vec![0usize; num];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");

    let mut old_of_new = Vec::with_capacity(sizes[best as usize]);
    let mut new_of_old = vec![Vertex::MAX; n];
    for v in 0..n {
        if comp[v] == best {
            new_of_old[v] = old_of_new.len() as Vertex;
            old_of_new.push(v as Vertex);
        }
    }
    let mut b = GraphBuilder::new(old_of_new.len());
    for (u, v, w) in g.forward().iter_arcs() {
        let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
        if nu != Vertex::MAX && nv != Vertex::MAX {
            b.add_arc(nu, nv, w);
        }
    }
    (b.build(), old_of_new)
}

/// True if the whole graph is one strongly connected component.
pub fn is_strongly_connected(g: &Graph) -> bool {
    if g.num_vertices() == 0 {
        return true;
    }
    let (_, num) = strongly_connected_components(g);
    num == 1
}

/// Induces the subgraph on `keep` (original IDs, must be unique) and returns
/// it together with the permutation context: `old_of_new[new] = old`.
pub fn induced_subgraph(g: &Graph, keep: &[Vertex]) -> (Graph, Vec<Vertex>) {
    let n = g.num_vertices();
    let mut new_of_old = vec![Vertex::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        assert!((old as usize) < n, "keep vertex out of range");
        assert_eq!(new_of_old[old as usize], Vertex::MAX, "duplicate vertex");
        new_of_old[old as usize] = new as Vertex;
    }
    let mut b = GraphBuilder::new(keep.len());
    for (u, v, w) in g.forward().iter_arcs() {
        let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
        if nu != Vertex::MAX && nv != Vertex::MAX {
            b.add_arc(nu, nv, w);
        }
    }
    (b.build(), keep.to_vec())
}

/// Renumbers component IDs so they can serve as a permutation base — helper
/// for tests that need a component-sorted layout.
pub fn component_sorted_layout(g: &Graph) -> Permutation {
    let (comp, _) = strongly_connected_components(g);
    let mut order: Vec<Vertex> = (0..g.num_vertices() as Vertex).collect();
    order.sort_by_key(|&v| (comp[v as usize], v));
    Permutation::from_order(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn single_cycle_is_one_scc() {
        let mut b = GraphBuilder::new(4);
        for v in 0..4u32 {
            b.add_arc(v, (v + 1) % 4, 1);
        }
        let g = b.build();
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn directed_path_is_all_singletons() {
        let mut b = GraphBuilder::new(4);
        for v in 0..3u32 {
            b.add_arc(v, v + 1, 1);
        }
        let (comp, num) = strongly_connected_components(&b.build());
        assert_eq!(num, 4);
        // Reverse topological order: the sink closes first.
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn largest_scc_picks_the_big_cycle() {
        let mut b = GraphBuilder::new(7);
        // Cycle on 0..5, plus a pendant path 5 -> 6.
        for v in 0..5u32 {
            b.add_arc(v, (v + 1) % 5, 1);
        }
        b.add_arc(5, 6, 1);
        let (sub, old) = largest_scc(&b.build());
        assert_eq!(sub.num_vertices(), 5);
        assert_eq!(old, vec![0, 1, 2, 3, 4]);
        assert!(is_strongly_connected(&sub));
    }

    #[test]
    fn two_sccs_with_bridge() {
        let mut b = GraphBuilder::new(6);
        b.add_arc(0, 1, 1).add_arc(1, 0, 1); // SCC {0,1}
        b.add_arc(2, 3, 1).add_arc(3, 4, 1).add_arc(4, 2, 1); // SCC {2,3,4}
        b.add_arc(1, 2, 1); // bridge
        b.add_arc(5, 0, 1); // singleton feeding in
        let g = b.build();
        let (comp, num) = strongly_connected_components(&g);
        assert_eq!(num, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        let (sub, old) = largest_scc(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(old, vec![2, 3, 4]);
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // A long directed cycle would recurse 100k deep in a naive Tarjan.
        let n = 100_000;
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.add_arc(v, (v + 1) % n as u32, 1);
        }
        assert!(is_strongly_connected(&b.build()));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(is_strongly_connected(&g));
        let (sub, old) = largest_scc(&g);
        assert_eq!(sub.num_vertices(), 0);
        assert!(old.is_empty());
    }

    /// Brute-force oracle: transitive closure by repeated squaring of the
    /// boolean adjacency relation.
    fn reachability(g: &crate::csr::Graph) -> Vec<Vec<bool>> {
        let n = g.num_vertices();
        let mut reach = vec![vec![false; n]; n];
        for (v, row) in reach.iter_mut().enumerate() {
            row[v] = true;
        }
        for (u, v, _) in g.forward().iter_arcs() {
            reach[u as usize][v as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    let (head, tail) = reach.split_at_mut(i.max(k));
                    let (row_i, row_k) = if i < k {
                        (&mut head[i], &tail[0])
                    } else if i > k {
                        (&mut tail[0], &head[k])
                    } else {
                        continue; // reach[k][k] contributes nothing new
                    };
                    for (dst, &src) in row_i.iter_mut().zip(row_k.iter()) {
                        *dst = *dst || src;
                    }
                }
            }
        }
        reach
    }

    #[test]
    fn scc_matches_mutual_reachability_oracle() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(1usize..10, 0usize..30, 0u64..1000),
                |(n, m, seed)| {
                    let g = crate::gen::random::gnm(n, m, 5, seed);
                    let reach = reachability(&g);
                    let (comp, _) = strongly_connected_components(&g);
                    for i in 0..n {
                        for j in 0..n {
                            let same = comp[i] == comp[j];
                            let mutual = reach[i][j] && reach[j][i];
                            prop_assert_eq!(
                                same,
                                mutual,
                                "vertices {} and {} (n={}, m={}, seed={})",
                                i,
                                j,
                                n,
                                m,
                                seed
                            );
                        }
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn induced_subgraph_keeps_internal_arcs_only() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1, 5).add_arc(1, 2, 6).add_arc(2, 3, 7);
        let g = b.build();
        let (sub, _) = induced_subgraph(&g, &[1, 2]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_arcs(), 1);
        assert_eq!(sub.out(0)[0].weight, 6);
    }
}
