//! DIMACS Implementation Challenge file formats.
//!
//! The paper's instances come from the 9th DIMACS Implementation Challenge
//! on shortest paths. This module reads and writes the two relevant formats
//! so real instances drop into the harness unchanged:
//!
//! * `.gr` graph files: `c` comment lines, one `p sp <n> <m>` problem line,
//!   and `a <u> <v> <w>` arc lines with **1-based** vertex IDs;
//! * `.co` coordinate files: `p aux sp co <n>` and `v <id> <x> <y>` lines.

use crate::csr::Graph;
use crate::{GraphBuilder, Vertex, Weight, MAX_WEIGHT};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced by the DIMACS parsers.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the format; the message says where and why.
    Parse(String),
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "I/O error: {e}"),
            DimacsError::Parse(m) => write!(f, "DIMACS parse error: {m}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

fn parse_err(line_no: usize, msg: impl Into<String>) -> DimacsError {
    DimacsError::Parse(format!("line {line_no}: {}", msg.into()))
}

/// Largest vertex count the parsers accept. Vertex IDs are dense `u32`s,
/// so anything at or above `u32::MAX` cannot be represented; rejecting it
/// here (instead of handing it to `GraphBuilder::new`, which panics) keeps
/// the no-panic contract on arbitrary input.
pub const MAX_DIMACS_VERTICES: usize = u32::MAX as usize - 1;

/// Reads a `.gr` shortest-path graph.
pub fn read_gr<R: Read>(reader: R) -> Result<Graph, DimacsError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_arcs = 0usize;
    let mut seen_arcs = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                if builder.is_some() {
                    return Err(parse_err(line_no, "duplicate problem line"));
                }
                if it.next() != Some("sp") {
                    return Err(parse_err(line_no, "expected 'p sp <n> <m>'"));
                }
                let n: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad vertex count"))?;
                if n > MAX_DIMACS_VERTICES {
                    return Err(parse_err(
                        line_no,
                        format!("vertex count {n} exceeds the supported maximum {MAX_DIMACS_VERTICES}"),
                    ));
                }
                declared_arcs = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad arc count"))?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "arc before problem line"))?;
                let u: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad tail"))?;
                let v: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad head"))?;
                let w: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad weight"))?;
                let n = b.num_vertices() as u64;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(parse_err(line_no, "vertex ID out of range (IDs are 1-based)"));
                }
                if w > MAX_WEIGHT as u64 {
                    return Err(parse_err(line_no, "weight exceeds supported maximum"));
                }
                b.add_arc((u - 1) as Vertex, (v - 1) as Vertex, w as Weight);
                seen_arcs += 1;
            }
            Some(other) => {
                return Err(parse_err(line_no, format!("unknown line type '{other}'")));
            }
        }
    }
    let builder = builder.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if seen_arcs != declared_arcs {
        return Err(DimacsError::Parse(format!(
            "problem line declared {declared_arcs} arcs but file contains {seen_arcs}"
        )));
    }
    Ok(builder.build())
}

/// Writes a graph as a `.gr` file (1-based IDs).
pub fn write_gr<W: Write>(writer: W, g: &Graph) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c generated by phast-graph")?;
    writeln!(w, "p sp {} {}", g.num_vertices(), g.num_arcs())?;
    for (u, v, wt) in g.forward().iter_arcs() {
        writeln!(w, "a {} {} {}", u + 1, v + 1, wt)?;
    }
    w.flush()
}

/// Reads a `.co` coordinate file; returns `(x, y)` per vertex.
pub fn read_co<R: Read>(reader: R) -> Result<Vec<(f32, f32)>, DimacsError> {
    let reader = BufReader::new(reader);
    let mut coords: Option<Vec<(f32, f32)>> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                if coords.is_some() {
                    return Err(parse_err(line_no, "duplicate problem line"));
                }
                // "p aux sp co <n>"
                let rest: Vec<&str> = it.collect();
                let n: usize = rest
                    .last()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad coordinate count"))?;
                if n > MAX_DIMACS_VERTICES {
                    return Err(parse_err(
                        line_no,
                        format!("coordinate count {n} exceeds the supported maximum {MAX_DIMACS_VERTICES}"),
                    ));
                }
                coords = Some(vec![(0.0, 0.0); n]);
            }
            Some("v") => {
                let cs = coords
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "vertex before problem line"))?;
                let id: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad vertex ID"))?;
                let x: f32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad x"))?;
                let y: f32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad y"))?;
                if id == 0 || id > cs.len() {
                    return Err(parse_err(line_no, "vertex ID out of range"));
                }
                cs[id - 1] = (x, y);
            }
            Some(other) => {
                return Err(parse_err(line_no, format!("unknown line type '{other}'")));
            }
        }
    }
    coords.ok_or_else(|| parse_err(0, "missing problem line"))
}

/// Writes a `.co` coordinate file (1-based IDs; coordinates rounded to
/// integers as the DIMACS files use integral micro-degrees).
pub fn write_co<W: Write>(writer: W, coords: &[(f32, f32)]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c generated by phast-graph")?;
    writeln!(w, "p aux sp co {}", coords.len())?;
    for (i, (x, y)) in coords.iter().enumerate() {
        writeln!(w, "v {} {} {}", i + 1, x.round() as i64, y.round() as i64)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random::strongly_connected_gnm;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_gr() {
        let g = strongly_connected_gnm(30, 60, 1000, 5);
        let mut buf = Vec::new();
        write_gr(&mut buf, &g).unwrap();
        let h = read_gr(&buf[..]).unwrap();
        assert_eq!(g.forward(), h.forward());
    }

    #[test]
    fn parses_reference_sample() {
        let text = "c sample\np sp 3 3\na 1 2 10\na 2 3 20\na 3 1 30\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.out(0)[0].head, 1);
        assert_eq!(g.out(0)[0].weight, 10);
    }

    #[test]
    fn rejects_arc_count_mismatch() {
        let text = "p sp 2 5\na 1 2 1\n";
        assert!(matches!(
            read_gr(text.as_bytes()),
            Err(DimacsError::Parse(_))
        ));
    }

    #[test]
    fn rejects_zero_based_ids() {
        let text = "p sp 2 1\na 0 1 1\n";
        assert!(read_gr(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_arc_before_problem_line() {
        let text = "a 1 2 3\n";
        assert!(read_gr(text.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_co() {
        let coords = vec![(1.0, 2.0), (30.0, -4.0), (5.0, 6.0)];
        let mut buf = Vec::new();
        write_co(&mut buf, &coords).unwrap();
        let back = read_co(&buf[..]).unwrap();
        assert_eq!(back, coords);
    }

    #[test]
    fn empty_lines_and_comments_are_skipped() {
        let text = "c hi\n\nc there\np sp 1 0\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn rejects_duplicate_problem_line_gr() {
        let text = "p sp 2 1\np sp 2 1\na 1 2 3\n";
        match read_gr(text.as_bytes()) {
            Err(DimacsError::Parse(m)) => assert!(m.contains("duplicate problem line"), "{m}"),
            other => panic!("expected duplicate-problem-line error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_problem_line_co() {
        let text = "p aux sp co 1\np aux sp co 1\nv 1 0 0\n";
        match read_co(text.as_bytes()) {
            Err(DimacsError::Parse(m)) => assert!(m.contains("duplicate problem line"), "{m}"),
            other => panic!("expected duplicate-problem-line error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_vertex_count_without_panicking() {
        // u32::MAX vertices cannot be represented by dense u32 IDs; this must
        // surface as a typed parse error, not a GraphBuilder panic or an
        // attempted multi-gigabyte allocation.
        let text = format!("p sp {} 0\n", u64::MAX);
        assert!(matches!(read_gr(text.as_bytes()), Err(DimacsError::Parse(_))));
        let text = format!("p sp {} 0\n", u32::MAX);
        assert!(matches!(read_gr(text.as_bytes()), Err(DimacsError::Parse(_))));
        let text = format!("p aux sp co {}\n", u64::MAX);
        assert!(matches!(read_co(text.as_bytes()), Err(DimacsError::Parse(_))));
    }

    #[test]
    fn rejects_overlong_weight() {
        let text = format!("p sp 2 1\na 1 2 {}\n", u64::MAX);
        assert!(matches!(read_gr(text.as_bytes()), Err(DimacsError::Parse(_))));
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(256))]

        /// Arbitrary byte soup must never panic the `.gr` parser: every
        /// outcome is either a graph or a typed [`DimacsError`].
        #[test]
        fn read_gr_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
            let _ = read_gr(&bytes[..]);
        }

        /// Same no-panic contract for the `.co` parser.
        #[test]
        fn read_co_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
            let _ = read_co(&bytes[..]);
        }

        /// Structured soup: lines assembled from DIMACS-ish tokens probe the
        /// parser's state machine (duplicate headers, out-of-range IDs, huge
        /// counts) far more densely than uniform bytes. Still: no panics.
        #[test]
        fn read_gr_never_panics_on_token_soup(
            picks in proptest::collection::vec(0usize..12, 0..24),
        ) {
            const TOKENS: [&str; 12] = [
                "p sp 3 2", "p sp 0 0", "p sp 99999999999999999999 1",
                "p aux sp co 3", "a 1 2 3", "a 0 0 0",
                "a 4 1 1", "a 1 2 18446744073709551615",
                "c comment", "v 1 2 3", "", "p sp 3",
            ];
            let text: String = picks
                .iter()
                .map(|&i| format!("{}\n", TOKENS[i]))
                .collect();
            let _ = read_gr(text.as_bytes());
            let _ = read_co(text.as_bytes());
        }
    }
}
