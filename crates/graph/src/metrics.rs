//! Instance characterization.
//!
//! The paper's headline claims are conditional on graph structure ("PHAST
//! only works well on graphs with low highway dimension"), so the harness
//! wants a quick structural fingerprint of any instance: degree and weight
//! distributions, a diameter estimate, and a layout-locality measure (how
//! far apart arc endpoints' IDs are — the quantity the DFS layout of
//! Section II-A improves and the random layout of Table I destroys).

use crate::csr::Graph;
use crate::Weight;

/// Structural summary of a graph (under its current vertex layout).
#[derive(Clone, Debug)]
pub struct GraphMetrics {
    /// Vertices.
    pub n: usize,
    /// Arcs.
    pub m: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Out-degree histogram; index = degree, last bucket = "8 or more".
    pub degree_histogram: [usize; 9],
    /// Minimum arc weight.
    pub min_weight: Weight,
    /// Maximum arc weight.
    pub max_weight: Weight,
    /// Mean arc weight.
    pub mean_weight: f64,
    /// Median |head - tail| over all arcs — the layout-locality measure
    /// (small = cache-friendly traversals).
    pub median_arc_span: u32,
    /// Lower bound on the (unweighted) diameter from a double BFS sweep.
    pub hop_diameter_lower_bound: u32,
}

/// Computes the summary. Cost: two BFS passes plus one scan of the arcs.
pub fn graph_metrics(g: &Graph) -> GraphMetrics {
    let n = g.num_vertices();
    let m = g.num_arcs();
    let mut degree_histogram = [0usize; 9];
    let mut max_degree = 0usize;
    for v in 0..n as u32 {
        let d = g.out(v).len();
        max_degree = max_degree.max(d);
        degree_histogram[d.min(8)] += 1;
    }
    let mut min_weight = Weight::MAX;
    let mut max_weight = 0;
    let mut sum_weight = 0u64;
    let mut spans: Vec<u32> = Vec::with_capacity(m);
    for (u, v, w) in g.forward().iter_arcs() {
        min_weight = min_weight.min(w);
        max_weight = max_weight.max(w);
        sum_weight += w as u64;
        spans.push(u.abs_diff(v));
    }
    if m == 0 {
        min_weight = 0;
    }
    let median_arc_span = if spans.is_empty() {
        0
    } else {
        let mid = spans.len() / 2;
        *spans.select_nth_unstable(mid).1
    };

    // Double sweep: BFS from 0, then BFS from the farthest vertex found;
    // the second eccentricity lower-bounds the hop diameter.
    let hop_diameter_lower_bound = if n == 0 {
        0
    } else {
        let first = bfs_hops(g, 0);
        let (far, first_ecc) = first
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h != u32::MAX)
            .max_by_key(|&(_, &h)| h)
            .map(|(v, &h)| (v as u32, h))
            .unwrap_or((0, 0));
        let second_ecc = bfs_hops(g, far)
            .into_iter()
            .filter(|&h| h != u32::MAX)
            .max()
            .unwrap_or(0);
        // Both eccentricities lower-bound the hop diameter (the second
        // sweep only helps on graphs where `far` can reach far again).
        first_ecc.max(second_ecc)
    };

    GraphMetrics {
        n,
        m,
        avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_degree,
        degree_histogram,
        min_weight,
        max_weight,
        mean_weight: if m == 0 {
            0.0
        } else {
            sum_weight as f64 / m as f64
        },
        median_arc_span,
        hop_diameter_lower_bound,
    }
}

/// Hop counts from `s` over outgoing arcs (`u32::MAX` = unreachable).
fn bfs_hops(g: &Graph, s: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut hops = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[s as usize] = 0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        let next = hops[v as usize] + 1;
        for a in g.out(v) {
            if hops[a.head as usize] == u32::MAX {
                hops[a.head as usize] = next;
                queue.push_back(a.head);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::dfs_layout;
    use crate::gen::{Metric, RoadNetworkConfig};
    use crate::reorder::{relabel_graph, Permutation};
    use crate::GraphBuilder;

    #[test]
    fn path_graph_metrics() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_arc(v, v + 1, 10 + v);
        }
        let g = b.build();
        let m = graph_metrics(&g);
        assert_eq!(m.n, 5);
        assert_eq!(m.m, 4);
        assert_eq!(m.max_degree, 1);
        assert_eq!(m.min_weight, 10);
        assert_eq!(m.max_weight, 13);
        assert_eq!(m.median_arc_span, 1);
        assert_eq!(m.hop_diameter_lower_bound, 4);
    }

    #[test]
    fn dfs_layout_shrinks_arc_spans() {
        let net = RoadNetworkConfig::new(30, 30, 17, Metric::TravelTime).build();
        let random = relabel_graph(
            &net.graph,
            &Permutation::random(net.graph.num_vertices(), 3),
        );
        let dfs = relabel_graph(&net.graph, &dfs_layout(&net.graph, 0));
        let span_random = graph_metrics(&random).median_arc_span;
        let span_dfs = graph_metrics(&dfs).median_arc_span;
        assert!(
            span_dfs * 4 < span_random,
            "DFS span {span_dfs} vs random {span_random}"
        );
    }

    #[test]
    fn empty_graph_metrics() {
        let g = GraphBuilder::new(0).build();
        let m = graph_metrics(&g);
        assert_eq!(m.n, 0);
        assert_eq!(m.hop_diameter_lower_bound, 0);
    }

    #[test]
    fn grid_diameter_bound_is_reasonable() {
        let net = RoadNetworkConfig::new(20, 20, 18, Metric::TravelTime).build();
        let m = graph_metrics(&net.graph);
        // A 20x20 grid has hop diameter at least ~20.
        assert!(m.hop_diameter_lower_bound >= 20);
    }
}
