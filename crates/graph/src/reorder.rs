//! Vertex permutations and graph relabeling.
//!
//! Graph layout is central to the paper: Table I measures Dijkstra, BFS and
//! PHAST under *random*, *input* and *DFS* vertex orders, and Section IV-A's
//! by-level reordering is what turns PHAST's sweep into (almost) purely
//! sequential memory traffic.

use crate::csr::{Csr, Graph};
use crate::segment::Segment;
use crate::{Arc, Vertex};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A bijection `old ID -> new ID` over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Permutation {
    new_of_old: Segment<Vertex>,
}

impl Permutation {
    /// Wraps a mapping `new_of_old[old] = new`, validating bijectivity.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not a permutation of `0..n`.
    pub fn new(new_of_old: Vec<Vertex>) -> Self {
        Self::try_new(new_of_old).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::new`]: a vector that is not a permutation of
    /// `0..n` (e.g. read from a corrupted artifact) yields an error
    /// instead of a panic.
    pub fn try_new(new_of_old: Vec<Vertex>) -> Result<Self, String> {
        Self::try_new_segment(new_of_old.into())
    }

    /// [`Self::try_new`] over [`Segment`] storage, so the zero-copy
    /// artifact loader can validate a mapping borrowed from a file.
    pub fn try_new_segment(new_of_old: Segment<Vertex>) -> Result<Self, String> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &v in new_of_old.iter() {
            if (v as usize) >= n {
                return Err("permutation image out of range".into());
            }
            if seen[v as usize] {
                return Err("permutation image repeated".into());
            }
            seen[v as usize] = true;
        }
        Ok(Self { new_of_old })
    }

    /// The identity permutation on `n` vertices (the paper's *input* layout).
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as Vertex).collect::<Vec<_>>().into(),
        }
    }

    /// A uniformly random permutation (the paper's *random* layout).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut p: Vec<Vertex> = (0..n as Vertex).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        p.shuffle(&mut rng);
        Self { new_of_old: p.into() }
    }

    /// Builds the permutation that assigns new IDs in the order vertices
    /// appear in `order` (i.e. `order[i]` receives new ID `i`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..n`.
    pub fn from_order(order: &[Vertex]) -> Self {
        let n = order.len();
        let mut new_of_old = vec![Vertex::MAX; n];
        for (new_id, &old) in order.iter().enumerate() {
            assert!((old as usize) < n, "order entry out of range");
            assert_eq!(
                new_of_old[old as usize],
                Vertex::MAX,
                "order entry repeated"
            );
            new_of_old[old as usize] = new_id as Vertex;
        }
        Self {
            new_of_old: new_of_old.into(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True if the permutation is over zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New ID of old vertex `old`.
    #[inline]
    pub fn map(&self, old: Vertex) -> Vertex {
        self.new_of_old[old as usize]
    }

    /// The underlying `old -> new` mapping.
    #[inline]
    pub fn as_slice(&self) -> &[Vertex] {
        &self.new_of_old
    }

    /// The inverse permutation (`new -> old`).
    pub fn inverse(&self) -> Permutation {
        let mut old_of_new = vec![0 as Vertex; self.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            old_of_new[new as usize] = old as Vertex;
        }
        Permutation {
            new_of_old: old_of_new.into(),
        }
    }

    /// Composition: applies `self` first, then `then` (`(then ∘ self)(v)`).
    pub fn then(&self, then: &Permutation) -> Permutation {
        assert_eq!(self.len(), then.len(), "permutation size mismatch");
        Permutation {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&m| then.map(m))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Applies the permutation to a per-vertex value array: output index
    /// `map(old)` receives `values[old]`.
    pub fn apply_to_values<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value array size mismatch");
        let mut out: Vec<T> = values.to_vec();
        for (old, v) in values.iter().enumerate() {
            out[self.new_of_old[old] as usize] = v.clone();
        }
        out
    }
}

/// Relabels a CSR with the permutation: vertex `v` becomes `perm.map(v)` and
/// arcs are re-sorted into the new tail order.
pub fn relabel_csr(g: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(g.num_vertices(), perm.len(), "permutation size mismatch");
    let list: Vec<(Vertex, Arc)> = g
        .iter_arcs()
        .map(|(u, v, w)| (perm.map(u), Arc::new(perm.map(v), w)))
        .collect();
    Csr::from_arc_list(g.num_vertices(), list)
}

/// Relabels a full [`Graph`] (both views rebuilt consistently).
pub fn relabel_graph(g: &Graph, perm: &Permutation) -> Graph {
    Graph::from_csr(relabel_csr(g.forward(), perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_arc(v as Vertex, v as Vertex + 1, (v + 1) as u32);
        }
        b.build()
    }

    #[test]
    fn identity_is_noop() {
        let g = path_graph(5);
        let p = Permutation::identity(5);
        let h = relabel_graph(&g, &p);
        assert_eq!(h.forward(), g.forward());
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::random(64, 7);
        let q = p.inverse();
        for v in 0..64 {
            assert_eq!(q.map(p.map(v)), v);
        }
    }

    #[test]
    fn from_order_matches_map() {
        let order = vec![2, 0, 1];
        let p = Permutation::from_order(&order);
        assert_eq!(p.map(2), 0);
        assert_eq!(p.map(0), 1);
        assert_eq!(p.map(1), 2);
    }

    #[test]
    fn relabel_preserves_arcs_as_a_set() {
        let g = path_graph(6);
        let p = Permutation::random(6, 3);
        let h = relabel_graph(&g, &p);
        let mut orig: Vec<_> = g
            .forward()
            .iter_arcs()
            .map(|(u, v, w)| (p.map(u), p.map(v), w))
            .collect();
        let mut new: Vec<_> = h.forward().iter_arcs().collect();
        orig.sort_unstable();
        new.sort_unstable();
        assert_eq!(orig, new);
    }

    #[test]
    fn apply_to_values_moves_entries() {
        let p = Permutation::new(vec![2, 0, 1]);
        let out = p.apply_to_values(&['a', 'b', 'c']);
        assert_eq!(out, vec!['b', 'c', 'a']);
    }

    #[test]
    #[should_panic(expected = "permutation image repeated")]
    fn rejects_non_bijection() {
        Permutation::new(vec![0, 0, 1]);
    }

    proptest! {
        #[test]
        fn random_is_a_permutation(n in 0usize..200, seed in 0u64..100) {
            let p = Permutation::random(n, seed);
            let mut seen = vec![false; n];
            for v in 0..n as Vertex {
                let m = p.map(v) as usize;
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }

        #[test]
        fn compose_with_inverse_is_identity(n in 1usize..100, seed in 0u64..100) {
            let p = Permutation::random(n, seed);
            let id = p.then(&p.inverse());
            prop_assert_eq!(id, Permutation::identity(n));
        }
    }
}
