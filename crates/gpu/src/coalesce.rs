//! The memory-coalescing rule: a warp's per-instruction accesses are served
//! in aligned segments.
//!
//! Section VI: "for maximal efficiency, all threads of a warp must access
//! memory in certain, hardware-dependent ways. Accessing 32 consecutive
//! integers of an array, for example, is efficient." The hardware groups
//! the (up to 32) addresses one warp instruction touches into aligned
//! 128-byte segments; each distinct segment costs one DRAM transaction.

/// Counts the distinct aligned segments covered by the active lanes'
/// accesses. `addrs` holds one byte address per active lane;
/// `access_bytes` is the per-lane access width.
///
/// Uses a small sort-free scan (warp size is tiny) to stay allocation-free
/// on the hot path.
pub fn transactions(addrs: &[u64], access_bytes: u32, segment_bytes: u32) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    let mut segs = [u64::MAX; 64]; // enough for 32 lanes touching 2 segments
    let mut count = 0u32;
    for &a in addrs {
        // An access may straddle two segments if unaligned.
        let first = a / segment_bytes as u64;
        let last = (a + access_bytes as u64 - 1) / segment_bytes as u64;
        for seg in first..=last {
            if !segs[..count as usize].contains(&seg) {
                segs[count as usize] = seg;
                count += 1;
            }
        }
    }
    count
}

/// Transaction count for a contiguous per-lane access pattern starting at
/// `base` with `stride` bytes between consecutive lanes (the common case:
/// lane `i` reads `base + i * stride`).
pub fn strided_transactions(
    base: u64,
    stride: u32,
    lanes: u32,
    access_bytes: u32,
    segment_bytes: u32,
) -> u32 {
    if lanes == 0 {
        return 0;
    }
    let first = base / segment_bytes as u64;
    let end = base + (lanes as u64 - 1) * stride as u64 + access_bytes as u64 - 1;
    let last = end / segment_bytes as u64;
    // Contiguous strides cover every segment in between; sparse strides may
    // skip, but for stride <= segment size the range is exact.
    if stride <= segment_bytes {
        (last - first + 1) as u32
    } else {
        lanes.min((last - first + 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        // 32 lanes reading consecutive u32s starting at an aligned address.
        let addrs: Vec<u64> = (0..32).map(|i| 4096 + i * 4).collect();
        assert_eq!(transactions(&addrs, 4, 128), 1);
    }

    #[test]
    fn misaligned_consecutive_reads_cost_two() {
        let addrs: Vec<u64> = (0..32).map(|i| 4096 + 64 + i * 4).collect();
        assert_eq!(transactions(&addrs, 4, 128), 2);
    }

    #[test]
    fn scattered_reads_cost_one_each() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 100_000).collect();
        assert_eq!(transactions(&addrs, 4, 128), 32);
    }

    #[test]
    fn identical_addresses_coalesce_to_one() {
        let addrs = vec![77_777; 32];
        assert_eq!(transactions(&addrs, 4, 128), 1);
    }

    #[test]
    fn straddling_access_counts_both_segments() {
        assert_eq!(transactions(&[126], 4, 128), 2);
    }

    #[test]
    fn empty_warp_is_free() {
        assert_eq!(transactions(&[], 4, 128), 0);
    }

    /// Oracle: segment counting with a HashSet, no fixed-size buffer.
    fn transactions_oracle(addrs: &[u64], access_bytes: u32, segment_bytes: u32) -> u32 {
        let mut segs = std::collections::HashSet::new();
        for &a in addrs {
            let first = a / segment_bytes as u64;
            let last = (a + access_bytes as u64 - 1) / segment_bytes as u64;
            for s in first..=last {
                segs.insert(s);
            }
        }
        segs.len() as u32
    }

    #[test]
    fn transactions_match_hashset_oracle() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(
                    proptest::collection::vec(0u64..1_000_000, 0..32),
                    proptest::sample::select(vec![1u32, 4, 8]),
                    proptest::sample::select(vec![32u32, 128]),
                ),
                |(addrs, access, seg)| {
                    prop_assert_eq!(
                        transactions(&addrs, access, seg),
                        transactions_oracle(&addrs, access, seg)
                    );
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn strided_matches_explicit_for_dense_strides() {
        for base in [0u64, 4, 100, 4096] {
            for stride in [4u32, 8, 64, 128] {
                for lanes in [1u32, 7, 32] {
                    let addrs: Vec<u64> = (0..lanes as u64)
                        .map(|i| base + i * stride as u64)
                        .collect();
                    assert_eq!(
                        strided_transactions(base, stride, lanes, 4, 128),
                        transactions(&addrs, 4, 128),
                        "base {base} stride {stride} lanes {lanes}"
                    );
                }
            }
        }
    }
}
