//! Multi-GPU GPHAST.
//!
//! Section VIII-F: "A GTX 580 graphics card costs half as much as the M1-4
//! machine on which it is installed, and the machine supports two cards.
//! With two cards, GPHAST would be twice as fast [...] Since the linear
//! sweep is by far the bottleneck of GPHAST, we can safely assume that the
//! all-pairs shortest-paths computation scales perfectly with the number
//! of GPUs." Each device holds its own copy of `G↓` and its own label
//! arrays; sources are dealt round-robin, with no cross-device
//! communication at all — which is why the scaling is perfect.

use crate::device::OutOfDeviceMemory;
use crate::gphast::{Gphast, GphastStats};
use crate::profile::DeviceProfile;
use phast_core::Phast;
use phast_graph::{Vertex, Weight};
use std::time::Duration;

/// A bank of simulated GPUs running GPHAST batches in parallel.
pub struct MultiGpu<'p> {
    devices: Vec<Gphast<'p>>,
    k: usize,
}

/// Aggregate statistics of a multi-device run.
#[derive(Clone, Copy, Debug)]
pub struct MultiGpuStats {
    /// Devices used.
    pub num_devices: usize,
    /// Trees computed.
    pub trees: usize,
    /// Simulated wall time: the maximum over the devices (they run
    /// concurrently and independently).
    pub wall_time: Duration,
    /// Simulated time per tree at the wall clock.
    pub time_per_tree: Duration,
}

impl<'p> MultiGpu<'p> {
    /// Brings up `num_devices` identical cards, each with the full graph
    /// and `k` label arrays.
    pub fn new(
        p: &'p Phast,
        profile: DeviceProfile,
        num_devices: usize,
        k: usize,
    ) -> Result<Self, OutOfDeviceMemory> {
        assert!(num_devices >= 1);
        let devices = (0..num_devices)
            .map(|_| Gphast::new(p, profile.clone(), k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { devices, k })
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Computes trees for all `sources` (a multiple of `k` per device
    /// round; the final partial round pads by repeating the last source).
    /// Returns aggregate statistics; per-tree labels stay on the devices.
    pub fn run(&mut self, sources: &[Vertex]) -> MultiGpuStats {
        assert!(!sources.is_empty());
        let mut device_time = vec![Duration::ZERO; self.devices.len()];
        for (round, chunk) in sources.chunks(self.k * self.devices.len()).enumerate() {
            let _ = round;
            for (d, batch) in chunk.chunks(self.k).enumerate() {
                let stats: GphastStats = if batch.len() == self.k {
                    self.devices[d].run(batch)
                } else {
                    let mut padded = batch.to_vec();
                    let last = *padded.last().expect("non-empty batch");
                    padded.resize(self.k, last);
                    self.devices[d].run(&padded)
                };
                device_time[d] += stats.batch_time;
            }
        }
        let wall = device_time.iter().max().copied().unwrap_or_default();
        MultiGpuStats {
            num_devices: self.devices.len(),
            trees: sources.len(),
            wall_time: wall,
            time_per_tree: wall / sources.len() as u32,
        }
    }

    /// Labels of the tree most recently computed for lane `i` on device
    /// `d` (testing hook).
    pub fn tree_distances(&mut self, device: usize, i: usize) -> Vec<Weight> {
        self.devices[device].tree_distances(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn instance() -> (phast_graph::Graph, Phast) {
        let net = RoadNetworkConfig::new(14, 14, 6, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        (net.graph, p)
    }

    #[test]
    fn two_cards_halve_the_wall_time() {
        // The paper's §VIII-F claim, reproduced by the simulator.
        let (_, p) = instance();
        let sources: Vec<Vertex> = (0..32).map(|i| i * 5 % 190).collect();
        let mut one = MultiGpu::new(&p, DeviceProfile::gtx_580(), 1, 8).unwrap();
        let mut two = MultiGpu::new(&p, DeviceProfile::gtx_580(), 2, 8).unwrap();
        let s1 = one.run(&sources);
        let s2 = two.run(&sources);
        let speedup = s1.wall_time.as_secs_f64() / s2.wall_time.as_secs_f64();
        assert!(
            (1.8..=2.2).contains(&speedup),
            "two cards should give ~2x, got {speedup:.2}"
        );
    }

    #[test]
    fn results_are_correct_on_every_device() {
        let (g, p) = instance();
        let sources: Vec<Vertex> = (0..8).collect();
        let mut bank = MultiGpu::new(&p, DeviceProfile::gtx_580(), 2, 4).unwrap();
        bank.run(&sources);
        // Device 0 computed sources 0..4, device 1 sources 4..8.
        for (d, base) in [(0usize, 0u32), (1, 4)] {
            for i in 0..4usize {
                let want = shortest_paths(g.forward(), base + i as u32).dist;
                assert_eq!(bank.tree_distances(d, i), want, "device {d} lane {i}");
            }
        }
    }

    #[test]
    fn ragged_tail_is_padded() {
        let (_, p) = instance();
        let sources: Vec<Vertex> = (0..10).collect(); // 2 devices x k=4: 4+4+2
        let mut bank = MultiGpu::new(&p, DeviceProfile::gtx_580(), 2, 4).unwrap();
        let stats = bank.run(&sources);
        assert_eq!(stats.trees, 10);
        assert!(stats.wall_time > Duration::ZERO);
    }
}
