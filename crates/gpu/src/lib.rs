//! GPHAST: the GPU implementation of PHAST (Section VI), on a simulated
//! SIMT device.
//!
//! # Substitution note (see `DESIGN.md`)
//!
//! The paper runs on an NVIDIA GTX 580 (Fermi) with CUDA. This environment
//! has no GPU, so this crate implements the closest synthetic equivalent: a
//! **SIMT execution simulator** that runs the *same algorithm* — one kernel
//! launch per level, one thread per distance label, `k`-tree thread-to-warp
//! mapping so a warp works on one vertex when `k = 32` — with full
//! functional fidelity (the produced distance labels are real and are
//! tested against CPU PHAST), while *time* is charged by a calibrated
//! performance model:
//!
//! * warps of 32 lanes execute in lockstep with predicated execution —
//!   a warp pays for the *maximum* loop trip count over its lanes
//!   (control-flow divergence);
//! * each warp's memory accesses are grouped into 128-byte segments per
//!   instruction — the hardware coalescing rule — and each segment is one
//!   DRAM transaction;
//! * a kernel's time is the roofline maximum of its compute time
//!   (instructions over issue throughput) and its memory time (transaction
//!   bytes over DRAM bandwidth), plus a fixed launch overhead;
//! * host↔device copies are charged at PCIe bandwidth plus latency.
//!
//! The model's constants come from the published GTX 580/480 specifications
//! the paper quotes (192.4 GB/s, 16 SMs, 772 MHz, 1.5 GB on-board RAM).

pub mod coalesce;
pub mod device;
pub mod gphast;
pub mod multi;
pub mod profile;

pub use device::{Device, DeviceBuffer, DeviceStats, OutOfDeviceMemory};
pub use gphast::{Gphast, GphastStats};
pub use multi::{MultiGpu, MultiGpuStats};
pub use profile::DeviceProfile;
