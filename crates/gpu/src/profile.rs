//! Device profiles: the published specifications the performance model is
//! calibrated with.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors ("16 independent cores" on the GTX 580).
    pub num_sms: u32,
    /// Lanes per warp (32 on every NVIDIA architecture the paper considers).
    pub warp_size: u32,
    /// Core clock in MHz.
    pub core_clock_mhz: f64,
    /// Peak DRAM bandwidth in GB/s (the number PHAST is limited by).
    pub mem_bandwidth_gbps: f64,
    /// Size of a coalesced memory transaction in bytes.
    pub transaction_bytes: u32,
    /// Instructions each SM can issue per cycle (warp-wide instructions).
    pub issue_per_cycle_per_sm: f64,
    /// Fixed kernel launch overhead in microseconds (driver + scheduling).
    pub kernel_launch_us: f64,
    /// Host-to-device (PCIe) bandwidth in GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Per-transfer PCIe latency in microseconds.
    pub pcie_latency_us: f64,
    /// On-board memory in bytes (1.5 GB on the GTX 580).
    pub memory_bytes: usize,
    /// Whole-system power under load in watts (Table VI: 375 W for the
    /// M1-4 workstation with a GTX 580 installed).
    pub system_watts: f64,
}

impl DeviceProfile {
    /// The NVIDIA GTX 580 (Fermi) of the paper's experiments.
    pub fn gtx_580() -> Self {
        Self {
            name: "NVIDIA GTX 580 (simulated)".into(),
            num_sms: 16,
            warp_size: 32,
            core_clock_mhz: 772.0,
            mem_bandwidth_gbps: 192.4,
            transaction_bytes: 128,
            issue_per_cycle_per_sm: 1.0,
            kernel_launch_us: 4.0,
            pcie_bandwidth_gbps: 6.0,
            pcie_latency_us: 10.0,
            memory_bytes: 1_536 * 1024 * 1024,
            system_watts: 375.0,
        }
    }

    /// The GTX 480 predecessor: 15 SMs, lower clocks, same memory size
    /// (Section VIII-F).
    pub fn gtx_480() -> Self {
        Self {
            name: "NVIDIA GTX 480 (simulated)".into(),
            num_sms: 15,
            warp_size: 32,
            core_clock_mhz: 701.0,
            mem_bandwidth_gbps: 177.4,
            transaction_bytes: 128,
            issue_per_cycle_per_sm: 1.0,
            kernel_launch_us: 4.0,
            pcie_bandwidth_gbps: 6.0,
            pcie_latency_us: 10.0,
            memory_bytes: 1_536 * 1024 * 1024,
            system_watts: 390.0,
        }
    }

    /// Core cycles per second.
    pub fn clock_hz(&self) -> f64 {
        self.core_clock_mhz * 1e6
    }

    /// DRAM bytes per second.
    pub fn mem_bytes_per_sec(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// PCIe bytes per second.
    pub fn pcie_bytes_per_sec(&self) -> f64 {
        self.pcie_bandwidth_gbps * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_published_specs() {
        let p = DeviceProfile::gtx_580();
        assert_eq!(p.num_sms, 16);
        assert_eq!(p.core_clock_mhz, 772.0);
        assert_eq!(p.mem_bandwidth_gbps, 192.4);
        let q = DeviceProfile::gtx_480();
        assert_eq!(q.num_sms, 15);
        assert!(q.core_clock_mhz < p.core_clock_mhz);
    }

    #[test]
    fn unit_conversions() {
        let p = DeviceProfile::gtx_580();
        assert_eq!(p.clock_hz(), 772e6);
        assert_eq!(p.mem_bytes_per_sec(), 192.4e9);
    }
}
