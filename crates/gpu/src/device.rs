//! The simulated device: memory management, transfers, and the cost
//! accumulator kernels report into.

use crate::profile::DeviceProfile;
use std::time::Duration;

/// Allocation failed: the buffer would not fit in device memory. The paper
/// hits the same wall when `k` distance arrays exceed the 1.5 GB of the
/// GTX 580 (Table III stops at `k = 16` for Europe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes the allocation asked for.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// A typed device-resident buffer. The host must go through
/// [`Device::copy_to_device`] / [`Device::copy_to_host`] to move data, which
/// is what charges PCIe time — direct access from simulation kernels is
/// free-of-charge *functionally* but charged via the kernel cost model.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side view (used by kernels).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Device-side mutable view (used by kernels).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Cumulative cost and traffic statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeviceStats {
    /// Kernel launches issued.
    pub kernel_launches: u64,
    /// Warp-instructions issued across all kernels.
    pub instructions: u64,
    /// DRAM transactions across all kernels.
    pub dram_transactions: u64,
    /// Bytes moved host→device.
    pub htod_bytes: u64,
    /// Bytes moved device→host.
    pub dtoh_bytes: u64,
    /// Simulated kernel execution time.
    pub kernel_time: Duration,
    /// Simulated transfer time.
    pub transfer_time: Duration,
}

impl DeviceStats {
    /// Total simulated wall time.
    pub fn total_time(&self) -> Duration {
        self.kernel_time + self.transfer_time
    }
}

/// The simulated GPU.
pub struct Device {
    profile: DeviceProfile,
    allocated: usize,
    stats: DeviceStats,
}

impl Device {
    /// Brings up a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            allocated: 0,
            stats: DeviceStats::default(),
        }
    }

    /// The profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the statistics (not the allocations).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Clone + Default>(
        &mut self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        let bytes = len * std::mem::size_of::<T>();
        let available = self.profile.memory_bytes.saturating_sub(self.allocated);
        if bytes > available {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                available,
            });
        }
        self.allocated += bytes;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
        })
    }

    /// Frees a buffer (returns its bytes to the pool).
    pub fn free<T>(&mut self, buf: DeviceBuffer<T>) {
        self.allocated -= buf.data.len() * std::mem::size_of::<T>();
    }

    /// Copies host data into a device buffer, charging PCIe time.
    pub fn copy_to_device<T: Copy>(&mut self, dst: &mut DeviceBuffer<T>, src: &[T]) {
        assert!(src.len() <= dst.data.len(), "device buffer too small");
        dst.data[..src.len()].copy_from_slice(src);
        let bytes = std::mem::size_of_val(src) as u64;
        self.stats.htod_bytes += bytes;
        self.stats.transfer_time += self.transfer_cost(bytes);
    }

    /// Copies device data back to the host, charging PCIe time.
    pub fn copy_to_host<T: Copy>(&mut self, src: &DeviceBuffer<T>, dst: &mut [T]) {
        dst.copy_from_slice(&src.data[..dst.len()]);
        let bytes = std::mem::size_of_val(dst) as u64;
        self.stats.dtoh_bytes += bytes;
        self.stats.transfer_time += self.transfer_cost(bytes);
    }

    /// Charges a device→host transfer without moving data (used when the
    /// simulation already has host access to the device buffer).
    pub fn charge_dtoh(&mut self, bytes: u64) {
        self.stats.dtoh_bytes += bytes;
        self.stats.transfer_time += self.transfer_cost(bytes);
    }

    fn transfer_cost(&self, bytes: u64) -> Duration {
        let secs =
            bytes as f64 / self.profile.pcie_bytes_per_sec() + self.profile.pcie_latency_us * 1e-6;
        Duration::from_secs_f64(secs)
    }

    /// Charges one kernel launch with the given aggregate warp-instruction
    /// and DRAM-transaction counts. Returns the simulated kernel time.
    ///
    /// Roofline: the kernel takes the larger of its compute time and its
    /// memory time — PHAST's sweep is memory-bound, so the memory term
    /// dominates on real hardware, exactly as Section VI argues.
    pub fn charge_kernel(&mut self, instructions: u64, transactions: u64) -> Duration {
        let compute_secs = instructions as f64
            / (self.profile.num_sms as f64
                * self.profile.issue_per_cycle_per_sm
                * self.profile.clock_hz());
        let memory_secs = (transactions * self.profile.transaction_bytes as u64) as f64
            / self.profile.mem_bytes_per_sec();
        let time = Duration::from_secs_f64(
            compute_secs.max(memory_secs) + self.profile.kernel_launch_us * 1e-6,
        );
        self.stats.kernel_launches += 1;
        self.stats.instructions += instructions;
        self.stats.dram_transactions += transactions;
        self.stats.kernel_time += time;
        time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_and_enforces_memory() {
        let mut d = Device::new(DeviceProfile::gtx_580());
        let cap = d.profile().memory_bytes;
        let a: DeviceBuffer<u32> = d.alloc(1000).unwrap();
        assert_eq!(d.allocated_bytes(), 4000);
        let err = d.alloc::<u8>(cap).unwrap_err();
        assert_eq!(err.available, cap - 4000);
        d.free(a);
        assert_eq!(d.allocated_bytes(), 0);
    }

    #[test]
    fn transfers_move_data_and_charge_time() {
        let mut d = Device::new(DeviceProfile::gtx_580());
        let mut buf: DeviceBuffer<u32> = d.alloc(4).unwrap();
        d.copy_to_device(&mut buf, &[1, 2, 3, 4]);
        assert_eq!(buf.as_slice(), &[1, 2, 3, 4]);
        let mut back = [0u32; 4];
        d.copy_to_host(&buf, &mut back);
        assert_eq!(back, [1, 2, 3, 4]);
        assert_eq!(d.stats().htod_bytes, 16);
        assert_eq!(d.stats().dtoh_bytes, 16);
        assert!(d.stats().transfer_time > Duration::ZERO);
    }

    #[test]
    fn kernel_roofline_is_memory_bound_for_heavy_traffic() {
        let mut d = Device::new(DeviceProfile::gtx_580());
        // Few instructions, many transactions: memory term dominates.
        let t = d.charge_kernel(1_000, 10_000_000);
        let expected_mem = 10_000_000.0 * 128.0 / 192.4e9;
        assert!(t.as_secs_f64() >= expected_mem);
        assert_eq!(d.stats().kernel_launches, 1);
    }

    #[test]
    fn kernel_launch_overhead_floors_tiny_kernels() {
        let mut d = Device::new(DeviceProfile::gtx_580());
        let t = d.charge_kernel(1, 1);
        assert!(t.as_secs_f64() >= 4e-6);
    }
}
